#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace spta::sim {

Cache::Cache(const CacheConfig& config, Seed seed)
    : config_(config),
      sets_(config.num_sets()),
      set_shift_(static_cast<std::uint32_t>(std::countr_zero(sets_))),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.line_bytes))),
      index_mask_(sets_ - 1),
      placement_seed_(seed),
      replacement_rng_(prng::HwPrng(DeriveSeed(seed, "cache-repl"))),
      tags_(static_cast<std::size_t>(sets_) * config.ways, kInvalidTag),
      stamps_(static_cast<std::size_t>(sets_) * config.ways, 0),
      ref_bits_(sets_, 0) {
  SPTA_REQUIRE(std::has_single_bit(sets_));
  // The NRU reference mask packs one bit per way into a 64-bit word (64
  // ways also covers the fully associative configurations tests use).
  SPTA_REQUIRE(config.ways >= 1 && config.ways <= 64);
}

std::uint32_t Cache::Victim(std::uint32_t set) {
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (tags_[base + w] == kInvalidTag) return w;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.ways; ++w) {
        if (stamps_[base + w] < stamps_[base + victim]) victim = w;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(config_.ways);
    case Replacement::kNru: {
      // Evict the first non-referenced way; if all referenced, clear the
      // bits (aging) and evict way 0.
      const std::uint32_t first_clear =
          static_cast<std::uint32_t>(std::countr_one(ref_bits_[set]));
      if (first_clear < config_.ways) return first_clear;
      ref_bits_[set] = 0;
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

void Cache::AppendStateDigest(DualHash& h) const {
  h.Mix(placement_seed_);
  for (std::uint32_t set = 0; set < sets_; ++set) {
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    h.Mix(ref_bits_[set]);
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      h.Mix(tags_[base + w]);
      // Stable stamp rank: the count of ways that LRU victimization would
      // prefer over way w (strictly older stamp, or equal stamp at a lower
      // scan index — Victim()'s tie-break). Rank vectors, unlike absolute
      // stamps, are invariant under the monotonically growing access
      // clock, and equal ranks imply identical victim choices under any
      // future access sequence.
      std::uint32_t rank = 0;
      for (std::uint32_t w2 = 0; w2 < config_.ways; ++w2) {
        if (stamps_[base + w2] < stamps_[base + w] ||
            (stamps_[base + w2] == stamps_[base + w] && w2 < w)) {
          ++rank;
        }
      }
      h.Mix(rank);
    }
  }
  replacement_rng_.AppendStateDigest(h);
}

void Cache::Flush() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  std::fill(ref_bits_.begin(), ref_bits_.end(), 0u);
  mru_index_ = 0;
  mru_set_ = 0;
  mru_way_ = 0;
  access_clock_ = 0;
}

void Cache::Reseed(Seed seed) {
  placement_seed_ = seed;
  replacement_rng_ =
      prng::BlockDraws<prng::HwPrng>(prng::HwPrng(DeriveSeed(seed,
                                                             "cache-repl")));
  Flush();
}

}  // namespace spta::sim
