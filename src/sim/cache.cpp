#include "sim/cache.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

Cache::Cache(const CacheConfig& config, Seed seed)
    : config_(config),
      sets_(config.num_sets()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.line_bytes))),
      index_mask_(sets_ - 1),
      placement_seed_(seed),
      replacement_rng_(DeriveSeed(seed, "cache-repl")),
      lines_(static_cast<std::size_t>(sets_) * config.ways) {
  SPTA_REQUIRE(std::has_single_bit(sets_));
}

std::uint64_t Cache::LineNumber(Address addr) const {
  return addr >> line_shift_;
}

std::uint32_t Cache::SetIndexFor(Address addr) const {
  const std::uint64_t line = LineNumber(addr);
  switch (config_.placement) {
    case Placement::kModulo:
      return static_cast<std::uint32_t>(line) & index_mask_;
    case Placement::kRandomModulo: {
      // Random modulo (DAC 2016): rotate the conventional index by a
      // per-(tag, seed) random amount. Lines sharing a tag keep distinct
      // sets (the map is a permutation within each tag group), so unit
      // stride never self-conflicts — but the placement of each tag group
      // is random per seed.
      const std::uint64_t index = line & index_mask_;
      const std::uint64_t tag = line >> std::countr_zero(sets_);
      const std::uint64_t h = Mix64(tag ^ placement_seed_);
      return static_cast<std::uint32_t>((index + h) & index_mask_);
    }
    case Placement::kHashRandom: {
      // Hash-based random placement (DATE 2013): the whole line number is
      // hashed, so even consecutive lines can collide for some seeds.
      return static_cast<std::uint32_t>(Mix64(line ^ placement_seed_)) &
             index_mask_;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable placement policy");
  return 0;
}

std::uint32_t Cache::Victim(std::uint32_t set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) return w;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.ways; ++w) {
        if (base[w].lru_stamp < base[victim].lru_stamp) victim = w;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(config_.ways);
    case Replacement::kNru: {
      // Evict the first non-referenced way; if all referenced, clear the
      // bits (aging) and evict way 0.
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].referenced) return w;
      }
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        base[w].referenced = false;
      }
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

bool Cache::Access(Address addr, bool allocate_on_miss) {
  ++stats_.accesses;
  ++access_clock_;
  const std::uint64_t line = LineNumber(addr);
  const std::uint32_t set = SetIndexFor(addr);
  // The tag must identify the line uniquely given the set can be any value
  // under randomized placement, so we store the full line number.
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].lru_stamp = access_clock_;
      base[w].referenced = true;
      return true;
    }
  }
  ++stats_.misses;
  if (allocate_on_miss) {
    const std::uint32_t w = Victim(set);
    base[w].valid = true;
    base[w].tag = line;
    base[w].lru_stamp = access_clock_;
    base[w].referenced = true;
  }
  return false;
}

void Cache::Flush() {
  for (auto& l : lines_) l = Line{};
  access_clock_ = 0;
}

void Cache::Reseed(Seed seed) {
  placement_seed_ = seed;
  replacement_rng_ = prng::HwPrng(DeriveSeed(seed, "cache-repl"));
  Flush();
}

}  // namespace spta::sim
