// Set-associative cache model with pluggable placement and replacement.
//
// This is the heart of the time-randomized platform: the paper's hardware
// modifications replace conventional modulo placement / LRU replacement with
// random-modulo placement (Hernandez et al., DAC 2016) and random
// replacement (Kosmidis et al., DATE 2013), both driven by the platform
// PRNG. The model tracks tags only (no data — the interpreter holds
// functional state) and reports hit/miss per access; timing is applied by
// the core model.
//
// Fast-path layout: the per-line metadata is stored structure-of-arrays —
// one flat set-indexed tag array (validity encoded as a sentinel tag), one
// stamp array for LRU, one reference-bit mask per set for NRU — so the hit
// scan is a branch-free compare loop over `ways` consecutive words that the
// compiler can unroll and vectorize. Access() lives in the header so the
// scan inlines into the core's retire loop. Observable behavior (hit/miss
// stream, PRNG consumption, victim choice, stats) is bit-identical to the
// reference implementation retained in sim/reference_model.hpp; the
// equivalence battery in tests/sim_equivalence_test.cpp enforces this.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "prng/block_draws.hpp"
#include "prng/hw_prng.hpp"
#include "sim/config.hpp"
#include "sim/placement.hpp"

namespace spta::sim {

/// Per-access statistics counters.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double MissRatio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Cache {
 public:
  /// Builds an empty cache; `seed` drives the placement hash and the random
  /// replacement stream (ignored by deterministic policies).
  Cache(const CacheConfig& config, Seed seed);

  /// Looks up the line containing `addr`; allocates on a read miss.
  /// `allocate_on_miss=false` models write-through no-write-allocate stores.
  /// Returns true on hit.
  bool Access(Address addr, bool allocate_on_miss = true) {
    ++stats_.accesses;
    ++access_clock_;
    const std::uint64_t line = LineNumber(addr);
    // MRU shortcut: consecutive accesses mostly stay within one line
    // (sequential code fetch, stride-1 data walks), so re-checking the
    // last hit/fill slot skips the placement hash and the way scan. The
    // tag compare doubles as the validity check — a line occupies at most
    // one slot, and if it was evicted the stored tag differs. The state
    // update is identical to the scan path's, so this is observationally
    // transparent.
    if (tags_[mru_index_] == line) {
      stamps_[mru_index_] = access_clock_;
      ref_bits_[mru_set_] |= 1ULL << mru_way_;
      return true;
    }
    const std::uint32_t set = SetIndexForLine(line);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    const std::uint64_t* tags = &tags_[base];
    // Branch-free hit scan: tags are unique within a set and the invalid
    // sentinel can never equal a real line number, so at most one way
    // matches; the conditional select compiles to unrolled cmov/SIMD.
    std::uint32_t hit_way = config_.ways;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      hit_way = (tags[w] == line) ? w : hit_way;
    }
    if (hit_way != config_.ways) {
      stamps_[base + hit_way] = access_clock_;
      ref_bits_[set] |= 1ULL << hit_way;
      RememberMru(base + hit_way, set, hit_way);
      return true;
    }
    ++stats_.misses;
    if (allocate_on_miss) {
      const std::uint32_t w = Victim(set);
      tags_[base + w] = line;
      stamps_[base + w] = access_clock_;
      ref_bits_[set] |= 1ULL << w;
      RememberMru(base + w, set, w);
    }
    return false;
  }

  /// Invalidates all lines (the per-run cache flush of the MBPTA protocol).
  void Flush();

  /// Installs a new seed (new placement mapping + replacement stream) and
  /// flushes. Called between measurement runs on the RAND platform.
  void Reseed(Seed seed);

  /// Computes the set index for `addr` under the current seed/policy.
  /// Exposed for property tests of the placement functions.
  std::uint32_t SetIndexFor(Address addr) const {
    return SetIndexForLine(LineNumber(addr));
  }

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  /// Replacement-stream consumption since the last Reseed (src/obs
  /// attribution). Reseed rebuilds the stream, so these reset per run
  /// under the normal measurement protocol.
  prng::DrawStats draw_stats() const { return replacement_rng_.stats(); }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Mixes the behavior-determining state into `h`, normalized to be
  /// invariant under time translation: tags, per-set LRU stamp *ranks*
  /// (absolute stamps and the access clock grow monotonically, but victim
  /// selection only compares stamps within a set — equal rank orderings
  /// behave identically forever), NRU reference bits, the placement seed
  /// and the replacement stream state. The MRU shortcut is excluded: it is
  /// observationally transparent (Access() documents this). Two caches
  /// with equal digests produce identical hit/miss/victim/draw sequences
  /// for any future access stream.
  void AppendStateDigest(DualHash& h) const;

  /// Folds a recorded access/miss delta into the counters (memoized
  /// fast-forward replays the stats of a skipped kernel iteration).
  void ApplyStatsDelta(const CacheStats& delta) {
    stats_.accesses += delta.accesses;
    stats_.misses += delta.misses;
  }

  /// Replacement-stream access for memoized fast-forward (SkipWords) and
  /// state digesting. Off the measurement hot path.
  prng::BlockDraws<prng::HwPrng>& replacement_rng() {
    return replacement_rng_;
  }
  const prng::BlockDraws<prng::HwPrng>& replacement_rng() const {
    return replacement_rng_;
  }

  // --- Fault-injection surface (src/fault) -------------------------------
  // SEU-style state corruption for the seeded fault-injection subsystem:
  // a single-event upset in the tag/valid array is modeled by XORing one
  // bit of one tag word. Because validity is sentinel-encoded in the tag
  // itself, a flip in an invalid way forges a bogus "valid" line and a
  // flip in a valid way retags (or invalidates) a real one — exactly the
  // two observable SEU failure modes of a real tag RAM. These methods are
  // never called on the measurement hot path; Access() is untouched.

  /// Number of tag slots (sets * ways); slots index the flat tag array.
  std::size_t TagSlots() const { return tags_.size(); }

  /// Flips bit `bit` (0-63) of tag slot `slot`. The MRU shortcut slot is
  /// re-derived so a corrupted line is observed by the next lookup rather
  /// than masked by the stale shortcut.
  void CorruptTagBit(std::size_t slot, unsigned bit) {
    tags_[slot] ^= 1ULL << (bit & 63u);
    // Drop the MRU shortcut if it pointed at the corrupted slot: the
    // shortcut caches "tags_[mru_index_] is the last-hit line", which the
    // flip may have falsified.
    if (slot == mru_index_) {
      mru_index_ = 0;
      mru_set_ = 0;
      mru_way_ = 0;
    }
  }

  /// Reads a tag slot back (test/fault-audit use).
  std::uint64_t TagAt(std::size_t slot) const { return tags_[slot]; }

 private:
  /// Sentinel tag of an invalid way. Real tags are full line numbers,
  /// addr >> line_shift_ with line_shift_ >= 1, so all-ones is unreachable.
  static constexpr std::uint64_t kInvalidTag = ~0ULL;

  std::uint64_t LineNumber(Address addr) const { return addr >> line_shift_; }

  std::uint32_t SetIndexForLine(std::uint64_t line) const {
    return PlacementSetIndex(config_.placement, line, index_mask_, set_shift_,
                             placement_seed_);
  }

  std::uint32_t Victim(std::uint32_t set);

  void RememberMru(std::size_t index, std::uint32_t set, std::uint32_t way) {
    mru_index_ = index;
    mru_set_ = set;
    mru_way_ = way;
  }

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint32_t set_shift_;   ///< log2(sets_), cached for the placement hash.
  std::uint32_t line_shift_;
  std::uint32_t index_mask_;
  Seed placement_seed_;
  prng::BlockDraws<prng::HwPrng> replacement_rng_;
  /// Flat set-major arrays, sets_ * ways each.
  std::vector<std::uint64_t> tags_;    ///< Line number, or kInvalidTag.
  std::vector<std::uint64_t> stamps_;  ///< Higher = more recent (LRU).
  std::vector<std::uint64_t> ref_bits_;  ///< Per-set NRU reference bitmask.
  /// Slot of the last hit/fill (lookup shortcut; tags_[mru_index_] is the
  /// line it refers to, or kInvalidTag after a flush).
  std::size_t mru_index_ = 0;
  std::uint32_t mru_set_ = 0;
  std::uint32_t mru_way_ = 0;
  std::uint64_t access_clock_ = 0;
  CacheStats stats_;
};

}  // namespace spta::sim
