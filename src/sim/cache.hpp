// Set-associative cache model with pluggable placement and replacement.
//
// This is the heart of the time-randomized platform: the paper's hardware
// modifications replace conventional modulo placement / LRU replacement with
// random-modulo placement (Hernandez et al., DAC 2016) and random
// replacement (Kosmidis et al., DATE 2013), both driven by the platform
// PRNG. The model tracks tags only (no data — the interpreter holds
// functional state) and reports hit/miss per access; timing is applied by
// the core model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "prng/hw_prng.hpp"
#include "sim/config.hpp"

namespace spta::sim {

/// Per-access statistics counters.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double MissRatio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Cache {
 public:
  /// Builds an empty cache; `seed` drives the placement hash and the random
  /// replacement stream (ignored by deterministic policies).
  Cache(const CacheConfig& config, Seed seed);

  /// Looks up the line containing `addr`; allocates on a read miss.
  /// `allocate_on_miss=false` models write-through no-write-allocate stores.
  /// Returns true on hit.
  bool Access(Address addr, bool allocate_on_miss = true);

  /// Invalidates all lines (the per-run cache flush of the MBPTA protocol).
  void Flush();

  /// Installs a new seed (new placement mapping + replacement stream) and
  /// flushes. Called between measurement runs on the RAND platform.
  void Reseed(Seed seed);

  /// Computes the set index for `addr` under the current seed/policy.
  /// Exposed for property tests of the placement functions.
  std::uint32_t SetIndexFor(Address addr) const;

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;  ///< Higher = more recent (LRU policy).
    bool referenced = false;      ///< NRU reference bit.
  };

  std::uint64_t LineNumber(Address addr) const;
  std::uint32_t Victim(std::uint32_t set);

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint32_t line_shift_;
  std::uint32_t index_mask_;
  Seed placement_seed_;
  prng::HwPrng replacement_rng_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set.
  std::uint64_t access_clock_ = 0;
  CacheStats stats_;
};

}  // namespace spta::sim
