#include "sim/config.hpp"

#include <bit>

#include "common/assert.hpp"

namespace spta::sim {
namespace {

bool IsPow2(std::uint32_t v) { return v != 0 && std::has_single_bit(v); }

void ValidateCache(const CacheConfig& c, const char* which) {
  SPTA_CHECK_MSG(IsPow2(c.line_bytes) && c.line_bytes >= 4,
                 which << ": line_bytes=" << c.line_bytes);
  SPTA_CHECK_MSG(c.ways >= 1, which << ": ways=" << c.ways);
  SPTA_CHECK_MSG(c.size_bytes % (c.line_bytes * c.ways) == 0,
                 which << ": size not divisible by way size");
  SPTA_CHECK_MSG(IsPow2(c.num_sets()), which << ": sets=" << c.num_sets());
}

}  // namespace

const char* ToString(Placement p) {
  switch (p) {
    case Placement::kModulo:
      return "modulo";
    case Placement::kRandomModulo:
      return "random-modulo";
    case Placement::kHashRandom:
      return "hash-random";
  }
  return "?";
}

const char* ToString(Replacement r) {
  switch (r) {
    case Replacement::kLru:
      return "lru";
    case Replacement::kRandom:
      return "random";
    case Replacement::kNru:
      return "nru";
  }
  return "?";
}

void PlatformConfig::Validate() const {
  SPTA_CHECK_MSG(cores >= 1 && cores <= 16, "cores=" << cores);
  ValidateCache(il1, "il1");
  ValidateCache(dl1, "dl1");
  SPTA_CHECK(itlb.entries >= 1 && IsPow2(itlb.page_bytes));
  SPTA_CHECK(dtlb.entries >= 1 && IsPow2(dtlb.page_bytes));
  SPTA_CHECK(IsPow2(dram.banks) && IsPow2(dram.row_bytes));
  if (l2.enabled) ValidateCache(l2.cache, "l2");
  SPTA_CHECK(store_buffer.depth >= 1);
  SPTA_CHECK(bus.line_transfer_cycles >= 1 && bus.store_transfer_cycles >= 1);
}

PlatformConfig DetLeon3Config() {
  PlatformConfig p;
  p.name = "DET";
  p.cores = 4;
  // 16KB 4-way IL1/DL1 (paper Section II), 32B lines.
  p.il1 = {16 * 1024, 32, 4, Placement::kModulo, Replacement::kLru};
  p.dl1 = {16 * 1024, 32, 4, Placement::kModulo, Replacement::kLru};
  p.itlb = {64, 4096, Replacement::kLru, 30};
  p.dtlb = {64, 4096, Replacement::kLru, 30};
  p.fpu.mode = FpuMode::kVariable;
  p.Validate();
  return p;
}

PlatformConfig RandLeon3Config() {
  PlatformConfig p = DetLeon3Config();
  p.name = "RAND";
  p.il1.placement = Placement::kRandomModulo;
  p.il1.replacement = Replacement::kRandom;
  p.dl1.placement = Placement::kRandomModulo;
  p.dl1.replacement = Replacement::kRandom;
  p.itlb.replacement = Replacement::kRandom;
  p.dtlb.replacement = Replacement::kRandom;
  p.fpu.mode = FpuMode::kWorstCaseFixed;
  p.Validate();
  return p;
}

PlatformConfig RandLeon3OperationConfig() {
  PlatformConfig p = RandLeon3Config();
  p.name = "RAND-op";
  p.fpu.mode = FpuMode::kVariable;
  p.Validate();
  return p;
}

}  // namespace spta::sim
