// Platform configuration: every structural and timing parameter of the
// simulated LEON3-class multicore, plus the DET / RAND presets the paper
// compares (Section II).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace spta::sim {

/// Cache set-index (placement) policies.
enum class Placement : std::uint8_t {
  kModulo,        ///< Conventional: set = line mod sets (deterministic).
  kRandomModulo,  ///< Hernandez DAC-2016: set = (index + h(tag,seed)) mod
                  ///< sets — per-seed random, sequential lines never collide.
  kHashRandom,    ///< Kosmidis DATE-2013 style: set = h(line,seed) mod sets.
};

/// Cache/TLB replacement policies.
enum class Replacement : std::uint8_t {
  kLru,     ///< Least-recently-used (deterministic).
  kRandom,  ///< Uniform random victim (MBPTA-compliant).
  kNru,     ///< Not-recently-used approximation (deterministic).
};

const char* ToString(Placement p);
const char* ToString(Replacement r);

/// Geometry + policies of one cache level.
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  Placement placement = Placement::kModulo;
  Replacement replacement = Replacement::kLru;

  std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Geometry + policy of a (fully associative) TLB.
struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
  Replacement replacement = Replacement::kLru;
  /// Fixed page-table-walk penalty on a miss, in cycles.
  Cycles miss_penalty = 30;
};

/// FPU latency model. FDIV/FSQRT latency depends on operand values on the
/// real unit; in kWorstCaseFixed mode (the paper's analysis-phase hardware
/// change) they always take their maximum latency.
enum class FpuMode : std::uint8_t {
  kVariable,        ///< Value-dependent latency (DET platform / operation).
  kWorstCaseFixed,  ///< Fixed at worst case (RAND platform analysis phase).
};

struct FpuConfig {
  FpuMode mode = FpuMode::kVariable;
  Cycles add_latency = 4;    ///< FADD/FSUB/convert (jitterless).
  Cycles mul_latency = 4;    ///< FMUL (jitterless).
  /// FDIV latency for operand class 0; each class adds div_step cycles.
  Cycles div_base = 16;
  Cycles div_step = 3;
  /// FSQRT latency for operand class 0; each class adds sqrt_step cycles.
  Cycles sqrt_base = 22;
  Cycles sqrt_step = 4;
};

/// Shared-bus timing (AMBA AHB-style, round-robin arbitration).
struct BusConfig {
  /// Cycles the bus is occupied by one cache-line refill transaction.
  Cycles line_transfer_cycles = 14;
  /// Cycles occupied by one write-through word store.
  Cycles store_transfer_cycles = 3;
};

/// DRAM controller with per-bank open-row tracking and optional refresh.
struct DramConfig {
  std::uint32_t banks = 8;
  std::uint32_t row_bytes = 2048;
  Cycles row_hit_latency = 28;    ///< CAS-only access.
  Cycles row_miss_latency = 100;   ///< Precharge + activate + CAS.
  /// All-bank refresh every `refresh_interval` cycles for
  /// `refresh_duration` cycles; 0 disables refresh (the default keeps the
  /// baseline platform free of phase-dependent jitter; the refresh
  /// ablation turns it on).
  Cycles refresh_interval = 0;
  Cycles refresh_duration = 128;
};

/// Optional unified second-level cache shared by all cores (LEON4-style),
/// sitting between the bus and the memory controller.
struct L2Config {
  bool enabled = false;
  CacheConfig cache{256 * 1024, 32, 8, Placement::kModulo,
                    Replacement::kLru};
  Cycles hit_latency = 12;  ///< Lookup + line return on an L2 hit.
};

/// Integer pipeline timing (7-stage in-order; jitterless by construction).
struct PipelineConfig {
  Cycles int_alu = 1;
  Cycles int_mul = 5;
  Cycles int_div = 35;
  /// Extra bubble cycles on a taken branch (no branch prediction).
  Cycles taken_branch_penalty = 2;
  /// Load delay slot: extra bubble when an instruction consumes the result
  /// of the immediately preceding load (path-dependent but jitterless:
  /// fixed per path, like the rest of the pipeline).
  Cycles load_use_stall = 1;
};

/// Store buffer between the core and the write-through bus path.
struct StoreBufferConfig {
  std::uint32_t depth = 8;
};

/// The full platform.
struct PlatformConfig {
  std::string name = "unnamed";
  std::uint32_t cores = 4;
  CacheConfig il1;
  CacheConfig dl1;
  TlbConfig itlb;
  TlbConfig dtlb;
  FpuConfig fpu;
  BusConfig bus;
  DramConfig dram;
  L2Config l2;
  PipelineConfig pipeline;
  StoreBufferConfig store_buffer;

  /// Validates internal consistency (power-of-two geometries etc.).
  void Validate() const;
};

/// The baseline deterministic platform (paper's "DET"): modulo placement,
/// LRU replacement everywhere, value-dependent FPU.
PlatformConfig DetLeon3Config();

/// The MBPTA-compliant platform (paper's "RAND"): random-modulo placement +
/// random replacement in IL1/DL1, random replacement in both TLBs, FPU
/// forced to worst-case fixed latency (analysis phase).
PlatformConfig RandLeon3Config();

/// RAND variant with the FPU in value-dependent mode — the *operation*
/// phase of the deployed platform (used to check the analysis-phase FPU
/// upper-bounds operation).
PlatformConfig RandLeon3OperationConfig();

}  // namespace spta::sim
