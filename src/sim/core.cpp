#include "sim/core.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

Core::Core(const PlatformConfig& config, CoreId id, MemorySystem* memory,
           Seed seed)
    : config_(config),
      id_(id),
      memory_(memory),
      il1_(config.il1, DeriveSeed(seed, "il1")),
      dl1_(config.dl1, DeriveSeed(seed, "dl1")),
      itlb_(config.itlb, DeriveSeed(seed, "itlb")),
      dtlb_(config.dtlb, DeriveSeed(seed, "dtlb")),
      fpu_(config.fpu),
      store_buffer_(config.store_buffer) {
  SPTA_REQUIRE(memory != nullptr);
}

void Core::Reseed(Seed seed) {
  il1_.Reseed(DeriveSeed(seed, "il1"));
  dl1_.Reseed(DeriveSeed(seed, "dl1"));
  itlb_.Reseed(DeriveSeed(seed, "itlb"));
  dtlb_.Reseed(DeriveSeed(seed, "dtlb"));
  il1_.ResetStats();
  dl1_.ResetStats();
  itlb_.ResetStats();
  dtlb_.ResetStats();
  fpu_.ResetStats();
  store_buffer_.Reset();
  now_ = 0;
  retired_ = 0;
  pending_load_reg_ = trace::kNoReg;
  trace_ = nullptr;
  cursor_ = 0;
}

void Core::AttachTrace(const trace::Trace* t) {
  SPTA_REQUIRE(t != nullptr);
  trace_ = t;
  cursor_ = 0;
}

bool Core::HasWork() const {
  return trace_ != nullptr && cursor_ < trace_->records.size();
}

void Core::Step() {
  SPTA_REQUIRE(HasWork());
  RetireRecord(trace_->records[cursor_]);
  ++cursor_;
}

void Core::RetireRecord(const trace::TraceRecord& rec) {
  using trace::OpClass;
  ++retired_;

  // --- Instruction fetch: ITLB, then IL1. -------------------------------
  if (!itlb_.Access(rec.pc)) {
    now_ += config_.itlb.miss_penalty;
  }
  if (!il1_.Access(rec.pc)) {
    now_ = memory_->LineFill(id_, rec.pc, now_);
  }

  // --- Load delay slot: consuming the previous load's result stalls. ----
  if (rec.Reads(pending_load_reg_)) {
    now_ += config_.pipeline.load_use_stall;
  }
  pending_load_reg_ =
      rec.op == OpClass::kLoad ? rec.dst_reg : trace::kNoReg;

  // --- Execute: base pipeline latency per op class. ----------------------
  switch (rec.op) {
    case OpClass::kIntAlu:
    case OpClass::kNop:
      now_ += config_.pipeline.int_alu;
      break;
    case OpClass::kIntMul:
      now_ += config_.pipeline.int_mul;
      break;
    case OpClass::kIntDiv:
      now_ += config_.pipeline.int_div;
      break;
    case OpClass::kBranch:
      now_ += config_.pipeline.int_alu;
      if (rec.branch_taken) now_ += config_.pipeline.taken_branch_penalty;
      break;
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt:
      now_ += fpu_.Latency(rec.op, rec.fpu_operand_class);
      break;
    case OpClass::kLoad: {
      now_ += config_.pipeline.int_alu;  // address generation + access slot
      if (!dtlb_.Access(rec.mem_addr)) {
        now_ += config_.dtlb.miss_penalty;
      }
      if (!dl1_.Access(rec.mem_addr, /*allocate_on_miss=*/true)) {
        now_ = memory_->LineFill(id_, rec.mem_addr, now_);
      }
      break;
    }
    case OpClass::kStore: {
      now_ += config_.pipeline.int_alu;
      if (!dtlb_.Access(rec.mem_addr)) {
        now_ += config_.dtlb.miss_penalty;
      }
      // Write-through no-write-allocate: lookup updates the line on hit but
      // never allocates; the write always goes to the bus via the buffer.
      dl1_.Access(rec.mem_addr, /*allocate_on_miss=*/false);
      const Address addr = rec.mem_addr;
      // Push is a template over the callable: the bus dispatch inlines here
      // with no std::function type erasure on the per-store path.
      now_ = store_buffer_.Push(now_, [this, addr](Cycles ready) {
        return memory_->Store(id_, addr, ready);
      });
      break;
    }
  }
}

void Core::ApplyReplay(const ReplayDelta& delta) {
  const Cycles old_now = now_;
  now_ += delta.cycles;
  retired_ += delta.instructions;
  il1_.ApplyStatsDelta(delta.il1);
  dl1_.ApplyStatsDelta(delta.dl1);
  itlb_.ApplyStatsDelta(delta.itlb);
  dtlb_.ApplyStatsDelta(delta.dtlb);
  fpu_.ApplyStatsDelta(delta.fpu);
  store_buffer_.ApplyStatsDelta(delta.store_buffer);
  store_buffer_.FastForward(old_now, now_);
  il1_.replacement_rng().SkipWords(delta.rng_words[ReplayDelta::kIl1]);
  il1_.replacement_rng().AddRejections(
      delta.rng_rejections[ReplayDelta::kIl1]);
  dl1_.replacement_rng().SkipWords(delta.rng_words[ReplayDelta::kDl1]);
  dl1_.replacement_rng().AddRejections(
      delta.rng_rejections[ReplayDelta::kDl1]);
  itlb_.replacement_rng().SkipWords(delta.rng_words[ReplayDelta::kItlb]);
  itlb_.replacement_rng().AddRejections(
      delta.rng_rejections[ReplayDelta::kItlb]);
  dtlb_.replacement_rng().SkipWords(delta.rng_words[ReplayDelta::kDtlb]);
  dtlb_.replacement_rng().AddRejections(
      delta.rng_rejections[ReplayDelta::kDtlb]);
  memory_->FastForward(old_now, now_);
  memory_->MutableBus().ApplyStatsDelta(delta.bus);
  memory_->MutableDram().ApplyStatsDelta(delta.dram);
  if (Cache* l2 = memory_->MutableL2()) {
    l2->ApplyStatsDelta(delta.l2);
    l2->replacement_rng().SkipWords(delta.rng_words[ReplayDelta::kL2]);
    l2->replacement_rng().AddRejections(
        delta.rng_rejections[ReplayDelta::kL2]);
  }
}

RunResult Core::Finish() {
  SPTA_REQUIRE_MSG(trace_ != nullptr && cursor_ == trace_->records.size(),
                   "Finish called before the trace was fully retired");
  return FinishResult();
}

RunResult Core::FinishResult() {
  now_ = store_buffer_.DrainAll(now_);
  RunResult r;
  r.cycles = now_;
  r.instructions = retired_;
  r.il1 = il1_.stats();
  r.dl1 = dl1_.stats();
  r.itlb = itlb_.stats();
  r.dtlb = dtlb_.stats();
  r.fpu = fpu_.stats();
  r.store_buffer = store_buffer_.stats();
  for (const auto& draws : {il1_.draw_stats(), dl1_.draw_stats(),
                            itlb_.draw_stats(), dtlb_.draw_stats()}) {
    r.prng.words += draws.words;
    r.prng.rejections += draws.rejections;
  }
  r.bus = memory_->bus().stats();
  r.dram = memory_->dram().stats();
  trace_ = nullptr;
  cursor_ = 0;
  return r;
}

RunResult Core::Run(const trace::Trace& t) {
  AttachTrace(&t);
  // Tight single-core loop: iterate the record array directly instead of
  // the HasWork()/Step() protocol (which re-checks bounds per record and
  // exists for multicore interleaving). Same retire sequence, same result.
  const trace::TraceRecord* records = t.records.data();
  const std::size_t count = t.records.size();
  for (std::size_t i = 0; i < count; ++i) RetireRecord(records[i]);
  cursor_ = count;
  return Finish();
}

}  // namespace spta::sim
