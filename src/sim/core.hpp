// Per-core timing model: a 7-stage in-order LEON3-class pipeline with
// first-level instruction/data caches, split TLBs, an FPU and a store
// buffer, connected to the shared memory system.
//
// The model is cycle-accounting (not micro-architecturally exact): each
// retired instruction charges its base pipeline latency plus any memory /
// FPU stall cycles. This captures precisely the jitter sources the paper
// manipulates — cache placement/replacement, TLB replacement, FPU operand
// dependence, bus/DRAM interference — on top of a jitterless base pipeline.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/fpu.hpp"
#include "sim/memory_system.hpp"
#include "sim/store_buffer.hpp"
#include "sim/tlb.hpp"
#include "trace/record.hpp"

namespace spta::sim {

/// Platform-PRNG consumption of one run, summed over the core's four
/// randomized replacement streams (IL1/DL1/ITLB/DTLB). `words` is engine
/// words served, `rejections` the modulo-rejection retries among them —
/// the entropy-budget attribution the obs layer exports per run.
struct PrngStats {
  std::uint64_t words = 0;
  std::uint64_t rejections = 0;
};

/// Timing outcome and event counters of one run on one core.
struct RunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  CacheStats il1;
  CacheStats dl1;
  TlbStats itlb;
  TlbStats dtlb;
  FpuStats fpu;
  StoreBufferStats store_buffer;
  PrngStats prng;
  /// Shared memory-path statistics at the end of the run (identical in
  /// every core's result of one RunConcurrent: the path is shared).
  BusStats bus;
  DramStats dram;

  double Cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) /
                                   static_cast<double>(instructions);
  }
};

/// Recorded effects of one simulated kernel iteration, replayable by
/// Core::ApplyReplay when the entry state digest matches (src/atlas
/// memoization). Stats are deltas except store_buffer.high_water, which
/// carries the iteration's absolute maximum occupancy (applied as a max).
/// PRNG consumption is per stream so each BlockDraws can be advanced by
/// exactly the words the recorded iteration served.
struct ReplayDelta {
  /// Stream indices for rng_words / rng_rejections.
  enum Stream { kIl1 = 0, kDl1, kItlb, kDtlb, kL2, kStreamCount };

  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  CacheStats il1;
  CacheStats dl1;
  TlbStats itlb;
  TlbStats dtlb;
  FpuStats fpu;
  StoreBufferStats store_buffer;
  BusStats bus;
  DramStats dram;
  CacheStats l2;
  std::uint64_t rng_words[kStreamCount] = {};
  std::uint64_t rng_rejections[kStreamCount] = {};
};

class Core {
 public:
  /// `memory` is the shared memory system; it must outlive the core.
  Core(const PlatformConfig& config, CoreId id, MemorySystem* memory,
       Seed seed);

  /// Installs fresh per-run randomization (placement mapping, replacement
  /// streams) and flushes caches/TLBs/store buffer — the simulator
  /// equivalent of the paper's "flush caches, reset the FPGA, reload the
  /// executable, set a new seed" per-run protocol.
  void Reseed(Seed seed);

  /// Attaches a trace for step-wise execution (multicore interleaving).
  /// The trace must outlive the stepping.
  void AttachTrace(const trace::Trace* t);

  /// True when an attached trace has unretired instructions.
  bool HasWork() const;

  /// Retires the next instruction of the attached trace, advancing the
  /// local clock. Requires HasWork().
  void Step();

  /// Finishes the run: drains the store buffer into the local clock and
  /// returns the result. Requires the attached trace to be fully retired.
  RunResult Finish();

  /// Convenience single-core execution: Reseed is NOT called (callers
  /// decide the per-run protocol); runs the whole trace and finishes.
  RunResult Run(const trace::Trace& t);

  /// Local clock (cycles retired so far).
  Cycles now() const { return now_; }
  CoreId id() const { return id_; }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Retires `count` records starting at `records` (the span-at-a-time
  /// drive used by the segmented memoized runner). Same retire sequence as
  /// Run() over the same records.
  void RetireSpan(const trace::TraceRecord* records, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) RetireRecord(records[i]);
  }

  /// Mixes the complete behavior-determining µarch state into `h`: L1s,
  /// TLBs, the load-delay register, the store buffer and the shared memory
  /// path, all normalized to be time-translation invariant. Two cores with
  /// equal digests retire any future record sequence with identical cycle
  /// deltas, event counters and PRNG consumption.
  void AppendStateDigest(DualHash& h) const {
    il1_.AppendStateDigest(h);
    dl1_.AppendStateDigest(h);
    itlb_.AppendStateDigest(h);
    dtlb_.AppendStateDigest(h);
    h.Mix(pending_load_reg_);
    store_buffer_.AppendStateDigest(h, now_);
    memory_->AppendStateDigest(h, now_);
  }

  /// Replays a recorded iteration without simulating it: advances the
  /// clock and retire count, folds every stat delta in, skips each
  /// replacement stream by the recorded word count and rebases the
  /// time-bearing store-buffer/bus state. Only valid when the current
  /// state digest equals the recorded entry digest AND the recorded exit
  /// digest equals the recorded entry digest (self-fixed-point) — then the
  /// result is bit-identical to simulating by construction.
  void ApplyReplay(const ReplayDelta& delta);

  /// Finish() without the attached-trace requirement, for runners that
  /// drive the core via RetireSpan instead of AttachTrace/Run.
  RunResult FinishResult();

  Fpu& fpu() { return fpu_; }
  StoreBuffer& store_buffer() { return store_buffer_; }
  MemorySystem& memory() { return *memory_; }

  // --- Fault-injection surface (src/fault) -------------------------------
  // Mutable access to the per-core arrays so the seeded injector can flip
  // tag/VPN bits between the per-run reset and execution. Off the hot path.
  Cache& il1() { return il1_; }
  Cache& dl1() { return dl1_; }
  Tlb& itlb() { return itlb_; }
  Tlb& dtlb() { return dtlb_; }

 private:
  void RetireRecord(const trace::TraceRecord& rec);

  const PlatformConfig& config_;
  CoreId id_;
  MemorySystem* memory_;
  Cache il1_;
  Cache dl1_;
  Tlb itlb_;
  Tlb dtlb_;
  Fpu fpu_;
  StoreBuffer store_buffer_;
  Cycles now_ = 0;
  std::uint64_t retired_ = 0;
  std::uint8_t pending_load_reg_ = trace::kNoReg;
  const trace::Trace* trace_ = nullptr;
  std::size_t cursor_ = 0;
};

}  // namespace spta::sim
