#include "sim/dram.hpp"

#include <bit>

#include "common/assert.hpp"

namespace spta::sim {

Dram::Dram(const DramConfig& config)
    : config_(config),
      row_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.row_bytes))),
      bank_shift_(static_cast<std::uint32_t>(std::countr_zero(config.banks))),
      open_row_(config.banks, -1) {
  SPTA_REQUIRE(std::has_single_bit(config.banks));
  SPTA_REQUIRE(std::has_single_bit(config.row_bytes));
}

std::uint32_t Dram::BankOf(Address addr) const {
  return static_cast<std::uint32_t>(addr >> row_shift_) &
         (config_.banks - 1);
}

std::uint64_t Dram::RowOf(Address addr) const {
  return addr >> (row_shift_ + bank_shift_);
}

Cycles Dram::AccessLatency(Address addr, Cycles now) {
  ++stats_.accesses;
  Cycles refresh_stall = 0;
  if (config_.refresh_interval > 0) {
    // All-bank refresh occupies the device for refresh_duration cycles at
    // every multiple of refresh_interval; an access arriving inside the
    // window waits for it to finish.
    const Cycles phase = now % config_.refresh_interval;
    if (phase < config_.refresh_duration) {
      refresh_stall = config_.refresh_duration - phase;
      stats_.refresh_stall_cycles += refresh_stall;
    }
  }
  const std::uint32_t bank = BankOf(addr);
  const auto row = static_cast<std::int64_t>(RowOf(addr));
  if (open_row_[bank] == row) {
    ++stats_.row_hits;
    return refresh_stall + config_.row_hit_latency;
  }
  open_row_[bank] = row;
  return refresh_stall + config_.row_miss_latency;
}

void Dram::Reset() {
  for (auto& r : open_row_) r = -1;
  stats_ = DramStats{};
}

}  // namespace spta::sim
