// DRAM controller with per-bank open-row (row-buffer) tracking.
//
// An access to the currently open row of a bank is a CAS-only "row hit";
// any other row pays precharge + activate + CAS. Row-buffer state is the
// last deterministic-but-history-dependent jitter source behind the bus;
// the MBPTA protocol's per-run reset (Flush) puts it in a known state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  Cycles refresh_stall_cycles = 0;
};

class Dram {
 public:
  explicit Dram(const DramConfig& config);

  /// Latency of one access to `addr` issued at `now`, updating the bank's
  /// open row. Includes any stall for an in-progress all-bank refresh
  /// (when refresh_interval > 0).
  Cycles AccessLatency(Address addr, Cycles now = 0);

  /// Closes all rows and clears statistics (between measurement runs).
  void Reset();

  /// Bank index of `addr` (exposed for tests).
  std::uint32_t BankOf(Address addr) const;
  /// Row index of `addr` within its bank (exposed for tests).
  std::uint64_t RowOf(Address addr) const;

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Mixes the per-bank open rows into `h`. The row-buffer state carries
  /// no absolute-time component (refresh phase is `now % refresh_interval`
  /// and is digested by MemorySystem, which knows `now`).
  void AppendStateDigest(DualHash& h) const {
    for (const std::int64_t row : open_row_) {
      h.Mix(static_cast<std::uint64_t>(row));
    }
  }

  /// Folds a recorded iteration's DRAM stats into the counters.
  void ApplyStatsDelta(const DramStats& delta) {
    stats_.accesses += delta.accesses;
    stats_.row_hits += delta.row_hits;
    stats_.refresh_stall_cycles += delta.refresh_stall_cycles;
  }

 private:
  DramConfig config_;
  std::uint32_t row_shift_;
  std::uint32_t bank_shift_;
  std::vector<std::int64_t> open_row_;  ///< -1 = closed.
  DramStats stats_;
};

}  // namespace spta::sim
