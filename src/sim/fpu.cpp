#include "sim/fpu.hpp"

#include "common/assert.hpp"

namespace spta::sim {

bool IsFpuOp(trace::OpClass op) {
  switch (op) {
    case trace::OpClass::kFpAdd:
    case trace::OpClass::kFpMul:
    case trace::OpClass::kFpDiv:
    case trace::OpClass::kFpSqrt:
      return true;
    default:
      return false;
  }
}

Fpu::Fpu(const FpuConfig& config) : config_(config) {}

Cycles Fpu::WorstCaseLatency(trace::OpClass op) const {
  const auto worst_class = static_cast<Cycles>(trace::kFpuOperandClasses - 1);
  switch (op) {
    case trace::OpClass::kFpAdd:
      return config_.add_latency;
    case trace::OpClass::kFpMul:
      return config_.mul_latency;
    case trace::OpClass::kFpDiv:
      return config_.div_base + config_.div_step * worst_class;
    case trace::OpClass::kFpSqrt:
      return config_.sqrt_base + config_.sqrt_step * worst_class;
    default:
      SPTA_REQUIRE_MSG(false, "not an FPU op");
      return 0;
  }
}

Cycles Fpu::Latency(trace::OpClass op, std::uint8_t operand_class) {
  SPTA_REQUIRE(IsFpuOp(op));
  SPTA_REQUIRE(operand_class < trace::kFpuOperandClasses);
  Cycles lat;
  if (config_.mode == FpuMode::kWorstCaseFixed ||
      !trace::IsJitteryFpu(op)) {
    lat = WorstCaseLatency(op);
    // Fixed-latency ops always charge their (single) latency; in worst-case
    // mode the jittery ops charge their maximum regardless of operands.
    if (!trace::IsJitteryFpu(op)) {
      switch (op) {
        case trace::OpClass::kFpAdd:
          lat = config_.add_latency;
          break;
        case trace::OpClass::kFpMul:
          lat = config_.mul_latency;
          break;
        default:
          break;
      }
    }
  } else {
    const auto cls = static_cast<Cycles>(operand_class);
    lat = op == trace::OpClass::kFpDiv
              ? config_.div_base + config_.div_step * cls
              : config_.sqrt_base + config_.sqrt_step * cls;
  }
  ++stats_.operations;
  stats_.total_cycles += lat;
  return lat;
}

}  // namespace spta::sim
