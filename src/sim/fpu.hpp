// FPU latency model.
//
// On the real GRFPU, FDIV and FSQRT latency depends on the operand values;
// all other FP operations are fixed-latency (jitterless). The paper's
// hardware change forces FDIV/FSQRT to their *worst-case fixed* latency
// during the analysis phase, upper-bounding operation-phase behaviour
// without user-controlled experiments. Both modes are modeled here.
#pragma once

#include "common/types.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta::sim {

struct FpuStats {
  std::uint64_t operations = 0;
  Cycles total_cycles = 0;
};

class Fpu {
 public:
  explicit Fpu(const FpuConfig& config);

  /// Latency of one FP operation given its operand class. Non-FPU op
  /// classes are rejected (precondition).
  Cycles Latency(trace::OpClass op, std::uint8_t operand_class);

  /// Worst-case latency of `op` across all operand classes (what the
  /// analysis-phase fixed mode charges).
  Cycles WorstCaseLatency(trace::OpClass op) const;

  const FpuConfig& config() const { return config_; }
  const FpuStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FpuStats{}; }

  /// Folds a recorded iteration's FPU stats into the counters (src/atlas
  /// memoized fast-forward). The FPU itself is stateless, so counters are
  /// its only replayable effect.
  void ApplyStatsDelta(const FpuStats& delta) {
    stats_.operations += delta.operations;
    stats_.total_cycles += delta.total_cycles;
  }

 private:
  FpuConfig config_;
  FpuStats stats_;
};

/// True for op classes handled by the FPU.
bool IsFpuOp(trace::OpClass op);

}  // namespace spta::sim
