#include "sim/memory_system.hpp"

#include "common/hash.hpp"

namespace spta::sim {

MemorySystem::MemorySystem(const BusConfig& bus_config,
                           const DramConfig& dram_config)
    : MemorySystem(bus_config, dram_config, L2Config{}, 0) {}

MemorySystem::MemorySystem(const BusConfig& bus_config,
                           const DramConfig& dram_config,
                           const L2Config& l2_config, Seed seed)
    : bus_(bus_config), dram_(dram_config), l2_config_(l2_config) {
  if (l2_config_.enabled) {
    l2_.emplace(l2_config_.cache, DeriveSeed(seed, "l2"));
  }
}

Cycles MemorySystem::LineFill(CoreId core, Address addr, Cycles ready_time) {
  // The AHB-style bus is occupied for the whole read transaction.
  // Timing is decided first (under the current L2/DRAM state), then the
  // bus is acquired for that duration.
  Cycles service;
  if (l2_ && l2_->Access(addr, /*allocate_on_miss=*/true)) {
    service = l2_config_.hit_latency;
  } else {
    // DRAM access begins after the (failed) L2 lookup.
    const Cycles lookup = l2_ ? l2_config_.hit_latency : 0;
    service = lookup + dram_.AccessLatency(addr, ready_time + lookup);
  }
  const Cycles duration = service + bus_.config().line_transfer_cycles;
  const Cycles start = bus_.Acquire(core, ready_time, duration);
  return start + duration;
}

Cycles MemorySystem::Store(CoreId core, Address addr, Cycles ready_time) {
  // Write-through all the way to DRAM; the L2 is updated on a hit but
  // (like the DL1) does not allocate on a store miss.
  if (l2_) l2_->Access(addr, /*allocate_on_miss=*/false);
  const Cycles dram_latency = dram_.AccessLatency(addr, ready_time);
  const Cycles duration =
      dram_latency + bus_.config().store_transfer_cycles;
  const Cycles start = bus_.Acquire(core, ready_time, duration);
  return start + duration;
}

void MemorySystem::Reset(Seed run_seed) {
  bus_.Reset();
  dram_.Reset();
  if (l2_) {
    l2_->Reseed(DeriveSeed(run_seed, "l2"));
    l2_->ResetStats();
  }
}

}  // namespace spta::sim
