// Shared memory path: bus + optional unified L2 + DRAM controller.
//
// One instance is shared by all cores of the platform; it converts L1 miss
// and write-through store events into completion times, serializing them on
// the bus, filtering them through the (optional, LEON4-style) shared L2 and
// applying DRAM row-buffer + refresh timing.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"

namespace spta::sim {

class MemorySystem {
 public:
  MemorySystem(const BusConfig& bus_config, const DramConfig& dram_config);
  MemorySystem(const BusConfig& bus_config, const DramConfig& dram_config,
               const L2Config& l2_config, Seed seed);

  /// A cache-line refill requested by `core`, ready at `ready_time`.
  /// The bus is held for the L2 lookup (and on an L2 miss the DRAM access)
  /// plus the line transfer. Returns the completion time.
  Cycles LineFill(CoreId core, Address addr, Cycles ready_time);

  /// A write-through store (single word). Returns the completion time; the
  /// requesting core does not wait for it unless its store buffer is full.
  Cycles Store(CoreId core, Address addr, Cycles ready_time);

  /// Clears bus, L2 and DRAM state + statistics (between measurement
  /// runs); `run_seed` re-randomizes the L2 when it uses random policies.
  void Reset(Seed run_seed = 0);

  const Bus& bus() const { return bus_; }
  const Dram& dram() const { return dram_; }
  /// Null when the platform has no L2.
  const Cache* l2() const { return l2_ ? &*l2_ : nullptr; }
  /// Mutable L2 for the fault-injection subsystem (src/fault); null when
  /// the platform has no L2. Off the hot path.
  Cache* MutableL2() { return l2_ ? &*l2_ : nullptr; }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Mixes the shared-path state into `h` relative to core time `now`:
  /// the bus busy horizon (clamped offset), DRAM open rows, the refresh
  /// phase (`now % refresh_interval` — the only absolute-time dependence
  /// in DRAM timing) and the L2 when present.
  void AppendStateDigest(DualHash& h, Cycles now) const {
    bus_.AppendStateDigest(h, now);
    dram_.AppendStateDigest(h);
    if (dram_.config().refresh_interval > 0) {
      h.Mix(now % dram_.config().refresh_interval);
    }
    if (l2_) l2_->AppendStateDigest(h);
  }

  /// Rebases time-bearing state (the bus horizon) from `old_now` to
  /// `new_now` after a memoized fast-forward. DRAM needs no rebasing: row
  /// state is time-free and the refresh phase advances with `now` by the
  /// same recorded cycle delta in both the recorded and replayed timeline.
  void FastForward(Cycles old_now, Cycles new_now) {
    bus_.FastForward(old_now, new_now);
  }

  /// Mutable access for memoized stats replay and L2 draw fast-forward.
  Bus& MutableBus() { return bus_; }
  Dram& MutableDram() { return dram_; }

 private:
  Bus bus_;
  Dram dram_;
  L2Config l2_config_;
  std::optional<Cache> l2_;
};

}  // namespace spta::sim
