// Shared memory path: bus + optional unified L2 + DRAM controller.
//
// One instance is shared by all cores of the platform; it converts L1 miss
// and write-through store events into completion times, serializing them on
// the bus, filtering them through the (optional, LEON4-style) shared L2 and
// applying DRAM row-buffer + refresh timing.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"

namespace spta::sim {

class MemorySystem {
 public:
  MemorySystem(const BusConfig& bus_config, const DramConfig& dram_config);
  MemorySystem(const BusConfig& bus_config, const DramConfig& dram_config,
               const L2Config& l2_config, Seed seed);

  /// A cache-line refill requested by `core`, ready at `ready_time`.
  /// The bus is held for the L2 lookup (and on an L2 miss the DRAM access)
  /// plus the line transfer. Returns the completion time.
  Cycles LineFill(CoreId core, Address addr, Cycles ready_time);

  /// A write-through store (single word). Returns the completion time; the
  /// requesting core does not wait for it unless its store buffer is full.
  Cycles Store(CoreId core, Address addr, Cycles ready_time);

  /// Clears bus, L2 and DRAM state + statistics (between measurement
  /// runs); `run_seed` re-randomizes the L2 when it uses random policies.
  void Reset(Seed run_seed = 0);

  const Bus& bus() const { return bus_; }
  const Dram& dram() const { return dram_; }
  /// Null when the platform has no L2.
  const Cache* l2() const { return l2_ ? &*l2_ : nullptr; }
  /// Mutable L2 for the fault-injection subsystem (src/fault); null when
  /// the platform has no L2. Off the hot path.
  Cache* MutableL2() { return l2_ ? &*l2_ : nullptr; }

 private:
  Bus bus_;
  Dram dram_;
  L2Config l2_config_;
  std::optional<Cache> l2_;
};

}  // namespace spta::sim
