// The cache set-index (placement) functions, shared by the single-seed
// Cache and the multi-lane batch kernel.
//
// Placement is the one piece of randomized-cache behavior computed on BOTH
// the serial and the batched hot paths; keeping it in one inline helper
// makes "the two kernels use the same placement hash" true by construction
// instead of by parallel maintenance. Semantics are frozen by the
// reference-model differentials (tests/sim_equivalence_test.cpp) and the
// lane battery (tests/sim_batch_equivalence_test.cpp).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

/// Set index of `line` under `placement` for a cache with sets =
/// index_mask + 1 (power of two) and set_shift = log2(sets). `seed` drives
/// the randomized policies and is ignored by kModulo.
inline std::uint32_t PlacementSetIndex(Placement placement,
                                       std::uint64_t line,
                                       std::uint32_t index_mask,
                                       std::uint32_t set_shift, Seed seed) {
  switch (placement) {
    case Placement::kModulo:
      return static_cast<std::uint32_t>(line) & index_mask;
    case Placement::kRandomModulo: {
      // Random modulo (DAC 2016): rotate the conventional index by a
      // per-(tag, seed) random amount. Lines sharing a tag keep distinct
      // sets (the map is a permutation within each tag group), so unit
      // stride never self-conflicts — but the placement of each tag group
      // is random per seed.
      const std::uint64_t index = line & index_mask;
      const std::uint64_t tag = line >> set_shift;
      const std::uint64_t h = Mix64(tag ^ seed);
      return static_cast<std::uint32_t>((index + h) & index_mask);
    }
    case Placement::kHashRandom:
      // Hash-based random placement (DATE 2013): the whole line number is
      // hashed, so even consecutive lines can collide for some seeds.
      return static_cast<std::uint32_t>(Mix64(line ^ seed)) & index_mask;
  }
  SPTA_CHECK_MSG(false, "unreachable placement policy");
  return 0;
}

}  // namespace spta::sim
