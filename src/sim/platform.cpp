#include "sim/platform.hpp"

#include <limits>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

Platform::Platform(const PlatformConfig& config, Seed master_seed)
    : config_(config),
      memory_(config.bus, config.dram, config.l2,
              DeriveSeed(master_seed, "memory")) {
  config_.Validate();
  cores_.reserve(config_.cores);
  for (CoreId c = 0; c < config_.cores; ++c) {
    cores_.emplace_back(config_, c, &memory_,
                        DeriveSeed(master_seed, c));
  }
}

void Platform::ResetAll(Seed run_seed) {
  memory_.Reset(run_seed);
  for (CoreId c = 0; c < config_.cores; ++c) {
    cores_[c].Reseed(DeriveSeed(run_seed, c));
  }
}

RunResult Platform::Run(const trace::Trace& t, Seed run_seed) {
  ResetAll(run_seed);
  return cores_[0].Run(t);
}

RunResult Platform::RunWithHook(
    const trace::Trace& t, Seed run_seed,
    const std::function<void(Platform&)>& after_reset) {
  ResetAll(run_seed);
  if (after_reset) after_reset(*this);
  return cores_[0].Run(t);
}

std::vector<RunResult> Platform::RunConcurrent(
    std::span<const trace::Trace* const> per_core, Seed run_seed) {
  SPTA_REQUIRE_MSG(per_core.size() == cores_.size(),
                   "expected " << cores_.size() << " trace slots, got "
                               << per_core.size());
  ResetAll(run_seed);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (per_core[c] != nullptr) cores_[c].AttachTrace(per_core[c]);
  }
  // Interleave in local-timestamp order so shared-resource requests reach
  // the bus approximately in global time order.
  for (;;) {
    Core* next = nullptr;
    for (auto& core : cores_) {
      if (!core.HasWork()) continue;
      if (next == nullptr || core.now() < next->now()) next = &core;
    }
    if (next == nullptr) break;
    next->Step();
  }
  std::vector<RunResult> results(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (per_core[c] != nullptr) results[c] = cores_[c].Finish();
  }
  return results;
}

}  // namespace spta::sim
