// The assembled multicore platform and the per-run measurement protocol.
//
// Platform owns the cores and the shared memory system and reproduces the
// paper's measurement protocol in simulation: for every run, caches and
// TLBs are flushed, all state is reset and (on the randomized platform) a
// fresh PRNG seed is installed — "we flush caches, reset the FPGA and
// reload the executable across executions ... and set a new seed for each
// experiment".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/memory_system.hpp"
#include "trace/record.hpp"

namespace spta::sim {

class Platform {
 public:
  /// Builds the platform; `master_seed` only seeds initial state (each run
  /// passes its own seed).
  Platform(const PlatformConfig& config, Seed master_seed);

  /// One measurement run of `t` on core 0 with everything else idle.
  /// Performs the full per-run reset protocol with `run_seed`.
  RunResult Run(const trace::Trace& t, Seed run_seed);

  /// One measurement run with a workload on every core given a trace per
  /// core (nullptr = idle core). Cores share the bus and DRAM; execution is
  /// interleaved in timestamp order so interference is modeled. Returns one
  /// result per core (default-constructed for idle cores).
  std::vector<RunResult> RunConcurrent(
      std::span<const trace::Trace* const> per_core, Seed run_seed);

  /// One measurement run like Run(), but invokes `after_reset` between the
  /// per-run reset protocol and execution. This is the fault-injection
  /// window: state corrupted here models an upset that strikes while the
  /// task runs, after the protocol's flush/reseed. Passing a null hook is
  /// exactly Run().
  RunResult RunWithHook(const trace::Trace& t, Seed run_seed,
                        const std::function<void(Platform&)>& after_reset);

  /// Performs the full per-run reset protocol without executing anything —
  /// the entry point for external runners (src/atlas memoized execution)
  /// that then drive core(0) directly via RetireSpan/FinishResult. Run()
  /// is exactly BeginRun() followed by core(0).Run(t).
  void BeginRun(Seed run_seed) { ResetAll(run_seed); }

  const PlatformConfig& config() const { return config_; }
  const MemorySystem& memory() const { return memory_; }
  /// Mutable core access for the fault-injection subsystem (src/fault).
  Core& core(CoreId id) { return cores_.at(id); }
  /// Mutable memory-path access for the fault-injection subsystem.
  MemorySystem& MutableMemory() { return memory_; }

 private:
  void ResetAll(Seed run_seed);

  PlatformConfig config_;
  MemorySystem memory_;
  std::vector<Core> cores_;
};

}  // namespace spta::sim
