#include "sim/reference_model.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

// ---------------------------------------------------------------------------
// ReferenceCache — the seed sim/cache.cpp implementation, unmodified.

ReferenceCache::ReferenceCache(const CacheConfig& config, Seed seed)
    : config_(config),
      sets_(config.num_sets()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.line_bytes))),
      index_mask_(sets_ - 1),
      placement_seed_(seed),
      replacement_rng_(DeriveSeed(seed, "cache-repl")),
      lines_(static_cast<std::size_t>(sets_) * config.ways) {
  SPTA_REQUIRE(std::has_single_bit(sets_));
}

std::uint64_t ReferenceCache::LineNumber(Address addr) const {
  return addr >> line_shift_;
}

std::uint32_t ReferenceCache::SetIndexFor(Address addr) const {
  const std::uint64_t line = LineNumber(addr);
  switch (config_.placement) {
    case Placement::kModulo:
      return static_cast<std::uint32_t>(line) & index_mask_;
    case Placement::kRandomModulo: {
      const std::uint64_t index = line & index_mask_;
      const std::uint64_t tag = line >> std::countr_zero(sets_);
      const std::uint64_t h = Mix64(tag ^ placement_seed_);
      return static_cast<std::uint32_t>((index + h) & index_mask_);
    }
    case Placement::kHashRandom: {
      return static_cast<std::uint32_t>(Mix64(line ^ placement_seed_)) &
             index_mask_;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable placement policy");
  return 0;
}

std::uint32_t ReferenceCache::Victim(std::uint32_t set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) return w;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.ways; ++w) {
        if (base[w].lru_stamp < base[victim].lru_stamp) victim = w;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(config_.ways);
    case Replacement::kNru: {
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].referenced) return w;
      }
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        base[w].referenced = false;
      }
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

bool ReferenceCache::Access(Address addr, bool allocate_on_miss) {
  ++stats_.accesses;
  ++access_clock_;
  const std::uint64_t line = LineNumber(addr);
  const std::uint32_t set = SetIndexFor(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].lru_stamp = access_clock_;
      base[w].referenced = true;
      return true;
    }
  }
  ++stats_.misses;
  if (allocate_on_miss) {
    const std::uint32_t w = Victim(set);
    base[w].valid = true;
    base[w].tag = line;
    base[w].lru_stamp = access_clock_;
    base[w].referenced = true;
  }
  return false;
}

void ReferenceCache::Flush() {
  for (auto& l : lines_) l = Line{};
  access_clock_ = 0;
}

void ReferenceCache::Reseed(Seed seed) {
  placement_seed_ = seed;
  replacement_rng_ = prng::HwPrng(DeriveSeed(seed, "cache-repl"));
  Flush();
}

// ---------------------------------------------------------------------------
// ReferenceTlb — the seed sim/tlb.cpp implementation, unmodified.

ReferenceTlb::ReferenceTlb(const TlbConfig& config, Seed seed)
    : config_(config),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.page_bytes))),
      replacement_rng_(DeriveSeed(seed, "tlb-repl")),
      entries_(config.entries) {
  SPTA_REQUIRE(std::has_single_bit(config.page_bytes));
}

std::uint32_t ReferenceTlb::Victim() {
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) return i;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].lru_stamp < entries_[victim].lru_stamp) victim = i;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(
          static_cast<std::uint32_t>(entries_.size()));
    case Replacement::kNru: {
      for (std::uint32_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].referenced) return i;
      }
      for (auto& e : entries_) e.referenced = false;
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

bool ReferenceTlb::Access(Address addr) {
  ++stats_.accesses;
  ++access_clock_;
  const std::uint64_t vpn = addr >> page_shift_;
  for (auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.lru_stamp = access_clock_;
      e.referenced = true;
      return true;
    }
  }
  ++stats_.misses;
  Entry& e = entries_[Victim()];
  e.valid = true;
  e.vpn = vpn;
  e.lru_stamp = access_clock_;
  e.referenced = true;
  return false;
}

void ReferenceTlb::Flush() {
  for (auto& e : entries_) e = Entry{};
  access_clock_ = 0;
}

void ReferenceTlb::Reseed(Seed seed) {
  replacement_rng_ = prng::HwPrng(DeriveSeed(seed, "tlb-repl"));
  Flush();
}

}  // namespace spta::sim
