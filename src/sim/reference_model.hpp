// Reference (pre-fast-path) cache and TLB lookup implementations.
//
// These are the seed implementations the optimized sim/cache.hpp and
// sim/tlb.hpp were refactored from: naive array-of-structs per-line state,
// early-exit hit scans, a direct (unbatched) HwPrng replacement stream.
// They are retained VERBATIM in behavior as the executable specification of
// the lookup semantics: tests/sim_equivalence_test.cpp drives both paths
// over randomized trace/seed/config matrices across every placement ×
// replacement policy combination and asserts identical hit/miss streams,
// victim choices and statistics. They are not used on any production path.
//
// When changing cache/TLB semantics deliberately, change BOTH models and
// re-baseline the golden cycle counts (tests/golden_regression_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "prng/hw_prng.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/tlb.hpp"

namespace spta::sim {

/// Seed implementation of sim::Cache (same constructor semantics, same
/// seed-derivation labels, same PRNG consumption).
class ReferenceCache {
 public:
  ReferenceCache(const CacheConfig& config, Seed seed);

  bool Access(Address addr, bool allocate_on_miss = true);
  void Flush();
  void Reseed(Seed seed);
  std::uint32_t SetIndexFor(Address addr) const;

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;  ///< Higher = more recent (LRU policy).
    bool referenced = false;      ///< NRU reference bit.
  };

  std::uint64_t LineNumber(Address addr) const;
  std::uint32_t Victim(std::uint32_t set);

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint32_t line_shift_;
  std::uint32_t index_mask_;
  Seed placement_seed_;
  prng::HwPrng replacement_rng_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set.
  std::uint64_t access_clock_ = 0;
  CacheStats stats_;
};

/// Seed implementation of sim::Tlb.
class ReferenceTlb {
 public:
  ReferenceTlb(const TlbConfig& config, Seed seed);

  bool Access(Address addr);
  void Flush();
  void Reseed(Seed seed);

  const TlbConfig& config() const { return config_; }
  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t vpn = 0;
    std::uint64_t lru_stamp = 0;
    bool referenced = false;
  };

  std::uint32_t Victim();

  TlbConfig config_;
  std::uint32_t page_shift_;
  prng::HwPrng replacement_rng_;
  std::vector<Entry> entries_;
  std::uint64_t access_clock_ = 0;
  TlbStats stats_;
};

}  // namespace spta::sim
