#include "sim/store_buffer.hpp"

namespace spta::sim {

Cycles StoreBuffer::DrainAll(Cycles now) {
  const Cycles done = std::max(now, last_completion_);
  head_ = 0;
  count_ = 0;
  return done;
}

void StoreBuffer::Reset() {
  head_ = 0;
  count_ = 0;
  last_completion_ = 0;
  stats_ = StoreBufferStats{};
}

}  // namespace spta::sim
