#include "sim/store_buffer.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace spta::sim {

StoreBuffer::StoreBuffer(const StoreBufferConfig& config) : config_(config) {
  SPTA_REQUIRE(config.depth >= 1);
}

Cycles StoreBuffer::Push(Cycles now,
                         const std::function<Cycles(Cycles)>& issue) {
  ++stats_.stores;
  // Retire entries that completed by `now`.
  while (!completions_.empty() && completions_.front() <= now) {
    completions_.pop_front();
  }
  // Full: stall until the oldest entry completes.
  if (completions_.size() >= config_.depth) {
    const Cycles wait_until = completions_.front();
    SPTA_CHECK(wait_until > now);
    stats_.stall_cycles += wait_until - now;
    ++stats_.full_stalls;
    now = wait_until;
    completions_.pop_front();
  }
  // FIFO drain: this store may start only after the previous one completed.
  const Cycles ready = std::max(now, last_completion_);
  const Cycles completion = issue(ready);
  SPTA_CHECK(completion >= ready);
  last_completion_ = completion;
  completions_.push_back(completion);
  return now;
}

Cycles StoreBuffer::DrainAll(Cycles now) {
  const Cycles done = std::max(now, last_completion_);
  completions_.clear();
  return done;
}

void StoreBuffer::Reset() {
  completions_.clear();
  last_completion_ = 0;
  stats_ = StoreBufferStats{};
}

}  // namespace spta::sim
