// Store buffer between the core and the write-through bus path.
//
// LEON3's DL1 is write-through no-write-allocate: every store becomes a bus
// write. The store buffer decouples the pipeline from bus latency; the core
// only stalls when the buffer is full. Drains are FIFO and serialized.
//
// Fast path: Push() is a template over the issue callable (no std::function
// type erasure — the bus call inlines into the core's retire loop) and the
// in-flight FIFO is a fixed ring buffer sized at construction, so the
// steady state performs zero allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct StoreBufferStats {
  std::uint64_t stores = 0;
  std::uint64_t full_stalls = 0;
  Cycles stall_cycles = 0;
  /// Maximum in-flight occupancy observed (src/obs sizing signal: how close
  /// the workload drives the buffer to its depth).
  std::uint64_t high_water = 0;
};

class StoreBuffer {
 public:
  explicit StoreBuffer(const StoreBufferConfig& config)
      : config_(config), ring_(config.depth) {
    SPTA_REQUIRE(config.depth >= 1);
  }

  /// Accounts a store issued at core time `now`. `issue` schedules the bus
  /// write: it receives the earliest cycle the write may start (FIFO after
  /// the previous store) and returns its completion time. Returns the new
  /// core time, which exceeds `now` only if the buffer was full.
  template <typename Issue>
  Cycles Push(Cycles now, Issue&& issue) {
    ++stats_.stores;
    // Retire entries that completed by `now`.
    while (count_ > 0 && ring_[head_] <= now) PopFront();
    // Full: stall until the oldest entry completes.
    if (count_ >= config_.depth) {
      const Cycles wait_until = ring_[head_];
      SPTA_CHECK(wait_until > now);
      stats_.stall_cycles += wait_until - now;
      ++stats_.full_stalls;
      now = wait_until;
      PopFront();
    }
    // FIFO drain: this store may start only after the previous one
    // completed.
    const Cycles ready = std::max(now, last_completion_);
    const Cycles completion = issue(ready);
    SPTA_CHECK(completion >= ready);
    last_completion_ = completion;
    PushBack(completion);
    if (count_ > stats_.high_water) stats_.high_water = count_;
    return now;
  }

  /// Core time after waiting for every buffered store to complete (used at
  /// run end so measured times include the full drain).
  Cycles DrainAll(Cycles now);

  /// Empties the buffer and clears statistics (between runs).
  void Reset();

  std::size_t in_flight() const { return count_; }
  const StoreBufferStats& stats() const { return stats_; }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Mixes the behavior-determining state into `h`, relative to core time
  /// `now`: the in-flight completion offsets in FIFO order and the FIFO
  /// drain horizon (last_completion_). Offsets are clamped at zero — an
  /// entry or horizon in the past behaves exactly like one at `now` (every
  /// future comparison is against times >= now), so clamping makes the
  /// digest invariant to how long ago completed stores completed.
  void AppendStateDigest(DualHash& h, Cycles now) const {
    h.Mix(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t slot = head_ + i;
      if (slot >= ring_.size()) slot -= ring_.size();
      h.Mix(ring_[slot] > now ? ring_[slot] - now : 0);
    }
    h.Mix(last_completion_ > now ? last_completion_ - now : 0);
  }

  /// Rebases the absolute completion times from core time `old_now` to
  /// `new_now`, preserving the (clamped) relative offsets — the memoized
  /// fast-forward that replaces simulating a kernel iteration whose entry
  /// and exit states are digest-equal. Past times clamp to `new_now`,
  /// which is behaviorally identical (see AppendStateDigest).
  void FastForward(Cycles old_now, Cycles new_now) {
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t slot = head_ + i;
      if (slot >= ring_.size()) slot -= ring_.size();
      ring_[slot] =
          new_now + (ring_[slot] > old_now ? ring_[slot] - old_now : 0);
    }
    last_completion_ =
        new_now +
        (last_completion_ > old_now ? last_completion_ - old_now : 0);
  }

  /// Folds a recorded iteration's stats into the counters: event counts
  /// sum, the high-water mark maxes against the iteration's own maximum
  /// occupancy (`high_water` in `delta` carries that absolute maximum).
  void ApplyStatsDelta(const StoreBufferStats& delta) {
    stats_.stores += delta.stores;
    stats_.full_stalls += delta.full_stalls;
    stats_.stall_cycles += delta.stall_cycles;
    if (delta.high_water > stats_.high_water) {
      stats_.high_water = delta.high_water;
    }
  }

 private:
  void PopFront() {
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    --count_;
  }
  void PushBack(Cycles completion) {
    std::size_t tail = head_ + count_;
    if (tail >= ring_.size()) tail -= ring_.size();
    ring_[tail] = completion;
    ++count_;
  }

  StoreBufferConfig config_;
  /// Fixed-capacity FIFO of in-flight completion times; `config_.depth`
  /// slots suffice because Push() pops before it pushes when full.
  std::vector<Cycles> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Cycles last_completion_ = 0;
  StoreBufferStats stats_;
};

}  // namespace spta::sim
