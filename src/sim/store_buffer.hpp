// Store buffer between the core and the write-through bus path.
//
// LEON3's DL1 is write-through no-write-allocate: every store becomes a bus
// write. The store buffer decouples the pipeline from bus latency; the core
// only stalls when the buffer is full. Drains are FIFO and serialized.
//
// Fast path: Push() is a template over the issue callable (no std::function
// type erasure — the bus call inlines into the core's retire loop) and the
// in-flight FIFO is a fixed ring buffer sized at construction, so the
// steady state performs zero allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct StoreBufferStats {
  std::uint64_t stores = 0;
  std::uint64_t full_stalls = 0;
  Cycles stall_cycles = 0;
  /// Maximum in-flight occupancy observed (src/obs sizing signal: how close
  /// the workload drives the buffer to its depth).
  std::uint64_t high_water = 0;
};

class StoreBuffer {
 public:
  explicit StoreBuffer(const StoreBufferConfig& config)
      : config_(config), ring_(config.depth) {
    SPTA_REQUIRE(config.depth >= 1);
  }

  /// Accounts a store issued at core time `now`. `issue` schedules the bus
  /// write: it receives the earliest cycle the write may start (FIFO after
  /// the previous store) and returns its completion time. Returns the new
  /// core time, which exceeds `now` only if the buffer was full.
  template <typename Issue>
  Cycles Push(Cycles now, Issue&& issue) {
    ++stats_.stores;
    // Retire entries that completed by `now`.
    while (count_ > 0 && ring_[head_] <= now) PopFront();
    // Full: stall until the oldest entry completes.
    if (count_ >= config_.depth) {
      const Cycles wait_until = ring_[head_];
      SPTA_CHECK(wait_until > now);
      stats_.stall_cycles += wait_until - now;
      ++stats_.full_stalls;
      now = wait_until;
      PopFront();
    }
    // FIFO drain: this store may start only after the previous one
    // completed.
    const Cycles ready = std::max(now, last_completion_);
    const Cycles completion = issue(ready);
    SPTA_CHECK(completion >= ready);
    last_completion_ = completion;
    PushBack(completion);
    if (count_ > stats_.high_water) stats_.high_water = count_;
    return now;
  }

  /// Core time after waiting for every buffered store to complete (used at
  /// run end so measured times include the full drain).
  Cycles DrainAll(Cycles now);

  /// Empties the buffer and clears statistics (between runs).
  void Reset();

  std::size_t in_flight() const { return count_; }
  const StoreBufferStats& stats() const { return stats_; }

 private:
  void PopFront() {
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    --count_;
  }
  void PushBack(Cycles completion) {
    std::size_t tail = head_ + count_;
    if (tail >= ring_.size()) tail -= ring_.size();
    ring_[tail] = completion;
    ++count_;
  }

  StoreBufferConfig config_;
  /// Fixed-capacity FIFO of in-flight completion times; `config_.depth`
  /// slots suffice because Push() pops before it pushes when full.
  std::vector<Cycles> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Cycles last_completion_ = 0;
  StoreBufferStats stats_;
};

}  // namespace spta::sim
