// Store buffer between the core and the write-through bus path.
//
// LEON3's DL1 is write-through no-write-allocate: every store becomes a bus
// write. The store buffer decouples the pipeline from bus latency; the core
// only stalls when the buffer is full. Drains are FIFO and serialized.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct StoreBufferStats {
  std::uint64_t stores = 0;
  std::uint64_t full_stalls = 0;
  Cycles stall_cycles = 0;
};

class StoreBuffer {
 public:
  explicit StoreBuffer(const StoreBufferConfig& config);

  /// Accounts a store issued at core time `now`. `issue` schedules the bus
  /// write: it receives the earliest cycle the write may start (FIFO after
  /// the previous store) and returns its completion time. Returns the new
  /// core time, which exceeds `now` only if the buffer was full.
  Cycles Push(Cycles now, const std::function<Cycles(Cycles)>& issue);

  /// Core time after waiting for every buffered store to complete (used at
  /// run end so measured times include the full drain).
  Cycles DrainAll(Cycles now);

  /// Empties the buffer and clears statistics (between runs).
  void Reset();

  std::size_t in_flight() const { return completions_.size(); }
  const StoreBufferStats& stats() const { return stats_; }

 private:
  StoreBufferConfig config_;
  std::deque<Cycles> completions_;  ///< FIFO of in-flight completion times.
  Cycles last_completion_ = 0;
  StoreBufferStats stats_;
};

}  // namespace spta::sim
