#include "sim/tlb.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

Tlb::Tlb(const TlbConfig& config, Seed seed)
    : config_(config),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.page_bytes))),
      replacement_rng_(DeriveSeed(seed, "tlb-repl")),
      entries_(config.entries) {
  SPTA_REQUIRE(std::has_single_bit(config.page_bytes));
}

std::uint32_t Tlb::Victim() {
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) return i;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].lru_stamp < entries_[victim].lru_stamp) victim = i;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(
          static_cast<std::uint32_t>(entries_.size()));
    case Replacement::kNru: {
      for (std::uint32_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].referenced) return i;
      }
      for (auto& e : entries_) e.referenced = false;
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

bool Tlb::Access(Address addr) {
  ++stats_.accesses;
  ++access_clock_;
  const std::uint64_t vpn = addr >> page_shift_;
  for (auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.lru_stamp = access_clock_;
      e.referenced = true;
      return true;
    }
  }
  ++stats_.misses;
  Entry& e = entries_[Victim()];
  e.valid = true;
  e.vpn = vpn;
  e.lru_stamp = access_clock_;
  e.referenced = true;
  return false;
}

void Tlb::Flush() {
  for (auto& e : entries_) e = Entry{};
  access_clock_ = 0;
}

void Tlb::Reseed(Seed seed) {
  replacement_rng_ = prng::HwPrng(DeriveSeed(seed, "tlb-repl"));
  Flush();
}

}  // namespace spta::sim
