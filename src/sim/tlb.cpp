#include "sim/tlb.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim {

Tlb::Tlb(const TlbConfig& config, Seed seed)
    : config_(config),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.page_bytes))),
      replacement_rng_(prng::HwPrng(DeriveSeed(seed, "tlb-repl"))),
      vpns_(config.entries, kInvalidVpn),
      stamps_(config.entries, 0),
      ref_(config.entries, 0) {
  SPTA_REQUIRE(std::has_single_bit(config.page_bytes));
}

std::uint32_t Tlb::Victim() {
  const std::uint32_t n = static_cast<std::uint32_t>(vpns_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (vpns_[i] == kInvalidVpn) return i;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t i = 1; i < n; ++i) {
        if (stamps_[i] < stamps_[victim]) victim = i;
      }
      return victim;
    }
    case Replacement::kRandom:
      return replacement_rng_.UniformBelow(n);
    case Replacement::kNru: {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (ref_[i] == 0) return i;
      }
      std::fill(ref_.begin(), ref_.end(), std::uint8_t{0});
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

void Tlb::AppendStateDigest(DualHash& h) const {
  const std::uint32_t n = static_cast<std::uint32_t>(vpns_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    h.Mix(vpns_[i]);
    h.Mix(ref_[i]);
    // Stable stamp rank (see Cache::AppendStateDigest): invariant under
    // the monotone access clock, equal ranks imply identical LRU victims.
    std::uint32_t rank = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      if (stamps_[j] < stamps_[i] ||
          (stamps_[j] == stamps_[i] && j < i)) {
        ++rank;
      }
    }
    h.Mix(rank);
  }
  replacement_rng_.AppendStateDigest(h);
}

void Tlb::Flush() {
  std::fill(vpns_.begin(), vpns_.end(), kInvalidVpn);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  std::fill(ref_.begin(), ref_.end(), std::uint8_t{0});
  mru_ = 0;
  access_clock_ = 0;
}

void Tlb::Reseed(Seed seed) {
  replacement_rng_ =
      prng::BlockDraws<prng::HwPrng>(prng::HwPrng(DeriveSeed(seed,
                                                             "tlb-repl")));
  Flush();
}

}  // namespace spta::sim
