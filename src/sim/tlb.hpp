// Fully associative translation lookaside buffer.
//
// The paper's platform randomizes ITLB/DTLB replacement (64 entries each).
// The TLB model tracks virtual page numbers; a miss costs a fixed
// page-table-walk penalty, so the TLB's timing jitter comes only from the
// (possibly randomized) miss pattern.
//
// Fast-path layout: entries are stored structure-of-arrays (flat VPN array
// with a sentinel for invalid, stamp array, reference-bit vector) so the
// fully associative match is one branch-free compare loop over a contiguous
// word array — with 64 entries this is the single hottest scan in the
// simulator, executed once per instruction fetch and once per memory
// access. Access() is in the header so the scan inlines into the core's
// retire loop. Observable behavior is bit-identical to the reference model
// (sim/reference_model.hpp), enforced by tests/sim_equivalence_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "prng/block_draws.hpp"
#include "prng/hw_prng.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double MissRatio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Tlb {
 public:
  Tlb(const TlbConfig& config, Seed seed);

  /// Translates the page containing `addr`, allocating on miss.
  /// Returns true on hit.
  bool Access(Address addr) {
    ++stats_.accesses;
    ++access_clock_;
    const std::uint64_t vpn = addr >> page_shift_;
    // MRU shortcut: consecutive fetches overwhelmingly touch the page of
    // the previous access, so re-checking the last-hit slot first skips the
    // associative scan almost always. Pure lookup optimization — the state
    // update on a hit is identical wherever the entry is found.
    const std::uint32_t mru = mru_;
    if (vpns_[mru] == vpn) {
      stamps_[mru] = access_clock_;
      ref_[mru] = 1;
      return true;
    }
    const std::uint32_t n = static_cast<std::uint32_t>(vpns_.size());
    const std::uint64_t* vpns = vpns_.data();
    std::uint32_t hit = n;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (vpns[i] == vpn) {
        hit = i;
        break;
      }
    }
    if (hit != n) {
      stamps_[hit] = access_clock_;
      ref_[hit] = 1;
      mru_ = hit;
      return true;
    }
    ++stats_.misses;
    const std::uint32_t victim = Victim();
    vpns_[victim] = vpn;
    stamps_[victim] = access_clock_;
    ref_[victim] = 1;
    mru_ = victim;
    return false;
  }

  /// Invalidates all entries.
  void Flush();

  /// New replacement stream + flush (per-run reseeding).
  void Reseed(Seed seed);

  const TlbConfig& config() const { return config_; }
  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  /// Replacement-stream consumption since the last Reseed (src/obs
  /// attribution); resets per run with the reseeding protocol.
  prng::DrawStats draw_stats() const { return replacement_rng_.stats(); }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Time-translation-invariant state digest: VPNs, LRU stamp ranks
  /// (stable, tie-broken by entry index like Victim()), NRU reference
  /// bits and the replacement stream. The MRU shortcut is excluded (pure
  /// lookup optimization). See Cache::AppendStateDigest.
  void AppendStateDigest(DualHash& h) const;

  /// Folds a recorded access/miss delta into the counters.
  void ApplyStatsDelta(const TlbStats& delta) {
    stats_.accesses += delta.accesses;
    stats_.misses += delta.misses;
  }

  /// Replacement-stream access for memoized fast-forward and digesting.
  prng::BlockDraws<prng::HwPrng>& replacement_rng() {
    return replacement_rng_;
  }
  const prng::BlockDraws<prng::HwPrng>& replacement_rng() const {
    return replacement_rng_;
  }

  // --- Fault-injection surface (src/fault) -------------------------------
  // Mirrors Cache::CorruptTagBit: an SEU in the VPN/valid array is one XORed
  // bit of one entry (validity is sentinel-encoded in the VPN). Never called
  // on the hot path; Access() is untouched.

  /// Number of TLB entries.
  std::size_t EntrySlots() const { return vpns_.size(); }

  /// Flips bit `bit` (0-63) of entry `slot`, resetting the MRU shortcut if
  /// it pointed at the corrupted entry.
  void CorruptVpnBit(std::size_t slot, unsigned bit) {
    vpns_[slot] ^= 1ULL << (bit & 63u);
    if (slot == mru_) mru_ = 0;
  }

  /// Reads an entry's VPN back (test/fault-audit use).
  std::uint64_t VpnAt(std::size_t slot) const { return vpns_[slot]; }

 private:
  /// Sentinel VPN of an invalid entry; real VPNs are addr >> page_shift_
  /// with page_shift_ >= 1, so all-ones is unreachable.
  static constexpr std::uint64_t kInvalidVpn = ~0ULL;

  std::uint32_t Victim();

  TlbConfig config_;
  std::uint32_t page_shift_;
  prng::BlockDraws<prng::HwPrng> replacement_rng_;
  std::vector<std::uint64_t> vpns_;    ///< VPN per entry, or kInvalidVpn.
  std::vector<std::uint64_t> stamps_;  ///< Higher = more recent (LRU).
  std::vector<std::uint8_t> ref_;     ///< NRU reference bits.
  std::uint32_t mru_ = 0;  ///< Slot of the last hit/fill (lookup shortcut).
  std::uint64_t access_clock_ = 0;
  TlbStats stats_;
};

}  // namespace spta::sim
