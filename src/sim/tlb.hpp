// Fully associative translation lookaside buffer.
//
// The paper's platform randomizes ITLB/DTLB replacement (64 entries each).
// The TLB model tracks virtual page numbers; a miss costs a fixed
// page-table-walk penalty, so the TLB's timing jitter comes only from the
// (possibly randomized) miss pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "prng/hw_prng.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double MissRatio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Tlb {
 public:
  Tlb(const TlbConfig& config, Seed seed);

  /// Translates the page containing `addr`, allocating on miss.
  /// Returns true on hit.
  bool Access(Address addr);

  /// Invalidates all entries.
  void Flush();

  /// New replacement stream + flush (per-run reseeding).
  void Reseed(Seed seed);

  const TlbConfig& config() const { return config_; }
  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t vpn = 0;
    std::uint64_t lru_stamp = 0;
    bool referenced = false;
  };

  std::uint32_t Victim();

  TlbConfig config_;
  std::uint32_t page_shift_;
  prng::HwPrng replacement_rng_;
  std::vector<Entry> entries_;
  std::uint64_t access_clock_ = 0;
  TlbStats stats_;
};

}  // namespace spta::sim
