#include "stats/autocorr.hpp"

#include "common/assert.hpp"
#include "stats/descriptive.hpp"

namespace spta::stats {

double Autocorrelation(std::span<const double> xs, std::size_t k) {
  SPTA_REQUIRE(k < xs.size());
  const double m = Mean(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - m;
    denom += d * d;
  }
  SPTA_REQUIRE_MSG(denom > 0.0, "constant sample has undefined correlation");
  double num = 0.0;
  for (std::size_t i = 0; i + k < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + k] - m);
  }
  return num / denom;
}

std::vector<double> Autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag) {
  SPTA_REQUIRE(max_lag < xs.size());
  const double m = Mean(xs);
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - m;
    denom += d * d;
  }
  SPTA_REQUIRE_MSG(denom > 0.0, "constant sample has undefined correlation");
  std::vector<double> out(max_lag);
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = 0.0;
    for (std::size_t i = 0; i + k < xs.size(); ++i) {
      num += (xs[i] - m) * (xs[i + k] - m);
    }
    out[k - 1] = num / denom;
  }
  return out;
}

}  // namespace spta::stats
