// Sample autocorrelation, the ingredient of the Ljung-Box independence test.
#pragma once

#include <span>
#include <vector>

namespace spta::stats {

/// Sample autocorrelation at lag `k` (biased, n-denominator estimator, the
/// standard choice for Ljung-Box). Requires 0 <= k < xs.size() and a sample
/// with nonzero variance.
double Autocorrelation(std::span<const double> xs, std::size_t k);

/// Autocorrelations for lags 1..max_lag (index 0 of the result is lag 1).
std::vector<double> Autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag);

}  // namespace spta::stats
