#include "stats/bootstrap.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "prng/xoshiro.hpp"
#include "stats/descriptive.hpp"

namespace spta::stats {

ConfidenceInterval BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double level, std::uint64_t seed) {
  SPTA_REQUIRE(!sample.empty());
  SPTA_REQUIRE(replicates >= 100);
  SPTA_REQUIRE(level > 0.0 && level < 1.0);

  prng::Xoshiro128pp rng(seed);
  const auto n = static_cast<std::uint32_t>(sample.size());
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& v : resample) v = sample[rng.UniformBelow(n)];
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());

  ConfidenceInterval ci;
  ci.level = level;
  ci.point = statistic(sample);
  const double alpha = 1.0 - level;
  ci.lower = QuantileSorted(stats, alpha / 2.0);
  ci.upper = QuantileSorted(stats, 1.0 - alpha / 2.0);
  return ci;
}

ConfidenceInterval BootstrapMeanCi(std::span<const double> sample,
                                   std::size_t replicates, double level,
                                   std::uint64_t seed) {
  return BootstrapCi(
      sample, [](std::span<const double> xs) { return Mean(xs); }, replicates,
      level, seed);
}

}  // namespace spta::stats
