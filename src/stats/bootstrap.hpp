// Nonparametric bootstrap confidence intervals.
//
// Used to attach uncertainty to pWCET estimates and to the DET-vs-RAND
// average-performance comparison (paper Figure 3 reports averages; the
// bootstrap tells us whether an observed difference is noise).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace spta::stats {

/// A two-sided percentile confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;   ///< Statistic on the original sample.
  double level = 0.0;   ///< Confidence level, e.g. 0.95.

  /// True if `value` lies inside [lower, upper].
  bool Contains(double value) const {
    return value >= lower && value <= upper;
  }
};

/// Percentile bootstrap for an arbitrary statistic.
///
/// `statistic` maps a sample to a scalar; `replicates` resamples with
/// replacement are drawn using the deterministic `seed`. Requires a
/// non-empty sample, replicates >= 100 and 0 < level < 1.
ConfidenceInterval BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double level, std::uint64_t seed);

/// Convenience: bootstrap CI of the mean.
ConfidenceInterval BootstrapMeanCi(std::span<const double> sample,
                                   std::size_t replicates, double level,
                                   std::uint64_t seed);

}  // namespace spta::stats
