#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace spta::stats {

double Mean(std::span<const double> xs) {
  SPTA_REQUIRE(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 2);
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double CoefficientOfVariation(std::span<const double> xs) {
  const double m = Mean(xs);
  SPTA_REQUIRE(m != 0.0);
  return StdDev(xs) / m;
}

double Min(std::span<const double> xs) {
  SPTA_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  SPTA_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double QuantileSorted(std::span<const double> sorted, double q) {
  SPTA_REQUIRE(!sorted.empty());
  SPTA_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "q=" << q);
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return QuantileSorted(copy, q);
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double Skewness(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 3);
  const double n = static_cast<double>(xs.size());
  const double m = Mean(xs);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  SPTA_REQUIRE(m2 > 0.0);
  const double g1 = m3 / std::pow(m2, 1.5);
  return g1 * std::sqrt(n * (n - 1.0)) / (n - 2.0);
}

Summary Summarize(std::span<const double> xs) {
  SPTA_REQUIRE(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = QuantileSorted(sorted, 0.25);
  s.median = QuantileSorted(sorted, 0.5);
  s.q75 = QuantileSorted(sorted, 0.75);
  s.mean = Mean(xs);
  s.stddev = xs.size() >= 2 ? StdDev(xs) : 0.0;
  return s;
}

}  // namespace spta::stats
