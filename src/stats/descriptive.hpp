// Descriptive statistics over execution-time samples.
#pragma once

#include <span>
#include <vector>

namespace spta::stats {

/// Arithmetic mean. Requires a non-empty sample.
double Mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double Variance(std::span<const double> xs);

/// Sample standard deviation. Requires size >= 2.
double StdDev(std::span<const double> xs);

/// Coefficient of variation: stddev / mean. Requires mean != 0, size >= 2.
double CoefficientOfVariation(std::span<const double> xs);

/// Minimum / maximum of a non-empty sample.
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Linear-interpolation quantile (type-7, the R default) of an UNSORTED
/// sample; q in [0, 1]. Copies and sorts internally.
double Quantile(std::span<const double> xs, double q);

/// Quantile over an already ascending-sorted sample (no copy).
double QuantileSorted(std::span<const double> sorted, double q);

/// Median convenience.
double Median(std::span<const double> xs);

/// Sample skewness (adjusted Fisher-Pearson). Requires size >= 3.
double Skewness(std::span<const double> xs);

/// Full five-number-plus summary, computed in one pass over a sorted copy.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes the summary of a non-empty sample (stddev = 0 for size 1).
Summary Summarize(std::span<const double> xs);

}  // namespace spta::stats
