#include "stats/ecdf.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "stats/descriptive.hpp"

namespace spta::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  SPTA_REQUIRE(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Exceedance(double x) const { return 1.0 - Cdf(x); }

double Ecdf::Quantile(double q) const { return QuantileSorted(sorted_, q); }

std::vector<std::pair<double, double>> Ecdf::TailPoints(
    std::size_t max_points) const {
  // Walk distinct values from the largest down, recording P[X >= v].
  std::vector<std::pair<double, double>> points;
  const double n = static_cast<double>(sorted_.size());
  std::size_t i = sorted_.size();
  while (i > 0) {
    const double v = sorted_[i - 1];
    // Find the first index holding v.
    std::size_t first = i - 1;
    while (first > 0 && sorted_[first - 1] == v) --first;
    const double greater_or_equal = n - static_cast<double>(first);
    points.emplace_back(v, greater_or_equal / n);
    i = first;
    if (max_points != 0 && points.size() >= max_points) break;
  }
  std::reverse(points.begin(), points.end());
  return points;
}

}  // namespace spta::stats
