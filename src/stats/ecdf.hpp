// Empirical cumulative distribution function over a measurement sample.
//
// MBPTA visualizes observed execution times as an exceedance (1-CDF) curve
// on a log-probability axis (paper Figure 2); Ecdf provides both directions
// plus the tail-point extraction those plots need.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace spta::stats {

/// Immutable sorted view of a sample with CDF/quantile queries.
class Ecdf {
 public:
  /// Builds from an unsorted, non-empty sample (copies and sorts).
  explicit Ecdf(std::span<const double> sample);

  /// P[X <= x] under the empirical distribution.
  double Cdf(double x) const;

  /// Exceedance probability P[X > x] = 1 - Cdf(x).
  double Exceedance(double x) const;

  /// Empirical quantile (type-7 interpolation), q in [0, 1].
  double Quantile(double q) const;

  /// Number of observations.
  std::size_t size() const { return sorted_.size(); }

  /// Smallest / largest observation.
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  /// Underlying ascending-sorted data.
  const std::vector<double>& sorted() const { return sorted_; }

  /// Returns the (value, exceedance-probability) staircase points of the
  /// upper tail: one point per distinct observed value v with probability
  /// P[X >= v] computed over the whole sample (so the maximum maps to 1/n
  /// and every point is plottable on a log-probability axis), restricted to
  /// the top `max_points` distinct values (all of them if 0).
  std::vector<std::pair<double, double>> TailPoints(
      std::size_t max_points = 0) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace spta::stats
