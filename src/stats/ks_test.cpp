#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "stats/special.hpp"

namespace spta::stats {
namespace {

// Asymptotic p-value with the Stephens small-sample correction:
// p = Q_KS((sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D).
double KsPValue(double d, double effective_n) {
  const double sq = std::sqrt(effective_n);
  return KolmogorovSf((sq + 0.12 + 0.11 / sq) * d);
}

}  // namespace

KsResult TwoSampleKs(std::span<const double> a, std::span<const double> b) {
  SPTA_REQUIRE(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double va = sa[ia];
    const double vb = sb[ib];
    const double v = std::min(va, vb);
    while (ia < sa.size() && sa[ia] == v) ++ia;
    while (ib < sb.size() && sb[ib] == v) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  KsResult r;
  r.statistic = d;
  r.p_value = KsPValue(d, na * nb / (na + nb));
  return r;
}

KsResult OneSampleKs(std::span<const double> xs,
                     const std::function<double(double)>& cdf) {
  SPTA_REQUIRE(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  KsResult r;
  r.statistic = d;
  r.p_value = KsPValue(d, n);
  return r;
}

KsResult SplitSampleKs(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 4);
  const std::size_t half = xs.size() / 2;
  return TwoSampleKs(xs.subspan(0, half), xs.subspan(half));
}

}  // namespace spta::stats
