// Kolmogorov-Smirnov tests.
//
// The paper checks *identical distribution* with a two-sample KS test at 5%
// significance (reported p-value 0.45): the measurement sample is split into
// two halves which must be statistically indistinguishable. We implement the
// two-sample test with the asymptotic Kolmogorov p-value, a one-sample test
// against an arbitrary CDF (used for goodness-of-fit of EVT models), and the
// split-sample convenience the MBPTA protocol uses.
#pragma once

#include <functional>
#include <span>

namespace spta::stats {

/// Outcome of a KS test.
struct KsResult {
  double statistic = 0.0;  ///< Sup-distance D between the two CDFs.
  double p_value = 0.0;    ///< Asymptotic P[D_n > statistic] under H0.
  /// True when the p-value is >= alpha (H0 of equality NOT rejected).
  bool NotRejected(double alpha = 0.05) const { return p_value >= alpha; }
};

/// Two-sample KS test: H0 = both samples drawn from the same distribution.
/// Requires both samples non-empty.
KsResult TwoSampleKs(std::span<const double> a, std::span<const double> b);

/// One-sample KS test of `xs` against the continuous CDF `cdf`.
KsResult OneSampleKs(std::span<const double> xs,
                     const std::function<double(double)>& cdf);

/// MBPTA identical-distribution gate: splits the time-ordered sample into
/// first half vs second half and runs the two-sample test. Requires
/// xs.size() >= 4.
KsResult SplitSampleKs(std::span<const double> xs);

}  // namespace spta::stats
