#include "stats/ljung_box.hpp"

#include "common/assert.hpp"
#include "stats/autocorr.hpp"
#include "stats/special.hpp"

namespace spta::stats {

LjungBoxResult LjungBoxTest(std::span<const double> xs, std::size_t lags) {
  SPTA_REQUIRE_MSG(lags >= 1 && lags < xs.size(),
                   "lags=" << lags << " n=" << xs.size());
  // A constant sample carries no serial structure at all: independence
  // trivially holds (autocorrelation itself is undefined, so short-circuit).
  const double first = xs.front();
  bool constant = true;
  for (double x : xs) {
    if (x != first) {
      constant = false;
      break;
    }
  }
  if (constant) {
    LjungBoxResult r;
    r.q_statistic = 0.0;
    r.lags = lags;
    r.p_value = 1.0;
    return r;
  }
  const auto rho = Autocorrelations(xs, lags);
  const double n = static_cast<double>(xs.size());
  double q = 0.0;
  for (std::size_t k = 1; k <= lags; ++k) {
    q += rho[k - 1] * rho[k - 1] / (n - static_cast<double>(k));
  }
  q *= n * (n + 2.0);
  LjungBoxResult r;
  r.q_statistic = q;
  r.lags = lags;
  r.p_value = ChiSquareSf(q, static_cast<double>(lags));
  return r;
}

}  // namespace spta::stats
