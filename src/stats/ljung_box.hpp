// Ljung-Box portmanteau test for serial independence.
//
// The paper tests independence of the 3,000 execution-time observations with
// Ljung-Box at a 5% significance level and reports a p-value of 0.83.
// Q = n(n+2) * sum_{k=1..h} rho_k^2 / (n-k) ~ chi-square(h) under H0
// (no autocorrelation up to lag h).
#pragma once

#include <span>

namespace spta::stats {

/// Outcome of a Ljung-Box test.
struct LjungBoxResult {
  double q_statistic = 0.0;   ///< The portmanteau Q statistic.
  std::size_t lags = 0;       ///< Number of lags tested (chi-square df).
  double p_value = 0.0;       ///< P[chi2(lags) > Q].
  /// True when the p-value is >= alpha, i.e. independence is NOT rejected.
  bool IndependenceNotRejected(double alpha = 0.05) const {
    return p_value >= alpha;
  }
};

/// Runs the Ljung-Box test on `xs` with `lags` lags (default 20, the common
/// choice for samples of thousands of observations). Requires
/// 1 <= lags < xs.size() and a non-constant sample.
LjungBoxResult LjungBoxTest(std::span<const double> xs, std::size_t lags = 20);

}  // namespace spta::stats
