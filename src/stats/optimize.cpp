#include "stats/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace spta::stats {

NelderMeadResult NelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, std::vector<double> step, int max_iterations,
    double tolerance) {
  const std::size_t n = start.size();
  SPTA_REQUIRE(n >= 1);
  if (step.empty()) {
    step.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      step[i] = 0.05 * std::max(std::fabs(start[i]), 1.0);
    }
  }
  SPTA_REQUIRE(step.size() == n);

  // Initial simplex: start + unit steps along each axis.
  std::vector<std::vector<double>> simplex(n + 1, start);
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += step[i];
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  NelderMeadResult result;
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Order the simplex.
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                return values[a] < values[b];
              });
    const std::size_t best = idx[0];
    const std::size_t worst = idx[n];
    const std::size_t second_worst = idx[n - 1];

    // Convergence: simplex value spread.
    if (std::isfinite(values[best]) &&
        std::fabs(values[worst] - values[best]) <
            tolerance * (std::fabs(values[best]) + tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto combine = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return p;
    };

    const auto reflected = combine(-kAlpha);
    const double fr = f(reflected);
    if (fr < values[best]) {
      const auto expanded = combine(-kGamma);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const auto contracted = combine(kRho);
      const double fc = f(contracted);
      if (fc < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            simplex[i][d] = simplex[best][d] +
                            kSigma * (simplex[i][d] - simplex[best][d]);
          }
          values[i] = f(simplex[i]);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  result.value = values[best];
  result.iterations = iter;
  return result;
}

}  // namespace spta::stats
