// Derivative-free minimization (Nelder-Mead simplex).
//
// Used by the EVT maximum-likelihood fits whose score equations have no
// closed form (GEV). Deliberately small: bounded iterations, deterministic,
// no stochastic restarts — callers provide a good starting point (e.g. the
// PWM estimate).
#pragma once

#include <functional>
#include <vector>

namespace spta::stats {

struct NelderMeadResult {
  std::vector<double> x;     ///< Best point found.
  double value = 0.0;        ///< Objective at x.
  int iterations = 0;
  bool converged = false;    ///< Simplex spread fell below tolerance.
};

/// Minimizes `f` from `start`, with initial simplex steps `step[i]`
/// (defaulting to max(|start_i|, 1) * 0.05 when empty). The objective may
/// return +infinity to reject infeasible points.
NelderMeadResult NelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, std::vector<double> step = {},
    int max_iterations = 2000, double tolerance = 1e-10);

}  // namespace spta::stats
