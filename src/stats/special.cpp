#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace spta::stats {
namespace {

// std::lgamma writes the process-global `signgam`, which races when
// analyses run concurrently (service worker pool). The arguments here are
// always positive, so the sign is irrelevant — use the reentrant variant.
double LogGamma(double a) {
  int sign = 0;
  return ::lgamma_r(a, &sign);
}

// Series representation of P(a, x), valid/fast for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = LogGamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction representation of Q(a, x), valid/fast for x >= a + 1.
// Modified Lentz's algorithm.
double GammaQContinuedFraction(double a, double x) {
  const double gln = LogGamma(a);
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  SPTA_REQUIRE_MSG(a > 0.0 && x >= 0.0, "a=" << a << " x=" << x);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  SPTA_REQUIRE_MSG(a > 0.0 && x >= 0.0, "a=" << a << " x=" << x);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double df) {
  SPTA_REQUIRE(df > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double df) {
  SPTA_REQUIRE(df > 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  SPTA_REQUIRE_MSG(p > 0.0 && p < 1.0, "p=" << p);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the normal pdf/cdf.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double KolmogorovSf(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // For large lambda the series converges after the first term; for small
  // lambda use many terms (alternating, geometric-ish decay).
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-18) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

double SolveBisection(const std::function<double(double)>& f, double lo,
                      double hi, double x_tol, int max_iter) {
  SPTA_REQUIRE(lo < hi);
  double flo = f(lo);
  const double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  SPTA_REQUIRE_MSG(flo * fhi < 0.0,
                   "root not bracketed: f(" << lo << ")=" << flo << " f("
                                            << hi << ")=" << fhi);
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || (hi - lo) < x_tol) return mid;
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace spta::stats
