// Special functions required by the statistical tests and EVT fits.
//
// Implemented from scratch (series + continued fractions, Numerical-Recipes
// style) so the library has no external numerical dependencies and results
// are reproducible across platforms.
#pragma once

#include <functional>

namespace spta::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Series expansion for x < a+1, Lentz continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Chi-square CDF with `df` degrees of freedom evaluated at `x`.
double ChiSquareCdf(double x, double df);

/// Upper-tail chi-square probability P[X > x].
double ChiSquareSf(double x, double df);

/// Standard normal CDF.
double NormalCdf(double x);

/// Standard normal quantile (Acklam/Beasley-Springer-Moro style rational
/// approximation refined by one Halley step). Requires 0 < p < 1.
double NormalQuantile(double p);

/// Kolmogorov distribution complementary CDF:
///   Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
/// Returns 1 for lambda <= 0 and tends to 0 as lambda grows.
double KolmogorovSf(double lambda);

/// Generic scalar root bracketing + bisection/secant hybrid: finds x in
/// [lo, hi] with f(x) ~= 0. Requires f(lo) and f(hi) of opposite signs.
/// Used to invert CDFs and solve MLE score equations.
double SolveBisection(const std::function<double(double)>& f, double lo,
                      double hi, double x_tol = 1e-12, int max_iter = 200);

/// Euler-Mascheroni constant (used by Gumbel moment/PWM estimators).
inline constexpr double kEulerGamma = 0.57721566490153286060651209;

}  // namespace spta::stats
