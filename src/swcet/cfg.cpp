#include "swcet/cfg.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace spta::swcet {

using trace::BlockId;
using trace::IrOp;

bool Loop::Contains(BlockId block) const {
  return std::find(blocks.begin(), blocks.end(), block) != blocks.end();
}

Cfg::Cfg(const trace::Program& program) {
  program.Validate();
  entry_ = program.entry;
  const std::size_t n = program.blocks.size();
  successors_.assign(n, {});
  predecessors_.assign(n, {});
  for (std::size_t b = 0; b < n; ++b) {
    const trace::IrInst& term = program.blocks[b].insts.back();
    auto add_edge = [&](BlockId to) {
      successors_[b].push_back(to);
      predecessors_[static_cast<std::size_t>(to)].push_back(
          static_cast<BlockId>(b));
    };
    switch (term.op) {
      case IrOp::kJump:
        add_edge(term.target);
        break;
      case IrOp::kBranchIfZero:
      case IrOp::kBranchIfNeg:
        add_edge(term.target);
        if (term.target2 != term.target) add_edge(term.target2);
        break;
      case IrOp::kHalt:
        break;
      default:
        SPTA_CHECK_MSG(false, "block not terminated by a control op");
    }
  }

  // Iterative DFS for post order, entry-reachable blocks only.
  std::vector<int> state(n, 0);  // 0 = unvisited, 1 = on stack, 2 = done
  std::vector<BlockId> post;
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(entry_, 0);
  state[static_cast<std::size_t>(entry_)] = 1;
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    const auto& succs = successors_[static_cast<std::size_t>(block)];
    if (next < succs.size()) {
      const BlockId s = succs[next++];
      if (state[static_cast<std::size_t>(s)] == 0) {
        state[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<std::size_t>(block)] = 2;
      post.push_back(block);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());

  ComputeDominators(program);

  // Classify edges: any edge u->v where v dominates u is a back edge;
  // other retreating edges would mean irreducible control flow.
  std::vector<std::size_t> rpo_index(n, n);
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo_[i])] = i;
  }
  for (const BlockId u : rpo_) {
    for (const BlockId v : successors_[static_cast<std::size_t>(u)]) {
      const bool retreating =
          rpo_index[static_cast<std::size_t>(v)] <=
          rpo_index[static_cast<std::size_t>(u)];
      if (!retreating) continue;
      SPTA_CHECK_MSG(Dominates(v, u),
                     "irreducible control flow: retreating edge "
                         << u << " -> " << v);
      back_edges_.emplace_back(u, v);
    }
  }
  FindLoops();
}

void Cfg::ComputeDominators(const trace::Program& program) {
  const std::size_t n = program.blocks.size();
  std::vector<std::size_t> rpo_index(n, n);
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo_[i])] = i;
  }
  idom_.assign(n, -1);
  // Cooper-Harvey-Kennedy iterative dominators over RPO.
  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] >
             rpo_index[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] >
             rpo_index[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  idom_[static_cast<std::size_t>(entry_)] = entry_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BlockId b : rpo_) {
      if (b == entry_) continue;
      BlockId new_idom = -1;
      for (const BlockId p : predecessors_[static_cast<std::size_t>(b)]) {
        if (idom_[static_cast<std::size_t>(p)] == -1) continue;
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom_[static_cast<std::size_t>(b)] != new_idom) {
        idom_[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  // Normalize: entry's idom reported as -1.
  idom_[static_cast<std::size_t>(entry_)] = -1;
}

bool Cfg::Dominates(BlockId a, BlockId b) const {
  while (b != -1) {
    if (a == b) return true;
    b = idom_[static_cast<std::size_t>(b)];
  }
  return false;
}

void Cfg::FindLoops() {
  // Natural loop of a back edge (u -> h): h plus everything reaching u
  // without passing through h.
  std::vector<Loop> raw;
  for (const auto& [tail, header] : back_edges_) {
    Loop loop;
    loop.header = header;
    std::vector<bool> in(successors_.size(), false);
    in[static_cast<std::size_t>(header)] = true;
    std::vector<BlockId> work;
    if (!in[static_cast<std::size_t>(tail)]) {
      in[static_cast<std::size_t>(tail)] = true;
      work.push_back(tail);
    }
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      for (const BlockId p : predecessors_[static_cast<std::size_t>(b)]) {
        if (!in[static_cast<std::size_t>(p)]) {
          in[static_cast<std::size_t>(p)] = true;
          work.push_back(p);
        }
      }
    }
    for (std::size_t b = 0; b < in.size(); ++b) {
      if (in[b]) loop.blocks.push_back(static_cast<BlockId>(b));
    }
    raw.push_back(std::move(loop));
  }
  // Merge loops sharing a header.
  for (auto& loop : raw) {
    auto existing = std::find_if(loops_.begin(), loops_.end(),
                                 [&](const Loop& l) {
                                   return l.header == loop.header;
                                 });
    if (existing == loops_.end()) {
      loops_.push_back(std::move(loop));
    } else {
      for (const BlockId b : loop.blocks) {
        if (!existing->Contains(b)) existing->blocks.push_back(b);
      }
    }
  }
  // Nesting: parent = smallest strictly-containing loop.
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    int best = -1;
    std::size_t best_size = ~std::size_t{0};
    for (std::size_t j = 0; j < loops_.size(); ++j) {
      if (i == j) continue;
      if (loops_[j].Contains(loops_[i].header) &&
          loops_[j].header != loops_[i].header &&
          loops_[j].blocks.size() < best_size) {
        best = static_cast<int>(j);
        best_size = loops_[j].blocks.size();
      }
    }
    loops_[i].parent = best;
    if (best >= 0) {
      loops_[static_cast<std::size_t>(best)].children.push_back(
          static_cast<int>(i));
    }
  }
  // Innermost loop per block.
  innermost_loop_.assign(successors_.size(), -1);
  for (std::size_t b = 0; b < successors_.size(); ++b) {
    std::size_t best_size = ~std::size_t{0};
    for (std::size_t i = 0; i < loops_.size(); ++i) {
      if (loops_[i].Contains(static_cast<BlockId>(b)) &&
          loops_[i].blocks.size() < best_size) {
        innermost_loop_[b] = static_cast<int>(i);
        best_size = loops_[i].blocks.size();
      }
    }
  }
}

int Cfg::InnermostLoopOf(BlockId block) const {
  SPTA_REQUIRE(block >= 0 &&
               static_cast<std::size_t>(block) < innermost_loop_.size());
  return innermost_loop_[static_cast<std::size_t>(block)];
}

}  // namespace spta::swcet
