// Control-flow graph analysis over the program IR.
//
// The static WCET bound (static_bound.hpp) needs the classic CFG toolbox:
// successor lists, reverse-post-order, dominators, back edges and the
// natural-loop nesting forest. Programs built with ProgramBuilder are
// structured (reducible), which these algorithms assume and Analyze()
// verifies.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/program.hpp"

namespace spta::swcet {

/// A natural loop discovered in the CFG.
struct Loop {
  trace::BlockId header = -1;
  std::vector<trace::BlockId> blocks;  ///< Includes the header.
  std::vector<int> children;           ///< Indices of directly nested loops.
  int parent = -1;                     ///< Index of enclosing loop (-1 top).

  bool Contains(trace::BlockId block) const;
};

/// CFG facts for one Program.
class Cfg {
 public:
  /// Builds the CFG and runs the analyses. Aborts (contract violation) on
  /// irreducible control flow — ProgramBuilder cannot produce it.
  explicit Cfg(const trace::Program& program);

  const std::vector<std::vector<trace::BlockId>>& successors() const {
    return successors_;
  }

  /// Immediate dominator per block (-1 for the entry).
  const std::vector<trace::BlockId>& idom() const { return idom_; }

  /// True when `a` dominates `b`.
  bool Dominates(trace::BlockId a, trace::BlockId b) const;

  /// Back edges (tail -> header) found in the DFS.
  const std::vector<std::pair<trace::BlockId, trace::BlockId>>& back_edges()
      const {
    return back_edges_;
  }

  /// Natural loops merged by header; children/parent form the nesting
  /// forest. Ordered so that inner loops appear after their parents.
  const std::vector<Loop>& loops() const { return loops_; }

  /// Index into loops() of the innermost loop containing `block`, or -1.
  int InnermostLoopOf(trace::BlockId block) const;

  /// Blocks in reverse post order (entry first), back edges ignored.
  const std::vector<trace::BlockId>& reverse_post_order() const {
    return rpo_;
  }

  std::size_t block_count() const { return successors_.size(); }

 private:
  void ComputeDominators(const trace::Program& program);
  void FindLoops();

  std::vector<std::vector<trace::BlockId>> successors_;
  std::vector<std::vector<trace::BlockId>> predecessors_;
  std::vector<trace::BlockId> idom_;
  std::vector<trace::BlockId> rpo_;
  std::vector<std::pair<trace::BlockId, trace::BlockId>> back_edges_;
  std::vector<Loop> loops_;
  std::vector<int> innermost_loop_;
  trace::BlockId entry_ = 0;
};

}  // namespace spta::swcet
