#include "swcet/cost_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/record.hpp"

namespace spta::swcet {

using trace::IrOp;

CostModel::CostModel(const sim::PlatformConfig& config,
                     unsigned contending_cores)
    : config_(config) {
  config.Validate();
  const Cycles line =
      config.dram.row_miss_latency + config.bus.line_transfer_cycles;
  const Cycles store =
      config.dram.row_miss_latency + config.bus.store_transfer_cycles;
  // Round-robin bus: a request waits at most one maximal transaction per
  // contending core.
  interference_ =
      static_cast<Cycles>(contending_cores) * std::max(line, store);
  worst_line_fill_ = line + interference_;
  worst_store_ = store + interference_;
}

Cycles CostModel::WorstCase(const trace::IrInst& inst) const {
  // Fetch: ITLB walk + IL1 miss on every instruction (sound all-miss).
  return config_.itlb.miss_penalty + worst_line_fill_ + WorstCaseExec(inst);
}

Cycles CostModel::WorstBlockFetch(std::size_t n_instructions) const {
  const std::size_t bytes = 4 * n_instructions;
  const std::size_t lines = bytes / config_.il1.line_bytes + 2;
  const std::size_t pages = bytes / config_.itlb.page_bytes + 2;
  return static_cast<Cycles>(lines) * worst_line_fill_ +
         static_cast<Cycles>(pages) * config_.itlb.miss_penalty;
}

Cycles CostModel::WorstCaseExec(const trace::IrInst& inst) const {
  Cycles c = 0;
  const auto worst_class =
      static_cast<Cycles>(trace::kFpuOperandClasses - 1);
  switch (inst.op) {
    case IrOp::kIMul:
      c += config_.pipeline.int_mul;
      break;
    case IrOp::kIDiv:
      c += config_.pipeline.int_div;
      break;
    case IrOp::kFAdd:
    case IrOp::kFSub:
    case IrOp::kFConst:
    case IrOp::kFMove:
    case IrOp::kFAbs:
    case IrOp::kFNeg:
    case IrOp::kFCmpLt:
    case IrOp::kIToF:
    case IrOp::kFToI:
      c += config_.fpu.add_latency;
      break;
    case IrOp::kFMul:
      c += config_.fpu.mul_latency;
      break;
    case IrOp::kFDiv:
      c += config_.fpu.div_base + config_.fpu.div_step * worst_class;
      break;
    case IrOp::kFSqrt:
      c += config_.fpu.sqrt_base + config_.fpu.sqrt_step * worst_class;
      break;
    case IrOp::kLoadI:
    case IrOp::kLoadF:
      c += config_.pipeline.int_alu + config_.dtlb.miss_penalty +
           worst_line_fill_;
      break;
    case IrOp::kStoreI:
    case IrOp::kStoreF:
      // Worst case: store buffer full, the store waits for a full drain.
      c += config_.pipeline.int_alu + config_.dtlb.miss_penalty +
           worst_store_;
      break;
    case IrOp::kJump:
    case IrOp::kBranchIfZero:
    case IrOp::kBranchIfNeg:
      c += config_.pipeline.int_alu + config_.pipeline.taken_branch_penalty;
      break;
    case IrOp::kHalt:
      c += config_.pipeline.int_alu;
      break;
    default:  // plain integer ALU ops
      c += config_.pipeline.int_alu;
      break;
  }
  return c;
}

Cycles CostModel::BestCase(const trace::IrInst& inst) const {
  switch (inst.op) {
    case IrOp::kIMul:
      return config_.pipeline.int_mul;
    case IrOp::kIDiv:
      return config_.pipeline.int_div;
    case IrOp::kFAdd:
    case IrOp::kFSub:
    case IrOp::kFConst:
    case IrOp::kFMove:
    case IrOp::kFAbs:
    case IrOp::kFNeg:
    case IrOp::kFCmpLt:
    case IrOp::kIToF:
    case IrOp::kFToI:
      return config_.fpu.add_latency;
    case IrOp::kFMul:
      return config_.fpu.mul_latency;
    case IrOp::kFDiv:
      return config_.fpu.div_base;
    case IrOp::kFSqrt:
      return config_.fpu.sqrt_base;
    default:
      return config_.pipeline.int_alu;
  }
}

}  // namespace spta::swcet
