// Per-instruction worst-case (and best-case) cost model for static WCET.
//
// The sound static bound assumes every cache/TLB access misses and every
// jittery unit takes its worst latency; the (unsound) best-case companion
// assumes every access hits — together they bracket any execution.
// Optionally adds the classic multicore interference bound: every memory
// transaction can wait for one maximal transaction per contending core.
#pragma once

#include "common/types.hpp"
#include "sim/config.hpp"
#include "trace/program.hpp"

namespace spta::swcet {

struct CostModel {
  /// Builds from the platform's timing parameters. `contending_cores`
  /// inflates every memory access by the worst bus interference.
  CostModel(const sim::PlatformConfig& config, unsigned contending_cores = 0);

  /// Worst-case cycles to retire one instance of `inst`, charging a full
  /// ITLB walk + IL1 miss for the fetch (the crudest sound model; prefer
  /// WorstCaseExec + WorstBlockFetch for block-granular analysis).
  Cycles WorstCase(const trace::IrInst& inst) const;

  /// Worst-case execute/memory cycles of `inst`, excluding the fetch.
  Cycles WorstCaseExec(const trace::IrInst& inst) const;

  /// Sound fetch cost for one execution of a basic block of
  /// `n_instructions`: fetches are sequential, so at most
  /// ceil(n/instrs-per-line)+1 IL1 lines are filled and at most
  /// ceil(bytes/page)+1 ITLB walks occur, regardless of alignment and of
  /// any (random) replacement behavior.
  Cycles WorstBlockFetch(std::size_t n_instructions) const;

  /// Best-case cycles (all hits, minimal latencies, branch not taken).
  Cycles BestCase(const trace::IrInst& inst) const;

  /// Worst memory transaction (DRAM row miss + line transfer + wait).
  Cycles worst_line_fill() const { return worst_line_fill_; }

 private:
  sim::PlatformConfig config_;
  Cycles worst_line_fill_ = 0;
  Cycles worst_store_ = 0;
  Cycles interference_ = 0;
};

}  // namespace spta::swcet
