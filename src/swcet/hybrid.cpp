#include "swcet/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/assert.hpp"
#include "swcet/cfg.hpp"
#include "swcet/cost_model.hpp"

namespace spta::swcet {
namespace {

using trace::BlockId;

std::map<Address, std::size_t> EntryPcMap(const trace::Program& program) {
  std::map<Address, std::size_t> entry_pc;
  for (std::size_t b = 0; b < program.blocks.size(); ++b) {
    entry_pc[program.blocks[b].code_base] = b;
  }
  return entry_pc;
}

std::size_t LoopCodeBytes(const trace::Program& program, const Loop& loop) {
  std::size_t bytes = 0;
  for (const BlockId b : loop.blocks) {
    bytes += 4 * program.blocks[static_cast<std::size_t>(b)].insts.size();
  }
  return bytes;
}

}  // namespace

std::vector<std::uint64_t> BlockExecutionCounts(const trace::Program& program,
                                                const trace::Trace& t) {
  const auto entry_pc = EntryPcMap(program);
  std::vector<std::uint64_t> counts(program.blocks.size(), 0);
  for (const auto& rec : t.records) {
    const auto it = entry_pc.find(rec.pc);
    if (it != entry_pc.end()) ++counts[it->second];
  }
  return counts;
}

HybridResult HybridStructuralBound(
    const trace::Program& program,
    const std::vector<const trace::Trace*>& traces,
    const sim::PlatformConfig& config, unsigned contending_cores) {
  SPTA_REQUIRE(!traces.empty());
  const CostModel cost(config, contending_cores);
  const Cfg cfg(program);
  const auto entry_pc = EntryPcMap(program);

  // Per-block max execution counts and per-loop max entry counts across
  // the evidence traces.
  std::vector<std::uint64_t> max_counts(program.blocks.size(), 0);
  std::vector<std::uint64_t> max_entries(cfg.loops().size(), 0);
  std::vector<std::uint64_t> entries(cfg.loops().size());
  for (const trace::Trace* t : traces) {
    SPTA_REQUIRE(t != nullptr);
    const auto counts = BlockExecutionCounts(program, *t);
    for (std::size_t b = 0; b < counts.size(); ++b) {
      max_counts[b] = std::max(max_counts[b], counts[b]);
    }
    std::fill(entries.begin(), entries.end(), 0);
    BlockId prev = -1;
    for (const auto& rec : t->records) {
      const auto it = entry_pc.find(rec.pc);
      if (it == entry_pc.end()) continue;
      const auto block = static_cast<BlockId>(it->second);
      for (std::size_t l = 0; l < cfg.loops().size(); ++l) {
        const Loop& loop = cfg.loops()[l];
        if (block == loop.header &&
            (prev == -1 || !loop.Contains(prev))) {
          ++entries[l];
        }
      }
      prev = block;
    }
    for (std::size_t l = 0; l < cfg.loops().size(); ++l) {
      max_entries[l] = std::max(max_entries[l], entries[l]);
    }
  }

  // Persistence refinement (same argument as in the static bound): the
  // code of a loop that fits in the IL1 is fetched at most once per loop
  // entry. For each block find its outermost persistent ancestor loop.
  std::vector<int> persistent_ancestor(program.blocks.size(), -1);
  for (std::size_t b = 0; b < program.blocks.size(); ++b) {
    int l = cfg.InnermostLoopOf(static_cast<BlockId>(b));
    int outermost_fitting = -1;
    while (l != -1) {
      if (LoopCodeBytes(program, cfg.loops()[static_cast<std::size_t>(l)]) <=
          config.il1.size_bytes) {
        outermost_fitting = l;
      }
      l = cfg.loops()[static_cast<std::size_t>(l)].parent;
    }
    persistent_ancestor[b] = outermost_fitting;
  }

  HybridResult r;
  r.total_blocks = program.blocks.size();
  double total = 0.0;
  for (std::size_t b = 0; b < program.blocks.size(); ++b) {
    if (max_counts[b] == 0) {
      ++r.uncovered_blocks;
      continue;
    }
    double exec = 0.0;
    for (const auto& inst : program.blocks[b].insts) {
      exec += static_cast<double>(cost.WorstCaseExec(inst));
    }
    const double fetch = static_cast<double>(
        cost.WorstBlockFetch(program.blocks[b].insts.size()));
    const int pl = persistent_ancestor[b];
    const double fetch_executions =
        pl < 0 ? static_cast<double>(max_counts[b])
               : static_cast<double>(
                     max_entries[static_cast<std::size_t>(pl)]);
    total += static_cast<double>(max_counts[b]) * exec +
             fetch_executions * fetch;
  }
  r.wcet_bound = static_cast<Cycles>(std::llround(total));
  return r;
}

}  // namespace spta::swcet
