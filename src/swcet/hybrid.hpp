// Hybrid (measurement + structure) WCET bound, RapiTime-style.
//
// The paper's timing analysis runs on a commercial tool (Rapita RVS) whose
// classic MBTA mode combines per-block measurements with program
// structure. This module implements that scheme against the simulator:
// per-basic-block execution counts are measured from traces, each block is
// costed at its worst-case latency, and the bound is the structural
// combination sum_b maxcount(b) * worstcost(b) — conservative across any
// recombination of observed paths, but only as good as test coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "trace/program.hpp"
#include "trace/record.hpp"

namespace spta::swcet {

struct HybridResult {
  /// sum over blocks of (max executions in any trace) x (worst block cost).
  Cycles wcet_bound = 0;
  /// Blocks never executed by any trace (coverage holes: the bound cannot
  /// speak for them — the classic hybrid-analysis caveat).
  std::size_t uncovered_blocks = 0;
  std::size_t total_blocks = 0;

  double CoverageRatio() const {
    return total_blocks == 0
               ? 0.0
               : 1.0 - static_cast<double>(uncovered_blocks) /
                           static_cast<double>(total_blocks);
  }
};

/// Computes the hybrid bound from observed `traces` of `program` with the
/// all-worst per-instruction cost model of `config`. Requires at least one
/// trace.
HybridResult HybridStructuralBound(
    const trace::Program& program,
    const std::vector<const trace::Trace*>& traces,
    const sim::PlatformConfig& config, unsigned contending_cores = 0);

/// Per-block execution counts of one trace (index = block id). Exposed for
/// tests and coverage reporting.
std::vector<std::uint64_t> BlockExecutionCounts(const trace::Program& program,
                                                const trace::Trace& t);

}  // namespace spta::swcet
