#include "swcet/static_bound.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <optional>

#include "common/assert.hpp"

namespace spta::swcet {

using trace::BlockId;

namespace {

// Longest-path machinery over one "region": either the whole program with
// top-level loops collapsed to super-nodes, or one loop's body with its
// inner loops collapsed. Regions are DAGs by construction (back edges to
// the region header are excluded; anything cyclic deeper down lives inside
// a super-node).
struct RegionGraph {
  // node id -> weight (block cost or collapsed-loop cost)
  std::vector<double> weight;
  std::vector<std::vector<int>> edges;
  int entry = -1;
};

class StaticAnalyzer {
 public:
  StaticAnalyzer(const trace::Program& program, const Cfg& cfg,
                 const std::vector<LoopBoundAnnotation>& bounds,
                 const CostModel& cost, std::size_t il1_bytes, bool worst)
      : program_(program),
        cfg_(cfg),
        cost_(cost),
        worst_(worst),
        config_il1_bytes_(il1_bytes) {
    for (const auto& b : bounds) {
      bounds_[b.header] = b.max_iterations;
    }
    exec_cost_.resize(program.blocks.size());
    fetch_cost_.resize(program.blocks.size());
    for (std::size_t b = 0; b < program.blocks.size(); ++b) {
      double c = 0.0;
      for (const auto& inst : program.blocks[b].insts) {
        c += static_cast<double>(worst ? cost.WorstCaseExec(inst)
                                       : cost.BestCase(inst));
      }
      exec_cost_[b] = c;
      // Sequential-fetch refinement: sound per-block fetch cost (zero in
      // the best-case bracket, where everything hits).
      fetch_cost_[b] =
          worst ? static_cast<double>(cost.WorstBlockFetch(
                      program.blocks[b].insts.size()))
                : 0.0;
    }
    loop_cost_.assign(cfg.loops().size(), {-1.0, -1.0});
  }

  /// Longest (worst) or shortest-possible-floor (best) program cost.
  double ProgramCost() {
    return RegionCost(/*loop_index=*/-1, program_.entry);
  }

 private:
  std::uint64_t BoundFor(BlockId header) const {
    const auto it = bounds_.find(header);
    SPTA_REQUIRE_MSG(it != bounds_.end(),
                     "missing loop bound for header block " << header);
    SPTA_REQUIRE_MSG(it->second >= 1, "loop bound must be >= 1");
    return it->second;
  }

  // Total static code bytes of a loop (all contained blocks).
  std::size_t LoopCodeBytes(const Loop& loop) const {
    std::size_t bytes = 0;
    for (const BlockId b : loop.blocks) {
      bytes += 4 * program_.blocks[static_cast<std::size_t>(b)].insts.size();
    }
    return bytes;
  }

  // One-time fetch cost of bringing the whole loop's code in.
  double LoopFetchOnce(const Loop& loop) const {
    double c = 0.0;
    for (const BlockId b : loop.blocks) {
      c += fetch_cost_[static_cast<std::size_t>(b)];
    }
    return c;
  }

  double LoopCost(int loop_index, bool suppress_fetch) {
    double& memo = loop_cost_[static_cast<std::size_t>(loop_index)]
                             [suppress_fetch ? 1 : 0];
    if (memo >= 0.0) return memo;
    const Loop& loop = cfg_.loops()[static_cast<std::size_t>(loop_index)];
    const double iters = static_cast<double>(BoundFor(loop.header));
    // Persistence refinement (sound): the IL1 only serves fetches, so once
    // a loop whose code fits in the IL1 is fully resident no further
    // fetch misses can occur — evictions happen only on IL1 misses. Charge
    // the loop's code once and run the iterations fetch-free. When the
    // surrounding context already suppressed fetches (an enclosing
    // persistent loop paid for this code), charge nothing.
    const bool persistent =
        worst_ && LoopCodeBytes(loop) <= config_il1_bytes_;
    if (suppress_fetch) {
      memo = iters * RegionCost(loop_index, loop.header, true);
    } else if (persistent) {
      memo = LoopFetchOnce(loop) +
             iters * RegionCost(loop_index, loop.header, true);
    } else {
      memo = iters * RegionCost(loop_index, loop.header, false);
    }
    return memo;
  }

  // True when `block`'s loop-ancestry chain reaches `region` (-1 = top).
  // Returns the child-loop index that represents it inside the region, or
  // -1 when the block belongs to the region directly.
  std::optional<int> RepresentativeIn(int region, BlockId block) const {
    int l = cfg_.InnermostLoopOf(block);
    if (region >= 0) {
      // The region's own header/body blocks have innermost == region
      // (header) or a descendant. Walk up until we hit region.
      int prev = -1;
      while (l != -1 && l != region) {
        prev = l;
        l = cfg_.loops()[static_cast<std::size_t>(l)].parent;
      }
      if (l != region) return std::nullopt;  // not inside this loop
      return prev;  // -1: direct member; else collapsed child loop
    }
    // Top region: climb to the outermost loop.
    int prev = -1;
    while (l != -1) {
      prev = l;
      l = cfg_.loops()[static_cast<std::size_t>(l)].parent;
    }
    return prev;
  }

  double RegionCost(int region, BlockId entry_block,
                    bool suppress_fetch = false) {
    // Node mapping: direct blocks -> unique node; child loop -> one node.
    std::map<std::pair<bool, int>, int> node_of;  // (is_loop, id) -> node
    RegionGraph g;
    auto node_for = [&](BlockId block) -> int {
      const auto rep = RepresentativeIn(region, block);
      SPTA_CHECK(rep.has_value());
      std::pair<bool, int> key =
          *rep == -1 ? std::pair{false, static_cast<int>(block)}
                     : std::pair{true, *rep};
      const auto it = node_of.find(key);
      if (it != node_of.end()) return it->second;
      const int id = static_cast<int>(g.weight.size());
      node_of[key] = id;
      g.weight.push_back(
          key.first
              ? LoopCost(key.second, suppress_fetch)
              : exec_cost_[static_cast<std::size_t>(block)] +
                    (suppress_fetch
                         ? 0.0
                         : fetch_cost_[static_cast<std::size_t>(block)]));
      g.edges.emplace_back();
      return id;
    };

    const BlockId header = region >= 0
                               ? cfg_.loops()[static_cast<std::size_t>(
                                                  region)]
                                     .header
                               : -1;
    g.entry = node_for(entry_block);
    // Edges: for every block in the region (directly or via child loops),
    // successors that stay in the region induce node edges; edges back to
    // the region header are loop back-edges and excluded.
    for (std::size_t b = 0; b < program_.blocks.size(); ++b) {
      const auto rep = RepresentativeIn(region, static_cast<BlockId>(b));
      if (!rep.has_value()) continue;
      const int from = node_for(static_cast<BlockId>(b));
      for (const BlockId s :
           cfg_.successors()[static_cast<std::size_t>(b)]) {
        if (region >= 0 && s == header) continue;  // back edge
        const auto srep = RepresentativeIn(region, s);
        if (!srep.has_value()) continue;  // exits the region
        const int to = node_for(s);
        if (to != from) g.edges[static_cast<std::size_t>(from)].push_back(to);
      }
    }
    return LongestPath(g);
  }

  static double LongestPath(const RegionGraph& g) {
    // DFS topological order from the entry (the region graph is a DAG).
    const std::size_t n = g.weight.size();
    std::vector<int> order;
    std::vector<int> state(n, 0);
    std::vector<std::pair<int, std::size_t>> stack{{g.entry, 0}};
    state[static_cast<std::size_t>(g.entry)] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& succs = g.edges[static_cast<std::size_t>(node)];
      if (next < succs.size()) {
        const int s = succs[next++];
        SPTA_CHECK_MSG(state[static_cast<std::size_t>(s)] != 1,
                       "cycle in region graph");
        if (state[static_cast<std::size_t>(s)] == 0) {
          state[static_cast<std::size_t>(s)] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[static_cast<std::size_t>(node)] = 2;
        order.push_back(node);
        stack.pop_back();
      }
    }
    // Longest node-weighted path from entry, processed in reverse post
    // order (order is post order; reverse gives topological).
    std::vector<double> dist(n, -1.0);
    dist[static_cast<std::size_t>(g.entry)] =
        g.weight[static_cast<std::size_t>(g.entry)];
    double best = dist[static_cast<std::size_t>(g.entry)];
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int u = *it;
      if (dist[static_cast<std::size_t>(u)] < 0.0) continue;
      best = std::max(best, dist[static_cast<std::size_t>(u)]);
      for (const int v : g.edges[static_cast<std::size_t>(u)]) {
        dist[static_cast<std::size_t>(v)] =
            std::max(dist[static_cast<std::size_t>(v)],
                     dist[static_cast<std::size_t>(u)] +
                         g.weight[static_cast<std::size_t>(v)]);
      }
    }
    return best;
  }

  const trace::Program& program_;
  const Cfg& cfg_;
  const CostModel& cost_;
  bool worst_;
  std::size_t config_il1_bytes_ = 0;
  std::map<BlockId, std::uint64_t> bounds_;
  std::vector<double> exec_cost_;
  std::vector<double> fetch_cost_;
  std::vector<std::array<double, 2>> loop_cost_;
};

}  // namespace

StaticBoundResult ComputeStaticBound(
    const trace::Program& program,
    const std::vector<LoopBoundAnnotation>& bounds,
    const sim::PlatformConfig& config, unsigned contending_cores) {
  const Cfg cfg(program);
  const CostModel cost(config, contending_cores);
  StaticBoundResult r;
  StaticAnalyzer worst(program, cfg, bounds, cost, config.il1.size_bytes,
                       /*worst=*/true);
  r.wcet_bound = static_cast<Cycles>(std::llround(worst.ProgramCost()));
  StaticAnalyzer best(program, cfg, bounds, cost, config.il1.size_bytes,
                      /*worst=*/false);
  // For the best-case bracket a loop could also exit immediately; keeping
  // the annotated count makes this a "typical floor", not a true BCET —
  // documented in the header. Use it only for bracketing sanity.
  r.bcet_bound = static_cast<Cycles>(std::llround(best.ProgramCost()));
  return r;
}

std::vector<LoopBoundAnnotation> DeriveLoopBounds(
    const trace::Program& program,
    const std::vector<const trace::Trace*>& traces, double margin) {
  SPTA_REQUIRE(!traces.empty());
  SPTA_REQUIRE(margin >= 1.0);
  const Cfg cfg(program);

  // Map block entry addresses to block ids.
  std::map<Address, BlockId> entry_pc;
  for (std::size_t b = 0; b < program.blocks.size(); ++b) {
    entry_pc[program.blocks[b].code_base] = static_cast<BlockId>(b);
  }

  std::vector<std::uint64_t> max_per_entry(cfg.loops().size(), 0);
  std::vector<std::uint64_t> current(cfg.loops().size(), 0);

  for (const trace::Trace* t : traces) {
    SPTA_REQUIRE(t != nullptr);
    std::fill(current.begin(), current.end(), 0);
    BlockId prev_block = -1;
    for (const auto& rec : t->records) {
      const auto it = entry_pc.find(rec.pc);
      if (it == entry_pc.end()) continue;  // not a block entry
      const BlockId block = it->second;
      for (std::size_t l = 0; l < cfg.loops().size(); ++l) {
        const Loop& loop = cfg.loops()[l];
        if (block == loop.header) {
          // New entry when we came from outside the loop.
          const bool from_outside =
              prev_block == -1 || !loop.Contains(prev_block);
          current[l] = from_outside ? 1 : current[l] + 1;
          max_per_entry[l] = std::max(max_per_entry[l], current[l]);
        }
      }
      prev_block = block;
    }
  }

  std::vector<LoopBoundAnnotation> out;
  out.reserve(cfg.loops().size());
  for (std::size_t l = 0; l < cfg.loops().size(); ++l) {
    LoopBoundAnnotation a;
    a.header = cfg.loops()[l].header;
    a.max_iterations = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(
               margin * static_cast<double>(max_per_entry[l]))));
    out.push_back(a);
  }
  return out;
}

}  // namespace spta::swcet
