// Pure static WCET bound: longest CFG path with annotated loop bounds and
// the all-miss cost model — the "static timing analysis" comparator of the
// WCET survey (Wilhelm et al.) the paper positions MBTA/MBPTA against.
//
// The bound is computed structurally on the loop-nesting forest: a loop's
// cost is (iteration bound) x (longest acyclic path through its body,
// inner loops collapsed to super-nodes); the program cost is the longest
// acyclic path from entry to Halt over top-level blocks and loop
// super-nodes. Sound for any input that respects the loop bounds;
// typically very pessimistic — that is its point in the comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "swcet/cfg.hpp"
#include "swcet/cost_model.hpp"
#include "trace/record.hpp"

namespace spta::swcet {

/// Iteration bound for the loop headed at `header`: the maximum number of
/// times the header may execute per entry of the loop.
struct LoopBoundAnnotation {
  trace::BlockId header = -1;
  std::uint64_t max_iterations = 0;
};

struct StaticBoundResult {
  Cycles wcet_bound = 0;   ///< Sound upper bound (all-miss, worst FPU).
  Cycles bcet_bound = 0;   ///< Lower bracket (all-hit, best latencies).
};

/// Computes the static bound. Every loop found in the CFG must have an
/// annotation (precondition). `contending_cores` adds the multicore
/// interference term to every memory access.
StaticBoundResult ComputeStaticBound(
    const trace::Program& program,
    const std::vector<LoopBoundAnnotation>& bounds,
    const sim::PlatformConfig& config, unsigned contending_cores = 0);

/// Derives loop-bound annotations from observed traces, RapiTime-style:
/// for each loop header, the bound is the maximum header executions per
/// loop entry seen in any trace, times a safety `margin` (rounded up).
/// Requires at least one trace. The result is only as trustworthy as the
/// coverage of the traces — which is exactly the caveat of hybrid tools.
std::vector<LoopBoundAnnotation> DeriveLoopBounds(
    const trace::Program& program,
    const std::vector<const trace::Trace*>& traces, double margin = 1.2);

}  // namespace spta::swcet
