#include "trace/disasm.hpp"

#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace spta::trace {
namespace {

std::string Hex(Address a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%08llx",
                static_cast<unsigned long long>(a));
  return buf;
}

std::string IReg(RegId r) { return "r" + std::to_string(r); }
std::string FReg(RegId r) { return "f" + std::to_string(r); }

std::string MemOperand(const Program& p, const IrInst& inst) {
  std::ostringstream oss;
  oss << p.arrays[inst.array].name << "[" << IReg(inst.src1);
  if (inst.imm > 0) oss << "+" << inst.imm;
  if (inst.imm < 0) oss << inst.imm;
  oss << "]";
  return oss.str();
}

}  // namespace

std::string DisassembleInst(const Program& p, const IrInst& inst) {
  std::ostringstream oss;
  switch (inst.op) {
    case IrOp::kIConst:
      oss << "iconst " << IReg(inst.dst) << ", " << inst.imm;
      break;
    case IrOp::kIMove:
      oss << "imov " << IReg(inst.dst) << ", " << IReg(inst.src1);
      break;
    case IrOp::kIAdd:
    case IrOp::kISub:
    case IrOp::kIMul:
    case IrOp::kIDiv:
    case IrOp::kIAnd:
    case IrOp::kIXor:
    case IrOp::kICmpLt: {
      const char* mn = inst.op == IrOp::kIAdd   ? "iadd"
                       : inst.op == IrOp::kISub ? "isub"
                       : inst.op == IrOp::kIMul ? "imul"
                       : inst.op == IrOp::kIDiv ? "idiv"
                       : inst.op == IrOp::kIAnd ? "iand"
                       : inst.op == IrOp::kIXor ? "ixor"
                                                : "icmplt";
      oss << mn << " " << IReg(inst.dst) << ", " << IReg(inst.src1) << ", "
          << IReg(inst.src2);
      break;
    }
    case IrOp::kIAddImm:
      oss << "iaddi " << IReg(inst.dst) << ", " << IReg(inst.src1) << ", "
          << inst.imm;
      break;
    case IrOp::kIShl:
    case IrOp::kIShr:
      oss << (inst.op == IrOp::kIShl ? "ishl " : "ishr ") << IReg(inst.dst)
          << ", " << IReg(inst.src1) << ", " << (inst.imm & 63);
      break;
    case IrOp::kFConst:
      oss << "fconst " << FReg(inst.dst) << ", " << inst.fimm;
      break;
    case IrOp::kFMove:
    case IrOp::kFAbs:
    case IrOp::kFNeg:
    case IrOp::kFSqrt: {
      const char* mn = inst.op == IrOp::kFMove  ? "fmov"
                       : inst.op == IrOp::kFAbs ? "fabs"
                       : inst.op == IrOp::kFNeg ? "fneg"
                                                : "fsqrt";
      oss << mn << " " << FReg(inst.dst) << ", " << FReg(inst.src1);
      break;
    }
    case IrOp::kFAdd:
    case IrOp::kFSub:
    case IrOp::kFMul:
    case IrOp::kFDiv: {
      const char* mn = inst.op == IrOp::kFAdd   ? "fadd"
                       : inst.op == IrOp::kFSub ? "fsub"
                       : inst.op == IrOp::kFMul ? "fmul"
                                                : "fdiv";
      oss << mn << " " << FReg(inst.dst) << ", " << FReg(inst.src1) << ", "
          << FReg(inst.src2);
      break;
    }
    case IrOp::kFCmpLt:
      oss << "fcmplt " << IReg(inst.dst) << ", " << FReg(inst.src1) << ", "
          << FReg(inst.src2);
      break;
    case IrOp::kIToF:
      oss << "itof " << FReg(inst.dst) << ", " << IReg(inst.src1);
      break;
    case IrOp::kFToI:
      oss << "ftoi " << IReg(inst.dst) << ", " << FReg(inst.src1);
      break;
    case IrOp::kLoadI:
      oss << "ldi " << IReg(inst.dst) << ", " << MemOperand(p, inst);
      break;
    case IrOp::kLoadF:
      oss << "ldf " << FReg(inst.dst) << ", " << MemOperand(p, inst);
      break;
    case IrOp::kStoreI:
      oss << "sti " << MemOperand(p, inst) << ", " << IReg(inst.src2);
      break;
    case IrOp::kStoreF:
      oss << "stf " << MemOperand(p, inst) << ", " << FReg(inst.src2);
      break;
    case IrOp::kJump:
      oss << "jmp .B" << inst.target;
      break;
    case IrOp::kBranchIfZero:
      oss << "brz " << IReg(inst.src1) << ", .B" << inst.target << ", .B"
          << inst.target2;
      break;
    case IrOp::kBranchIfNeg:
      oss << "brn " << IReg(inst.src1) << ", .B" << inst.target << ", .B"
          << inst.target2;
      break;
    case IrOp::kHalt:
      oss << "halt";
      break;
  }
  return oss.str();
}

std::string Disassemble(const Program& p) {
  p.Validate();
  std::ostringstream oss;
  oss << "; program '" << p.name << "', "
      << p.StaticInstructionCount() << " instructions, entry .B" << p.entry
      << "\n";
  oss << "; data:\n";
  for (const auto& arr : p.arrays) {
    oss << ";   " << Hex(arr.base) << "  " << arr.name << "["
        << arr.elem_count << "] " << (arr.is_fp ? "f64" : "i32") << " ("
        << arr.byte_size() << " bytes)\n";
  }
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const auto& block = p.blocks[b];
    oss << ".B" << b << ":  ; " << Hex(block.code_base) << "\n";
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
      oss << "  " << Hex(block.code_base + 4 * i) << "  "
          << DisassembleInst(p, block.insts[i]) << "\n";
    }
  }
  return oss.str();
}

}  // namespace spta::trace
