// Human-readable listings of IR programs.
//
// Debugging aid and documentation generator: renders a Program block by
// block with addresses, mnemonics, operands and CFG targets — the listing
// a reviewer reads next to the timing-analysis results.
#pragma once

#include <string>

#include "trace/program.hpp"

namespace spta::trace {

/// One-line rendering of a single instruction, e.g.
/// "fdiv f2, f2, f7" or "ldf f3, state[r2+1]".
std::string DisassembleInst(const Program& program, const IrInst& inst);

/// Full listing: data objects with their addresses, then every block with
/// its code range and instructions.
std::string Disassemble(const Program& program);

}  // namespace spta::trace
