#include "trace/interpreter.hpp"

#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::trace {
namespace {

std::uint8_t MantissaClass(double value) {
  if (value == 0.0 || !std::isfinite(value)) return 0;
  const auto bits = std::bit_cast<std::uint64_t>(value);
  const std::uint64_t mantissa = bits & ((1ULL << 52) - 1);
  if (mantissa == 0) return 0;  // exact power of two: earliest termination
  const int trailing_zeros = std::countr_zero(mantissa);
  // 52 mantissa bits; every ~17 additional significant bits cost one class.
  const int significant = 52 - trailing_zeros;
  const int cls = 1 + (significant - 1) / 17;  // 1..4 -> clamp below
  return static_cast<std::uint8_t>(
      cls >= kFpuOperandClasses ? kFpuOperandClasses - 1 : cls);
}

// Fills the register-operand fields of `rec` from the IR instruction, in
// the encoded (file-tagged) form the hazard model expects.
void FillRegs(const IrInst& inst, TraceRecord& rec) {
  const auto I = [](RegId r) { return static_cast<std::uint8_t>(r); };
  const auto F = [](RegId r) {
    return static_cast<std::uint8_t>(r | kFpRegFlag);
  };
  switch (inst.op) {
    case IrOp::kIConst:
      rec.dst_reg = I(inst.dst);
      break;
    case IrOp::kIMove:
    case IrOp::kIAddImm:
    case IrOp::kIShl:
    case IrOp::kIShr:
      rec.dst_reg = I(inst.dst);
      rec.src1_reg = I(inst.src1);
      break;
    case IrOp::kIAdd:
    case IrOp::kISub:
    case IrOp::kIMul:
    case IrOp::kIDiv:
    case IrOp::kIAnd:
    case IrOp::kIXor:
    case IrOp::kICmpLt:
      rec.dst_reg = I(inst.dst);
      rec.src1_reg = I(inst.src1);
      rec.src2_reg = I(inst.src2);
      break;
    case IrOp::kFConst:
      rec.dst_reg = F(inst.dst);
      break;
    case IrOp::kFMove:
    case IrOp::kFAbs:
    case IrOp::kFNeg:
    case IrOp::kFSqrt:
      rec.dst_reg = F(inst.dst);
      rec.src1_reg = F(inst.src1);
      break;
    case IrOp::kFAdd:
    case IrOp::kFSub:
    case IrOp::kFMul:
    case IrOp::kFDiv:
      rec.dst_reg = F(inst.dst);
      rec.src1_reg = F(inst.src1);
      rec.src2_reg = F(inst.src2);
      break;
    case IrOp::kFCmpLt:
      rec.dst_reg = I(inst.dst);
      rec.src1_reg = F(inst.src1);
      rec.src2_reg = F(inst.src2);
      break;
    case IrOp::kIToF:
      rec.dst_reg = F(inst.dst);
      rec.src1_reg = I(inst.src1);
      break;
    case IrOp::kFToI:
      rec.dst_reg = I(inst.dst);
      rec.src1_reg = F(inst.src1);
      break;
    case IrOp::kLoadI:
      rec.dst_reg = I(inst.dst);
      rec.src1_reg = I(inst.src1);
      break;
    case IrOp::kLoadF:
      rec.dst_reg = F(inst.dst);
      rec.src1_reg = I(inst.src1);
      break;
    case IrOp::kStoreI:
      rec.src1_reg = I(inst.src1);
      rec.src2_reg = I(inst.src2);
      break;
    case IrOp::kStoreF:
      rec.src1_reg = I(inst.src1);
      rec.src2_reg = F(inst.src2);
      break;
    case IrOp::kBranchIfZero:
    case IrOp::kBranchIfNeg:
      rec.src1_reg = I(inst.src1);
      break;
    case IrOp::kJump:
    case IrOp::kHalt:
      break;
  }
}

}  // namespace

std::uint8_t FpuDivOperandClass(double dividend, double divisor) {
  if (divisor == 0.0) return kFpuOperandClasses - 1;
  return MantissaClass(dividend / divisor);
}

std::uint8_t FpuSqrtOperandClass(double operand) {
  return MantissaClass(std::sqrt(std::fabs(operand)));
}

Interpreter::Interpreter(const Program& program, Options options)
    : program_(program),
      options_(options),
      iregs_(kNumRegs, 0),
      fregs_(kNumRegs, 0.0),
      storage_(program.arrays.size()) {
  for (std::size_t a = 0; a < program.arrays.size(); ++a) {
    const DataObject& obj = program.arrays[a];
    if (obj.is_fp) {
      storage_[a].fps.assign(obj.elem_count, 0.0);
    } else {
      storage_[a].ints.assign(obj.elem_count, 0);
    }
  }
}

void Interpreter::SetIntReg(RegId reg, std::int64_t value) {
  SPTA_REQUIRE(reg < kNumRegs);
  iregs_[reg] = value;
}

void Interpreter::SetFpReg(RegId reg, double value) {
  SPTA_REQUIRE(reg < kNumRegs);
  fregs_[reg] = value;
}

const DataObject& Interpreter::CheckedArray(ArrayId array,
                                            bool want_fp) const {
  SPTA_REQUIRE(array < program_.arrays.size());
  const DataObject& obj = program_.arrays[array];
  SPTA_REQUIRE_MSG(obj.is_fp == want_fp,
                   "array '" << obj.name << "' type mismatch");
  return obj;
}

void Interpreter::WriteInt(ArrayId array, std::size_t index,
                           std::int32_t value) {
  const DataObject& obj = CheckedArray(array, false);
  SPTA_REQUIRE_MSG(index < obj.elem_count, "index " << index << " in '"
                                                    << obj.name << "'");
  storage_[array].ints[index] = value;
}

void Interpreter::WriteFp(ArrayId array, std::size_t index, double value) {
  const DataObject& obj = CheckedArray(array, true);
  SPTA_REQUIRE_MSG(index < obj.elem_count, "index " << index << " in '"
                                                    << obj.name << "'");
  storage_[array].fps[index] = value;
}

std::int64_t Interpreter::int_reg(RegId reg) const {
  SPTA_REQUIRE(reg < kNumRegs);
  return iregs_[reg];
}

double Interpreter::fp_reg(RegId reg) const {
  SPTA_REQUIRE(reg < kNumRegs);
  return fregs_[reg];
}

std::int32_t Interpreter::ReadInt(ArrayId array, std::size_t index) const {
  const DataObject& obj = CheckedArray(array, false);
  SPTA_REQUIRE(index < obj.elem_count);
  return storage_[array].ints[index];
}

double Interpreter::ReadFp(ArrayId array, std::size_t index) const {
  const DataObject& obj = CheckedArray(array, true);
  SPTA_REQUIRE(index < obj.elem_count);
  return storage_[array].fps[index];
}

std::size_t Interpreter::CheckedIndex(const IrInst& inst,
                                      const DataObject& obj) const {
  const std::int64_t idx = iregs_[inst.src1] + inst.imm;
  SPTA_CHECK_MSG(idx >= 0 && static_cast<std::size_t>(idx) < obj.elem_count,
                 "out-of-bounds access to '" << obj.name << "': index " << idx
                                             << " size " << obj.elem_count);
  return static_cast<std::size_t>(idx);
}

Trace Interpreter::Run() {
  SPTA_REQUIRE_MSG(!has_run_, "Interpreter::Run may be called once");
  has_run_ = true;

  Trace out;
  std::uint64_t path_hash = 0x5bd1e995u;
  BlockId block_id = program_.entry;
  bool halted = false;

  while (!halted) {
    path_hash = HashCombine(path_hash, static_cast<std::uint64_t>(block_id));
    const BasicBlock& block =
        program_.blocks[static_cast<std::size_t>(block_id)];
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
      SPTA_CHECK_MSG(steps_ < options_.max_steps,
                     "step limit " << options_.max_steps << " exceeded in '"
                                   << program_.name << "'");
      ++steps_;
      const IrInst& inst = block.insts[i];
      TraceRecord rec;
      rec.pc = block.code_base + 4 * static_cast<Address>(i);
      FillRegs(inst, rec);

      switch (inst.op) {
        case IrOp::kIConst:
          iregs_[inst.dst] = inst.imm;
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIMove:
          iregs_[inst.dst] = iregs_[inst.src1];
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIAdd:
          iregs_[inst.dst] = iregs_[inst.src1] + iregs_[inst.src2];
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kISub:
          iregs_[inst.dst] = iregs_[inst.src1] - iregs_[inst.src2];
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIMul:
          iregs_[inst.dst] = iregs_[inst.src1] * iregs_[inst.src2];
          rec.op = OpClass::kIntMul;
          break;
        case IrOp::kIDiv:
          SPTA_CHECK_MSG(iregs_[inst.src2] != 0, "integer division by zero");
          iregs_[inst.dst] = iregs_[inst.src1] / iregs_[inst.src2];
          rec.op = OpClass::kIntDiv;
          break;
        case IrOp::kIAddImm:
          iregs_[inst.dst] = iregs_[inst.src1] + inst.imm;
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIAnd:
          iregs_[inst.dst] = iregs_[inst.src1] & iregs_[inst.src2];
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIXor:
          iregs_[inst.dst] = iregs_[inst.src1] ^ iregs_[inst.src2];
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIShl:
          iregs_[inst.dst] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(iregs_[inst.src1])
              << (inst.imm & 63));
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kIShr:
          iregs_[inst.dst] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(iregs_[inst.src1]) >>
              (inst.imm & 63));
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kICmpLt:
          iregs_[inst.dst] =
              iregs_[inst.src1] < iregs_[inst.src2] ? 1 : 0;
          rec.op = OpClass::kIntAlu;
          break;
        case IrOp::kFConst:
          fregs_[inst.dst] = inst.fimm;
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFMove:
          fregs_[inst.dst] = fregs_[inst.src1];
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFAdd:
          fregs_[inst.dst] = fregs_[inst.src1] + fregs_[inst.src2];
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFSub:
          fregs_[inst.dst] = fregs_[inst.src1] - fregs_[inst.src2];
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFMul:
          fregs_[inst.dst] = fregs_[inst.src1] * fregs_[inst.src2];
          rec.op = OpClass::kFpMul;
          break;
        case IrOp::kFDiv: {
          const double a = fregs_[inst.src1];
          const double b = fregs_[inst.src2];
          SPTA_CHECK_MSG(b != 0.0, "FP division by zero in '"
                                       << program_.name << "'");
          rec.fpu_operand_class = FpuDivOperandClass(a, b);
          fregs_[inst.dst] = a / b;
          rec.op = OpClass::kFpDiv;
          break;
        }
        case IrOp::kFSqrt: {
          const double a = fregs_[inst.src1];
          rec.fpu_operand_class = FpuSqrtOperandClass(a);
          fregs_[inst.dst] = std::sqrt(std::fabs(a));
          rec.op = OpClass::kFpSqrt;
          break;
        }
        case IrOp::kFAbs:
          fregs_[inst.dst] = std::fabs(fregs_[inst.src1]);
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFNeg:
          fregs_[inst.dst] = -fregs_[inst.src1];
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFCmpLt:
          iregs_[inst.dst] =
              fregs_[inst.src1] < fregs_[inst.src2] ? 1 : 0;
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kIToF:
          fregs_[inst.dst] = static_cast<double>(iregs_[inst.src1]);
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kFToI:
          iregs_[inst.dst] = static_cast<std::int64_t>(fregs_[inst.src1]);
          rec.op = OpClass::kFpAdd;
          break;
        case IrOp::kLoadI: {
          const DataObject& obj = program_.arrays[inst.array];
          const std::size_t idx = CheckedIndex(inst, obj);
          iregs_[inst.dst] = storage_[inst.array].ints[idx];
          rec.op = OpClass::kLoad;
          rec.mem_addr = obj.base + idx * obj.elem_size();
          break;
        }
        case IrOp::kStoreI: {
          const DataObject& obj = program_.arrays[inst.array];
          const std::size_t idx = CheckedIndex(inst, obj);
          storage_[inst.array].ints[idx] =
              static_cast<std::int32_t>(iregs_[inst.src2]);
          rec.op = OpClass::kStore;
          rec.mem_addr = obj.base + idx * obj.elem_size();
          break;
        }
        case IrOp::kLoadF: {
          const DataObject& obj = program_.arrays[inst.array];
          const std::size_t idx = CheckedIndex(inst, obj);
          fregs_[inst.dst] = storage_[inst.array].fps[idx];
          rec.op = OpClass::kLoad;
          rec.mem_addr = obj.base + idx * obj.elem_size();
          break;
        }
        case IrOp::kStoreF: {
          const DataObject& obj = program_.arrays[inst.array];
          const std::size_t idx = CheckedIndex(inst, obj);
          storage_[inst.array].fps[idx] = fregs_[inst.src2];
          rec.op = OpClass::kStore;
          rec.mem_addr = obj.base + idx * obj.elem_size();
          break;
        }
        case IrOp::kJump:
          rec.op = OpClass::kBranch;
          rec.branch_taken = true;
          block_id = inst.target;
          break;
        case IrOp::kBranchIfZero: {
          const bool taken = iregs_[inst.src1] == 0;
          rec.op = OpClass::kBranch;
          rec.branch_taken = taken;
          block_id = taken ? inst.target : inst.target2;
          break;
        }
        case IrOp::kBranchIfNeg: {
          const bool taken = iregs_[inst.src1] < 0;
          rec.op = OpClass::kBranch;
          rec.branch_taken = taken;
          block_id = taken ? inst.target : inst.target2;
          break;
        }
        case IrOp::kHalt:
          rec.op = OpClass::kBranch;
          rec.branch_taken = false;
          halted = true;
          break;
      }
      out.records.push_back(rec);
    }
  }
  out.path_signature = path_hash;
  return out;
}

}  // namespace spta::trace
