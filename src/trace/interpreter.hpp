// IR interpreter: executes a Program and emits its dynamic trace.
//
// One Interpreter instance performs one run: construct, poke inputs into
// registers/arrays, call Run(), inspect outputs. The emitted Trace is the
// retired-instruction stream consumed by the timing simulator; the
// interpreter itself is functional-only (no timing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/program.hpp"
#include "trace/record.hpp"

namespace spta::trace {

class Interpreter {
 public:
  struct Options {
    /// Abort (contract failure) if the program executes more than this many
    /// instructions — catches unbounded loops in workload definitions,
    /// which would be WCET-analysis nonsense anyway.
    std::size_t max_steps = 50'000'000;
  };

  /// Binds to `program` (must outlive the interpreter; must be validated
  /// and laid out, which Program::Build guarantees). Arrays start zeroed,
  /// registers start at zero.
  explicit Interpreter(const Program& program)
      : Interpreter(program, Options{}) {}
  Interpreter(const Program& program, Options options);

  // --- Input injection (before Run) -------------------------------------
  void SetIntReg(RegId reg, std::int64_t value);
  void SetFpReg(RegId reg, double value);
  void WriteInt(ArrayId array, std::size_t index, std::int32_t value);
  void WriteFp(ArrayId array, std::size_t index, double value);

  /// Executes from the entry block until kHalt; returns the dynamic trace.
  /// May be called exactly once per interpreter instance.
  Trace Run();

  // --- Output inspection (after Run) -------------------------------------
  std::int64_t int_reg(RegId reg) const;
  double fp_reg(RegId reg) const;
  std::int32_t ReadInt(ArrayId array, std::size_t index) const;
  double ReadFp(ArrayId array, std::size_t index) const;

  /// Instructions retired by Run() (0 before).
  std::size_t steps_executed() const { return steps_; }

 private:
  struct ArrayStorage {
    std::vector<std::int32_t> ints;
    std::vector<double> fps;
  };

  const DataObject& CheckedArray(ArrayId array, bool want_fp) const;
  std::size_t CheckedIndex(const IrInst& inst,
                           const DataObject& obj) const;

  const Program& program_;
  Options options_;
  std::vector<std::int64_t> iregs_;
  std::vector<double> fregs_;
  std::vector<ArrayStorage> storage_;
  std::size_t steps_ = 0;
  bool has_run_ = false;
};

/// Deterministic operand-difficulty class for a value-dependent FP divide:
/// models SRT-style early termination — quotients with few significant
/// mantissa bits finish sooner. Returns a class in [0, kFpuOperandClasses).
std::uint8_t FpuDivOperandClass(double dividend, double divisor);

/// Operand-difficulty class for FSQRT, from the result's mantissa.
std::uint8_t FpuSqrtOperandClass(double operand);

}  // namespace spta::trace
