#include "trace/program.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::trace {

bool IsControl(IrOp op) {
  switch (op) {
    case IrOp::kJump:
    case IrOp::kBranchIfZero:
    case IrOp::kBranchIfNeg:
    case IrOp::kHalt:
      return true;
    default:
      return false;
  }
}

void Program::AssignLayout(Address code_base, Address data_base,
                           std::uint64_t link_offset,
                           std::uint64_t layout_seed) {
  Address pc = code_base;
  for (auto& block : blocks) {
    block.code_base = pc;
    pc += 4 * block.insts.size();
  }
  Address addr = data_base + link_offset;
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (layout_seed != 0) {
      // A different link map: deterministic pseudo-random inter-array gap
      // of 0..63 cache lines.
      addr += 64 * (Mix64(layout_seed ^ (i + 1)) % 64);
    }
    addr = (addr + 63) & ~Address{63};  // 64-byte (cache line) alignment
    arrays[i].base = addr;
    addr += arrays[i].byte_size();
  }
}

void Program::Validate() const {
  SPTA_CHECK_MSG(!blocks.empty(), "program '" << name << "' has no blocks");
  SPTA_CHECK_MSG(entry >= 0 && static_cast<std::size_t>(entry) < blocks.size(),
                 "entry block " << entry << " out of range");
  auto check_block = [&](BlockId id) {
    SPTA_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < blocks.size(),
                   "block target " << id << " out of range in '" << name
                                   << "'");
  };
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& insts = blocks[b].insts;
    SPTA_CHECK_MSG(!insts.empty(), "block " << b << " is empty");
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const IrInst& inst = insts[i];
      const bool is_last = (i + 1 == insts.size());
      SPTA_CHECK_MSG(IsControl(inst.op) == is_last,
                     "block " << b << " inst " << i
                              << ": control ops must terminate the block");
      SPTA_CHECK_MSG(inst.dst < kNumRegs && inst.src1 < kNumRegs &&
                         inst.src2 < kNumRegs,
                     "block " << b << " inst " << i << ": register id");
      switch (inst.op) {
        case IrOp::kLoadI:
        case IrOp::kStoreI:
        case IrOp::kLoadF:
        case IrOp::kStoreF:
          SPTA_CHECK_MSG(inst.array < arrays.size(),
                         "block " << b << " inst " << i << ": array id "
                                  << inst.array);
          if (inst.op == IrOp::kLoadI || inst.op == IrOp::kStoreI) {
            SPTA_CHECK_MSG(!arrays[inst.array].is_fp,
                           "int access to fp array '"
                               << arrays[inst.array].name << "'");
          } else {
            SPTA_CHECK_MSG(arrays[inst.array].is_fp,
                           "fp access to int array '"
                               << arrays[inst.array].name << "'");
          }
          break;
        case IrOp::kJump:
          check_block(inst.target);
          break;
        case IrOp::kBranchIfZero:
        case IrOp::kBranchIfNeg:
          check_block(inst.target);
          check_block(inst.target2);
          break;
        default:
          break;
      }
    }
  }
}

std::size_t Program::StaticInstructionCount() const {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.insts.size();
  return n;
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
}

ArrayId ProgramBuilder::AddIntArray(std::string name, std::size_t elems) {
  SPTA_REQUIRE(elems > 0);
  program_.arrays.push_back({std::move(name), elems, /*is_fp=*/false, 0});
  return static_cast<ArrayId>(program_.arrays.size() - 1);
}

ArrayId ProgramBuilder::AddFpArray(std::string name, std::size_t elems) {
  SPTA_REQUIRE(elems > 0);
  program_.arrays.push_back({std::move(name), elems, /*is_fp=*/true, 0});
  return static_cast<ArrayId>(program_.arrays.size() - 1);
}

BlockId ProgramBuilder::NewBlock() {
  program_.blocks.emplace_back();
  return static_cast<BlockId>(program_.blocks.size() - 1);
}

void ProgramBuilder::SwitchTo(BlockId block) {
  SPTA_REQUIRE(block >= 0 &&
               static_cast<std::size_t>(block) < program_.blocks.size());
  current_ = block;
}

void ProgramBuilder::SetEntry(BlockId block) { program_.entry = block; }

void ProgramBuilder::Emit(IrInst inst) {
  SPTA_REQUIRE_MSG(current_ >= 0, "no current block; call SwitchTo first");
  program_.blocks[static_cast<std::size_t>(current_)].insts.push_back(inst);
}

void ProgramBuilder::IConst(RegId dst, std::int64_t v) {
  Emit({.op = IrOp::kIConst, .dst = dst, .imm = v});
}
void ProgramBuilder::IMove(RegId dst, RegId src) {
  Emit({.op = IrOp::kIMove, .dst = dst, .src1 = src});
}
void ProgramBuilder::IAdd(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kIAdd, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::ISub(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kISub, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IMul(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kIMul, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IDiv(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kIDiv, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IAddImm(RegId dst, RegId a, std::int64_t imm) {
  Emit({.op = IrOp::kIAddImm, .dst = dst, .src1 = a, .imm = imm});
}
void ProgramBuilder::IAnd(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kIAnd, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IXor(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kIXor, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IShl(RegId dst, RegId a, std::int64_t sh) {
  Emit({.op = IrOp::kIShl, .dst = dst, .src1 = a, .imm = sh});
}
void ProgramBuilder::IShr(RegId dst, RegId a, std::int64_t sh) {
  Emit({.op = IrOp::kIShr, .dst = dst, .src1 = a, .imm = sh});
}
void ProgramBuilder::ICmpLt(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kICmpLt, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::FConst(RegId dst, double v) {
  Emit({.op = IrOp::kFConst, .dst = dst, .fimm = v});
}
void ProgramBuilder::FMove(RegId dst, RegId src) {
  Emit({.op = IrOp::kFMove, .dst = dst, .src1 = src});
}
void ProgramBuilder::FAdd(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kFAdd, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::FSub(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kFSub, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::FMul(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kFMul, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::FDiv(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kFDiv, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::FSqrt(RegId dst, RegId a) {
  Emit({.op = IrOp::kFSqrt, .dst = dst, .src1 = a});
}
void ProgramBuilder::FAbs(RegId dst, RegId a) {
  Emit({.op = IrOp::kFAbs, .dst = dst, .src1 = a});
}
void ProgramBuilder::FNeg(RegId dst, RegId a) {
  Emit({.op = IrOp::kFNeg, .dst = dst, .src1 = a});
}
void ProgramBuilder::FCmpLt(RegId dst, RegId a, RegId b) {
  Emit({.op = IrOp::kFCmpLt, .dst = dst, .src1 = a, .src2 = b});
}
void ProgramBuilder::IToF(RegId dst, RegId src) {
  Emit({.op = IrOp::kIToF, .dst = dst, .src1 = src});
}
void ProgramBuilder::FToI(RegId dst, RegId src) {
  Emit({.op = IrOp::kFToI, .dst = dst, .src1 = src});
}
void ProgramBuilder::LoadI(RegId dst, ArrayId arr, RegId idx,
                           std::int64_t offset) {
  Emit({.op = IrOp::kLoadI, .dst = dst, .src1 = idx, .imm = offset,
        .array = arr});
}
void ProgramBuilder::StoreI(ArrayId arr, RegId idx, RegId value,
                            std::int64_t offset) {
  Emit({.op = IrOp::kStoreI, .src1 = idx, .src2 = value, .imm = offset,
        .array = arr});
}
void ProgramBuilder::LoadF(RegId dst, ArrayId arr, RegId idx,
                           std::int64_t offset) {
  Emit({.op = IrOp::kLoadF, .dst = dst, .src1 = idx, .imm = offset,
        .array = arr});
}
void ProgramBuilder::StoreF(ArrayId arr, RegId idx, RegId value,
                            std::int64_t offset) {
  Emit({.op = IrOp::kStoreF, .src1 = idx, .src2 = value, .imm = offset,
        .array = arr});
}
void ProgramBuilder::Jump(BlockId target) {
  Emit({.op = IrOp::kJump, .target = target});
}
void ProgramBuilder::BranchIfZero(RegId cond, BlockId if_zero,
                                  BlockId otherwise) {
  Emit({.op = IrOp::kBranchIfZero, .src1 = cond, .target = if_zero,
        .target2 = otherwise});
}
void ProgramBuilder::BranchIfNeg(RegId cond, BlockId if_neg,
                                 BlockId otherwise) {
  Emit({.op = IrOp::kBranchIfNeg, .src1 = cond, .target = if_neg,
        .target2 = otherwise});
}
void ProgramBuilder::Halt() { Emit({.op = IrOp::kHalt}); }

Program ProgramBuilder::Build(std::uint64_t link_offset) {
  program_.Validate();
  program_.AssignLayout(0x40000000, 0x40100000, link_offset);
  Program out = std::move(program_);
  program_ = Program{};
  current_ = -1;
  return out;
}

}  // namespace spta::trace
