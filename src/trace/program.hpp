// A small register-machine program IR for synthesizing workloads.
//
// The paper's TVCA is C auto-generated from a control model and compiled for
// SPARC/LEON3; we cannot ship that proprietary code, so workloads here are
// written against this IR and *interpreted* to produce the dynamic
// instruction/memory trace the timing simulator consumes (see
// interpreter.hpp). The IR executes real control and data flow — loops,
// data-dependent branches, FP arithmetic on real values — so different
// inputs genuinely take different paths and produce different traces,
// which is what MBPTA's per-path analysis needs.
//
// Machine model (mirrors a 32-bit RISC like the LEON3's SPARC V8):
//   * 32 integer registers (64-bit here for convenience), 32 FP registers.
//   * Word-addressed data arrays declared per program; a layout pass assigns
//     byte base addresses (optionally shifted by a link offset, to study
//     memory-layout sensitivity of deterministic caches).
//   * 4-byte instructions; each basic block occupies a contiguous code range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace spta::trace {

/// Register index (0..31) in the integer or FP register file.
using RegId = std::uint8_t;

/// Basic-block index within a Program.
using BlockId = std::int32_t;

/// Data-object (array) index within a Program.
using ArrayId = std::uint16_t;

inline constexpr int kNumRegs = 32;

/// IR operations. Control operations may only appear as a block terminator.
enum class IrOp : std::uint8_t {
  // Integer ALU.
  kIConst,   ///< ireg[dst] = imm
  kIMove,    ///< ireg[dst] = ireg[src1]
  kIAdd,     ///< ireg[dst] = ireg[src1] + ireg[src2]
  kISub,     ///< ireg[dst] = ireg[src1] - ireg[src2]
  kIMul,     ///< ireg[dst] = ireg[src1] * ireg[src2]  (multi-cycle)
  kIDiv,     ///< ireg[dst] = ireg[src1] / ireg[src2]  (multi-cycle, src2!=0)
  kIAddImm,  ///< ireg[dst] = ireg[src1] + imm
  kIAnd,     ///< ireg[dst] = ireg[src1] & ireg[src2]
  kIXor,     ///< ireg[dst] = ireg[src1] ^ ireg[src2]
  kIShl,     ///< ireg[dst] = ireg[src1] << (imm & 63)
  kIShr,     ///< ireg[dst] = ireg[src1] >> (imm & 63) (logical)
  kICmpLt,   ///< ireg[dst] = ireg[src1] < ireg[src2] ? 1 : 0
  // Floating point.
  kFConst,   ///< freg[dst] = fimm
  kFMove,    ///< freg[dst] = freg[src1]
  kFAdd,     ///< freg[dst] = freg[src1] + freg[src2]
  kFSub,     ///< freg[dst] = freg[src1] - freg[src2]
  kFMul,     ///< freg[dst] = freg[src1] * freg[src2]
  kFDiv,     ///< freg[dst] = freg[src1] / freg[src2]  (value-dependent lat.)
  kFSqrt,    ///< freg[dst] = sqrt(|freg[src1]|)       (value-dependent lat.)
  kFAbs,     ///< freg[dst] = |freg[src1]|
  kFNeg,     ///< freg[dst] = -freg[src1]
  kFCmpLt,   ///< ireg[dst] = freg[src1] < freg[src2] ? 1 : 0
  kIToF,     ///< freg[dst] = double(ireg[src1])
  kFToI,     ///< ireg[dst] = int64(freg[src1])
  // Memory. Effective element index = ireg[src1] + imm; byte address =
  // array base + index * element size. Integer arrays hold 32-bit words,
  // FP arrays hold 64-bit doubles.
  kLoadI,    ///< ireg[dst] = intarray[array][idx]
  kStoreI,   ///< intarray[array][idx] = ireg[src2]
  kLoadF,    ///< freg[dst] = fparray[array][idx]
  kStoreF,   ///< fparray[array][idx] = freg[src2]
  // Control (block terminators).
  kJump,          ///< goto target
  kBranchIfZero,  ///< ireg[src1] == 0 ? goto target : goto target2
  kBranchIfNeg,   ///< ireg[src1] <  0 ? goto target : goto target2
  kHalt,          ///< end of program
};

/// True for the four terminator operations.
bool IsControl(IrOp op);

/// One IR instruction. Unused fields are left at their defaults.
struct IrInst {
  IrOp op = IrOp::kHalt;
  RegId dst = 0;
  RegId src1 = 0;
  RegId src2 = 0;
  std::int64_t imm = 0;
  double fimm = 0.0;
  ArrayId array = 0;
  BlockId target = -1;   ///< Taken/jump successor.
  BlockId target2 = -1;  ///< Fall-through successor (branches only).
};

/// A data object: a named array of 32-bit ints or 64-bit doubles.
struct DataObject {
  std::string name;
  std::size_t elem_count = 0;
  bool is_fp = false;       ///< true: doubles (8B); false: int32 words (4B).
  Address base = 0;         ///< Byte base address (set by AssignLayout).

  std::size_t elem_size() const { return is_fp ? 8 : 4; }
  std::size_t byte_size() const { return elem_count * elem_size(); }
};

/// A straight-line code region ending in one control instruction.
struct BasicBlock {
  std::vector<IrInst> insts;
  Address code_base = 0;  ///< Byte address of the first instruction.
};

/// A complete program: blocks + data objects + entry point.
struct Program {
  std::string name;
  std::vector<BasicBlock> blocks;
  std::vector<DataObject> arrays;
  BlockId entry = 0;

  /// Assigns code addresses (blocks laid out contiguously from `code_base`,
  /// 4 bytes per instruction) and data addresses (arrays laid out from
  /// `data_base + link_offset`, 64-byte aligned). The link offset models
  /// relinking the binary at a different address. When `layout_seed` is
  /// nonzero, a deterministic pseudo-random 0..4032-byte gap is inserted
  /// before every array — modeling a different link map (section order /
  /// padding), which changes the *relative* cache alignment of the data
  /// objects. Relative alignment is what decides conflict misses on a
  /// deterministic cache and is irrelevant under random placement.
  void AssignLayout(Address code_base = 0x40000000,
                    Address data_base = 0x40100000,
                    std::uint64_t link_offset = 0,
                    std::uint64_t layout_seed = 0);

  /// Checks structural well-formedness (every block terminated exactly once,
  /// valid targets/registers/arrays, entry in range). Aborts via SPTA_CHECK
  /// with a precise message on violation; returns normally when valid.
  void Validate() const;

  /// Total static instruction count across blocks.
  std::size_t StaticInstructionCount() const;
};

/// Convenience construction API: keeps a current block and exposes one
/// emit method per IR operation, so workload definitions read like assembly.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  /// Declares an int32 array of `elems` elements; returns its id.
  ArrayId AddIntArray(std::string name, std::size_t elems);
  /// Declares a double array of `elems` elements; returns its id.
  ArrayId AddFpArray(std::string name, std::size_t elems);

  /// Creates a new (empty) block and returns its id. Does not switch to it.
  BlockId NewBlock();
  /// Directs subsequent Emit* calls to `block`.
  void SwitchTo(BlockId block);
  /// Sets the entry block.
  void SetEntry(BlockId block);
  BlockId current() const { return current_; }

  // One emitter per operation; all append to the current block.
  void IConst(RegId dst, std::int64_t v);
  void IMove(RegId dst, RegId src);
  void IAdd(RegId dst, RegId a, RegId b);
  void ISub(RegId dst, RegId a, RegId b);
  void IMul(RegId dst, RegId a, RegId b);
  void IDiv(RegId dst, RegId a, RegId b);
  void IAddImm(RegId dst, RegId a, std::int64_t imm);
  void IAnd(RegId dst, RegId a, RegId b);
  void IXor(RegId dst, RegId a, RegId b);
  void IShl(RegId dst, RegId a, std::int64_t sh);
  void IShr(RegId dst, RegId a, std::int64_t sh);
  void ICmpLt(RegId dst, RegId a, RegId b);
  void FConst(RegId dst, double v);
  void FMove(RegId dst, RegId src);
  void FAdd(RegId dst, RegId a, RegId b);
  void FSub(RegId dst, RegId a, RegId b);
  void FMul(RegId dst, RegId a, RegId b);
  void FDiv(RegId dst, RegId a, RegId b);
  void FSqrt(RegId dst, RegId a);
  void FAbs(RegId dst, RegId a);
  void FNeg(RegId dst, RegId a);
  void FCmpLt(RegId dst, RegId a, RegId b);
  void IToF(RegId dst, RegId src);
  void FToI(RegId dst, RegId src);
  void LoadI(RegId dst, ArrayId arr, RegId idx, std::int64_t offset = 0);
  void StoreI(ArrayId arr, RegId idx, RegId value, std::int64_t offset = 0);
  void LoadF(RegId dst, ArrayId arr, RegId idx, std::int64_t offset = 0);
  void StoreF(ArrayId arr, RegId idx, RegId value, std::int64_t offset = 0);
  void Jump(BlockId target);
  void BranchIfZero(RegId cond, BlockId if_zero, BlockId otherwise);
  void BranchIfNeg(RegId cond, BlockId if_neg, BlockId otherwise);
  void Halt();

  /// Finalizes: validates, assigns the default layout, and returns the
  /// program (the builder is left empty).
  Program Build(std::uint64_t link_offset = 0);

 private:
  void Emit(IrInst inst);

  Program program_;
  BlockId current_ = -1;
};

}  // namespace spta::trace
