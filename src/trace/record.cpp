#include "trace/record.hpp"

namespace spta::trace {

const char* ToString(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu:
      return "alu";
    case OpClass::kIntMul:
      return "imul";
    case OpClass::kIntDiv:
      return "idiv";
    case OpClass::kLoad:
      return "ld";
    case OpClass::kStore:
      return "st";
    case OpClass::kBranch:
      return "br";
    case OpClass::kFpAdd:
      return "fadd";
    case OpClass::kFpMul:
      return "fmul";
    case OpClass::kFpDiv:
      return "fdiv";
    case OpClass::kFpSqrt:
      return "fsqrt";
    case OpClass::kNop:
      return "nop";
  }
  return "?";
}

bool IsJitteryFpu(OpClass op) {
  return op == OpClass::kFpDiv || op == OpClass::kFpSqrt;
}

}  // namespace spta::trace
