// Dynamic instruction trace records.
//
// The timing simulator is trace-driven: workloads are lowered to a stream of
// TraceRecords (one per retired instruction) which flow through the cache /
// TLB / FPU / memory timing models. A record carries exactly the information
// those models need — fetch address, operation class, effective data address
// and the FPU operand class that drives value-dependent FDIV/FSQRT latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace spta::trace {

/// Classification of a retired instruction for timing purposes.
enum class OpClass : std::uint8_t {
  kIntAlu,   ///< Single-cycle integer operation.
  kIntMul,   ///< Integer multiply (fixed multi-cycle).
  kIntDiv,   ///< Integer divide (fixed multi-cycle).
  kLoad,     ///< Memory load (data cache access).
  kStore,    ///< Memory store (write-through, store buffer).
  kBranch,   ///< Control transfer.
  kFpAdd,    ///< FP add/sub/convert (fixed latency).
  kFpMul,    ///< FP multiply (fixed latency).
  kFpDiv,    ///< FP divide — value-dependent latency (jittery in DET mode).
  kFpSqrt,   ///< FP square root — value-dependent latency.
  kNop,      ///< Pipeline bubble / no-op.
};

/// Short mnemonic for an op class ("alu", "ld", "fdiv", ...).
const char* ToString(OpClass op);

/// True for the two value-dependent FPU operations.
bool IsJitteryFpu(OpClass op);

/// Register-operand encoding for dependence (hazard) modeling: low 6 bits
/// hold the register index, kFpRegFlag marks the FP file, kNoReg = none.
/// Synthetic traces may leave everything at kNoReg — timing models then
/// simply see no dependences.
inline constexpr std::uint8_t kNoReg = 0xff;
inline constexpr std::uint8_t kFpRegFlag = 0x40;

/// One retired instruction.
struct TraceRecord {
  Address pc = 0;          ///< Instruction fetch address.
  OpClass op = OpClass::kNop;
  Address mem_addr = 0;    ///< Effective address (loads/stores only).
  /// Operand "difficulty" class for FDIV/FSQRT, in [0, kFpuOperandClasses):
  /// higher classes take more cycles on a value-dependent FPU.
  std::uint8_t fpu_operand_class = 0;
  bool branch_taken = false;  ///< Valid for kBranch.
  /// Destination / source registers (kNoReg when absent), used for the
  /// load-use hazard model (LEON3's load delay slot).
  std::uint8_t dst_reg = kNoReg;
  std::uint8_t src1_reg = kNoReg;
  std::uint8_t src2_reg = kNoReg;

  /// True when this record reads register `reg` (encoded form).
  bool Reads(std::uint8_t reg) const {
    return reg != kNoReg && (src1_reg == reg || src2_reg == reg);
  }

  /// Field-wise equality (kernel mining verifies candidate repetitions by
  /// comparing record sequences).
  bool operator==(const TraceRecord& other) const = default;
};

/// Number of distinct FPU operand-difficulty classes the timing model knows.
inline constexpr std::uint8_t kFpuOperandClasses = 4;

/// A dynamic trace: the retired-instruction stream of one program run,
/// plus the path signature used by MBPTA per-path analysis.
struct Trace {
  std::vector<TraceRecord> records;
  /// Hash of the sequence of basic blocks executed: runs that follow the
  /// same control-flow path share a signature.
  std::uint64_t path_signature = 0;
  /// Total retired instructions (== records.size(), kept for clarity).
  std::size_t instruction_count() const { return records.size(); }
};

}  // namespace spta::trace
