#include "trace/synthetic.hpp"

#include "common/assert.hpp"
#include "prng/xoshiro.hpp"

namespace spta::trace {

Trace SequentialTrace(Address base, std::size_t count, std::size_t stride,
                      OpClass op) {
  SPTA_REQUIRE(op == OpClass::kLoad || op == OpClass::kStore);
  Trace t;
  t.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.pc = 0x40000000 + 4 * (i % 256);
    r.op = op;
    r.mem_addr = base + i * stride;
    t.records.push_back(r);
  }
  t.path_signature = 1;
  return t;
}

Trace UniformRandomTrace(Address base, std::size_t region_bytes,
                         std::size_t count, std::uint64_t seed) {
  SPTA_REQUIRE(region_bytes >= 4);
  prng::Xoshiro128pp rng(seed);
  const auto words = static_cast<std::uint32_t>(region_bytes / 4);
  Trace t;
  t.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.pc = 0x40000000 + 4 * (i % 256);
    r.op = OpClass::kLoad;
    r.mem_addr = base + 4ULL * rng.UniformBelow(words);
    t.records.push_back(r);
  }
  t.path_signature = 2;
  return t;
}

Trace LoopingTrace(Address base, std::size_t footprint_bytes,
                   std::size_t stride, std::size_t iterations) {
  SPTA_REQUIRE(stride > 0 && footprint_bytes >= stride);
  Trace t;
  const std::size_t per_pass = footprint_bytes / stride;
  t.records.reserve(per_pass * iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < per_pass; ++i) {
      TraceRecord r;
      r.pc = 0x40000000 + 4 * (i % 64);
      r.op = OpClass::kLoad;
      r.mem_addr = base + i * stride;
      t.records.push_back(r);
    }
  }
  t.path_signature = 3;
  return t;
}

Trace BlendTrace(const BlendSpec& spec, std::uint64_t seed) {
  SPTA_REQUIRE(spec.load_pm + spec.store_pm + spec.branch_pm + spec.fp_pm <=
               1000);
  SPTA_REQUIRE(spec.code_bytes >= 4 && spec.data_bytes >= 4);
  prng::Xoshiro128pp rng(seed);
  const auto code_words = static_cast<std::uint32_t>(spec.code_bytes / 4);
  const auto data_words = static_cast<std::uint32_t>(spec.data_bytes / 4);
  Trace t;
  t.records.reserve(spec.count);
  std::uint32_t pc_word = 0;
  for (std::size_t i = 0; i < spec.count; ++i) {
    TraceRecord r;
    r.pc = spec.code_base + 4ULL * pc_word;
    const unsigned roll = rng.UniformBelow(1000);
    if (roll < spec.load_pm) {
      r.op = OpClass::kLoad;
      r.mem_addr = spec.data_base + 4ULL * rng.UniformBelow(data_words);
    } else if (roll < spec.load_pm + spec.store_pm) {
      r.op = OpClass::kStore;
      r.mem_addr = spec.data_base + 4ULL * rng.UniformBelow(data_words);
    } else if (roll < spec.load_pm + spec.store_pm + spec.branch_pm) {
      r.op = OpClass::kBranch;
      r.branch_taken = (rng.Next() & 1u) != 0;
      if (r.branch_taken) {
        pc_word = rng.UniformBelow(code_words);
        t.records.push_back(r);
        continue;
      }
    } else if (roll <
               spec.load_pm + spec.store_pm + spec.branch_pm + spec.fp_pm) {
      // Mostly pipelined FP; occasionally the jittery operations.
      const unsigned fp_roll = rng.UniformBelow(10);
      if (fp_roll == 0) {
        r.op = OpClass::kFpDiv;
        r.fpu_operand_class =
            static_cast<std::uint8_t>(rng.UniformBelow(kFpuOperandClasses));
      } else if (fp_roll == 1) {
        r.op = OpClass::kFpSqrt;
        r.fpu_operand_class =
            static_cast<std::uint8_t>(rng.UniformBelow(kFpuOperandClasses));
      } else if (fp_roll < 6) {
        r.op = OpClass::kFpAdd;
      } else {
        r.op = OpClass::kFpMul;
      }
    } else {
      r.op = OpClass::kIntAlu;
    }
    pc_word = (pc_word + 1) % code_words;
    t.records.push_back(r);
  }
  t.path_signature = 4;
  return t;
}

}  // namespace spta::trace
