// Synthetic raw-trace generators.
//
// Cache/TLB/bus unit tests and several ablation benches need address streams
// with a controlled structure, without going through the program IR. All
// generators are deterministic in their arguments (and seed).
#pragma once

#include <cstdint>

#include "trace/record.hpp"

namespace spta::trace {

/// `count` loads walking `base, base+stride, base+2*stride, ...`.
Trace SequentialTrace(Address base, std::size_t count, std::size_t stride,
                      OpClass op = OpClass::kLoad);

/// `count` loads at uniformly random word-aligned addresses within
/// [base, base+region_bytes).
Trace UniformRandomTrace(Address base, std::size_t region_bytes,
                         std::size_t count, std::uint64_t seed);

/// `iterations` passes over a working set of `footprint_bytes`, accessed
/// with `stride`-byte steps — a loop nest's classic reuse pattern.
Trace LoopingTrace(Address base, std::size_t footprint_bytes,
                   std::size_t stride, std::size_t iterations);

/// A blend resembling compiled control code: `count` instructions with the
/// given per-mille rates of loads/stores/branches/FP ops (remainder integer
/// ALU), instruction fetch walking a code region of `code_bytes`, data
/// accesses uniform over `data_bytes`.
struct BlendSpec {
  std::size_t count = 10000;
  unsigned load_pm = 250;    ///< loads per mille
  unsigned store_pm = 100;   ///< stores per mille
  unsigned branch_pm = 150;  ///< branches per mille
  unsigned fp_pm = 50;       ///< FP (incl. some fdiv/fsqrt) per mille
  std::size_t code_bytes = 8192;
  std::size_t data_bytes = 32768;
  Address code_base = 0x40000000;
  Address data_base = 0x40100000;
};
Trace BlendTrace(const BlendSpec& spec, std::uint64_t seed);

}  // namespace spta::trace
