#include "trace/trace_io.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace spta::trace {
namespace {

// All scalars little-endian, fixed width; one record = 24 bytes.
template <typename T>
void Put(std::ostream& out, T value) {
  unsigned char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(
        static_cast<std::uint64_t>(value) >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

// Non-aborting read: false on a short stream (typed-error path).
template <typename T>
bool TryGet(std::istream& in, T* value) {
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof(T));
  if (!in.good()) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  *value = static_cast<T>(v);
  return true;
}

template <typename T>
T Get(std::istream& in) {
  T value{};
  SPTA_REQUIRE_MSG(TryGet(in, &value), "truncated trace stream");
  return value;
}

}  // namespace

void WriteTrace(std::ostream& out, const Trace& t) {
  Put<std::uint32_t>(out, kTraceMagic);
  Put<std::uint32_t>(out, kTraceVersion);
  Put<std::uint64_t>(out, t.path_signature);
  Put<std::uint64_t>(out, t.records.size());
  for (const auto& r : t.records) {
    Put<std::uint64_t>(out, r.pc);
    Put<std::uint64_t>(out, r.mem_addr);
    Put<std::uint8_t>(out, static_cast<std::uint8_t>(r.op));
    Put<std::uint8_t>(out, r.fpu_operand_class);
    Put<std::uint8_t>(out, r.branch_taken ? 1 : 0);
    Put<std::uint8_t>(out, r.dst_reg);
    Put<std::uint8_t>(out, r.src1_reg);
    Put<std::uint8_t>(out, r.src2_reg);
  }
  SPTA_CHECK_MSG(out.good(), "trace write failed");
}

bool TryReadTrace(std::istream& in, Trace* out, std::string* error) {
  out->records.clear();
  out->path_signature = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!TryGet(in, &magic)) {
    *error = "truncated trace stream (missing header)";
    return false;
  }
  if (magic != kTraceMagic) {
    *error = "not a SpacePTA trace (bad magic)";
    return false;
  }
  if (!TryGet(in, &version)) {
    *error = "truncated trace stream (missing version)";
    return false;
  }
  if (version != kTraceVersion) {
    *error = "unsupported trace version " + std::to_string(version);
    return false;
  }
  std::uint64_t count = 0;
  if (!TryGet(in, &out->path_signature) || !TryGet(in, &count)) {
    *error = "truncated trace stream (missing header)";
    return false;
  }
  if (count > (1ULL << 32)) {
    *error = "implausible record count " + std::to_string(count);
    return false;
  }
  // Never trust `count` with an up-front allocation: a corrupt header
  // within the plausibility bound could still demand gigabytes. Reserve a
  // bounded amount and let growth track the records that actually arrive —
  // a lying count is then caught as truncation, not bad_alloc.
  out->records.reserve(static_cast<std::size_t>(
      count < (1ULL << 20) ? count : (1ULL << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    unsigned char buf[6];
    TraceRecord r;
    if (!TryGet(in, &r.pc) || !TryGet(in, &r.mem_addr) ||
        !in.read(reinterpret_cast<char*>(buf), sizeof(buf)).good()) {
      *error = "truncated trace stream at record " + std::to_string(i) +
               " of " + std::to_string(count);
      return false;
    }
    if (buf[0] > static_cast<std::uint8_t>(OpClass::kNop)) {
      *error = "record " + std::to_string(i) + ": corrupt op class " +
               std::to_string(static_cast<int>(buf[0]));
      return false;
    }
    r.op = static_cast<OpClass>(buf[0]);
    if (buf[1] >= kFpuOperandClasses) {
      *error = "record " + std::to_string(i) +
               ": corrupt FPU operand class " +
               std::to_string(static_cast<int>(buf[1]));
      return false;
    }
    r.fpu_operand_class = buf[1];
    r.branch_taken = buf[2] != 0;
    r.dst_reg = buf[3];
    r.src1_reg = buf[4];
    r.src2_reg = buf[5];
    out->records.push_back(r);
  }
  return true;
}

Trace ReadTrace(std::istream& in) {
  Trace t;
  std::string error;
  SPTA_REQUIRE_MSG(TryReadTrace(in, &t, &error), error);
  return t;
}

void SaveTraceFile(const std::string& path, const Trace& t) {
  std::ofstream out(path, std::ios::binary);
  SPTA_REQUIRE_MSG(out.good(), "cannot open '" << path << "' for writing");
  WriteTrace(out, t);
}

Trace LoadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPTA_REQUIRE_MSG(in.good(), "cannot open '" << path << "'");
  return ReadTrace(in);
}

bool TryLoadTraceFile(const std::string& path, Trace* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  if (!TryReadTrace(in, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace spta::trace
