#include "trace/trace_io.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace spta::trace {
namespace {

// All scalars little-endian, fixed width; one record = 24 bytes.
template <typename T>
void Put(std::ostream& out, T value) {
  unsigned char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(
        static_cast<std::uint64_t>(value) >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

template <typename T>
T Get(std::istream& in) {
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof(T));
  SPTA_REQUIRE_MSG(in.good(), "truncated trace stream");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

void WriteTrace(std::ostream& out, const Trace& t) {
  Put<std::uint32_t>(out, kTraceMagic);
  Put<std::uint32_t>(out, kTraceVersion);
  Put<std::uint64_t>(out, t.path_signature);
  Put<std::uint64_t>(out, t.records.size());
  for (const auto& r : t.records) {
    Put<std::uint64_t>(out, r.pc);
    Put<std::uint64_t>(out, r.mem_addr);
    Put<std::uint8_t>(out, static_cast<std::uint8_t>(r.op));
    Put<std::uint8_t>(out, r.fpu_operand_class);
    Put<std::uint8_t>(out, r.branch_taken ? 1 : 0);
    Put<std::uint8_t>(out, r.dst_reg);
    Put<std::uint8_t>(out, r.src1_reg);
    Put<std::uint8_t>(out, r.src2_reg);
  }
  SPTA_CHECK_MSG(out.good(), "trace write failed");
}

Trace ReadTrace(std::istream& in) {
  SPTA_REQUIRE_MSG(Get<std::uint32_t>(in) == kTraceMagic,
                   "not a SpacePTA trace (bad magic)");
  SPTA_REQUIRE_MSG(Get<std::uint32_t>(in) == kTraceVersion,
                   "unsupported trace version");
  Trace t;
  t.path_signature = Get<std::uint64_t>(in);
  const std::uint64_t count = Get<std::uint64_t>(in);
  SPTA_REQUIRE_MSG(count <= (1ULL << 32), "implausible record count");
  t.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.pc = Get<std::uint64_t>(in);
    r.mem_addr = Get<std::uint64_t>(in);
    const auto op = Get<std::uint8_t>(in);
    SPTA_REQUIRE_MSG(op <= static_cast<std::uint8_t>(OpClass::kNop),
                     "corrupt op class " << static_cast<int>(op));
    r.op = static_cast<OpClass>(op);
    r.fpu_operand_class = Get<std::uint8_t>(in);
    SPTA_REQUIRE(r.fpu_operand_class < kFpuOperandClasses);
    r.branch_taken = Get<std::uint8_t>(in) != 0;
    r.dst_reg = Get<std::uint8_t>(in);
    r.src1_reg = Get<std::uint8_t>(in);
    r.src2_reg = Get<std::uint8_t>(in);
    t.records.push_back(r);
  }
  return t;
}

void SaveTraceFile(const std::string& path, const Trace& t) {
  std::ofstream out(path, std::ios::binary);
  SPTA_REQUIRE_MSG(out.good(), "cannot open '" << path << "' for writing");
  WriteTrace(out, t);
}

Trace LoadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPTA_REQUIRE_MSG(in.good(), "cannot open '" << path << "'");
  return ReadTrace(in);
}

}  // namespace spta::trace
