// Trace serialization: a compact, versioned binary format.
//
// Lets a trace be recorded once (an expensive interpretation or an
// externally captured instruction stream) and re-simulated many times
// under different platform configurations — the record/replay workflow of
// trace-driven simulators. The format is little-endian, self-describing
// (magic + version + record count) and validated on load.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "trace/record.hpp"

namespace spta::trace {

/// Format identity (bumped on layout changes).
inline constexpr std::uint32_t kTraceMagic = 0x53505441;  // "SPTA"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes `t` to `out`. The stream must be binary-clean.
void WriteTrace(std::ostream& out, const Trace& t);

/// Non-aborting reader for untrusted input (the spta_serve ingestion path
/// and CLI-facing file loads; mirrors analysis::TryReadSamplesCsv):
/// returns false and describes the defect in `error` — bad magic,
/// unsupported version, implausible record count, out-of-range field or
/// truncation — instead of taking the process down. On failure `out` is
/// left in an unspecified (but valid) state.
bool TryReadTrace(std::istream& in, Trace* out, std::string* error);

/// Reads a trace written by WriteTrace. Aborts (precondition) on a bad
/// magic/version or a truncated stream; trusted-input wrapper around
/// TryReadTrace.
Trace ReadTrace(std::istream& in);

/// Convenience file wrappers; abort on I/O failure.
void SaveTraceFile(const std::string& path, const Trace& t);
Trace LoadTraceFile(const std::string& path);

/// Non-aborting file load: open failures and format defects become
/// false + `error`.
bool TryLoadTraceFile(const std::string& path, Trace* out,
                      std::string* error);

}  // namespace spta::trace
