// Trace serialization: a compact, versioned binary format.
//
// Lets a trace be recorded once (an expensive interpretation or an
// externally captured instruction stream) and re-simulated many times
// under different platform configurations — the record/replay workflow of
// trace-driven simulators. The format is little-endian, self-describing
// (magic + version + record count) and validated on load.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "trace/record.hpp"

namespace spta::trace {

/// Format identity (bumped on layout changes).
inline constexpr std::uint32_t kTraceMagic = 0x53505441;  // "SPTA"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes `t` to `out`. The stream must be binary-clean.
void WriteTrace(std::ostream& out, const Trace& t);

/// Reads a trace written by WriteTrace. Aborts (precondition) on a bad
/// magic/version or a truncated stream.
Trace ReadTrace(std::istream& in);

/// Convenience file wrappers; abort on I/O failure.
void SaveTraceFile(const std::string& path, const Trace& t);
Trace LoadTraceFile(const std::string& path);

}  // namespace spta::trace
