// Tests for the Nelder-Mead optimizer, GEV maximum likelihood, and the
// reuse-distance profiler (including cross-validation against the cache
// simulator).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reuse.hpp"
#include "evt/gev.hpp"
#include "prng/xoshiro.hpp"
#include "sim/cache.hpp"
#include "stats/optimize.hpp"
#include "trace/synthetic.hpp"

namespace spta {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic) {
  const auto r = stats::NelderMead(
      [](const std::vector<double>& p) {
        return (p[0] - 3.0) * (p[0] - 3.0) + 2.0 * (p[1] + 1.0) * (p[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-7);
}

TEST(NelderMeadTest, MinimizesRosenbrock) {
  const auto r = stats::NelderMead(
      [](const std::vector<double>& p) {
        const double a = 1.0 - p[0];
        const double b = p[1] - p[0] * p[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, {0.1, 0.1}, 5000);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, HandlesInfeasibleRegions) {
  // Objective infinite for x < 0: minimum at the boundary-near point 0.5.
  const auto r = stats::NelderMead(
      [](const std::vector<double>& p) {
        if (p[0] < 0.0) return std::numeric_limits<double>::infinity();
        return (p[0] - 0.5) * (p[0] - 0.5);
      },
      {2.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(NelderMeadTest, OneDimensional) {
  const auto r = stats::NelderMead(
      [](const std::vector<double>& p) { return std::cos(p[0]); }, {3.0});
  EXPECT_NEAR(r.x[0], M_PI, 1e-4);
}

std::vector<double> GevSample(const evt::GevDist& d, std::size_t n,
                              std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = d.Quantile(std::min(std::max(rng.UniformUnit(), 1e-12), 1.0 - 1e-12));
  }
  return xs;
}

TEST(GevMleTest, RecoversParameters) {
  const evt::GevDist truth{100.0, 8.0, 0.15};
  const auto xs = GevSample(truth, 20000, 31);
  const auto fit = evt::FitGevMle(xs);
  EXPECT_NEAR(fit.mu, truth.mu, 0.5);
  EXPECT_NEAR(fit.sigma, truth.sigma, 0.4);
  EXPECT_NEAR(fit.xi, truth.xi, 0.03);
}

TEST(GevMleTest, NeverWorseThanPwm) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const evt::GevDist truth{50.0, 5.0, -0.2};
    const auto xs = GevSample(truth, 2000, 100 + seed);
    const auto pwm = evt::FitGevPwm(xs);
    const auto mle = evt::FitGevMle(xs);
    EXPECT_GE(mle.LogLikelihood(xs), pwm.LogLikelihood(xs) - 1e-9);
  }
}

TEST(GevMleTest, LikelihoodRejectsOutOfSupport) {
  const evt::GevDist heavy{0.0, 1.0, 0.5};  // support x > -2
  const std::vector<double> bad = {-5.0, 1.0};
  EXPECT_EQ(heavy.LogLikelihood(bad),
            -std::numeric_limits<double>::infinity());
}

TEST(ReuseProfileTest, SequentialStreamIsAllCold) {
  const auto t = trace::SequentialTrace(0x1000, 100, 32);
  const analysis::ReuseProfile profile(t, 32);
  EXPECT_EQ(profile.accesses(), 100u);
  EXPECT_EQ(profile.cold_misses(), 100u);
  EXPECT_EQ(profile.PredictedLruMisses(4), 100u);
}

TEST(ReuseProfileTest, ImmediateReuseHasDistanceZero) {
  // Two back-to-back accesses to the same line.
  trace::Trace t;
  for (int i = 0; i < 2; ++i) {
    trace::TraceRecord r;
    r.op = trace::OpClass::kLoad;
    r.mem_addr = 0x1000;
    t.records.push_back(r);
  }
  const analysis::ReuseProfile profile(t, 32);
  EXPECT_EQ(profile.cold_misses(), 1u);
  EXPECT_EQ(profile.CountAtDistance(0), 1u);
}

TEST(ReuseProfileTest, LoopingTraceDistancesMatchFootprint) {
  // 16 lines looped 4 times: each reuse has distance 15.
  const auto t = trace::LoopingTrace(0x2000, 16 * 32, 32, 4);
  const analysis::ReuseProfile profile(t, 32);
  EXPECT_EQ(profile.cold_misses(), 16u);
  EXPECT_EQ(profile.CountAtDistance(15), 3u * 16u);
  // A 16-line LRU cache captures all reuse; a 15-line one captures none.
  EXPECT_EQ(profile.PredictedLruMisses(16), 16u);
  EXPECT_EQ(profile.PredictedLruMisses(15), 16u + 48u);
  EXPECT_EQ(profile.WorkingSetLines(0.7), 16u);
}

TEST(ReuseProfileTest, PredictsFullyAssociativeLruSimulator) {
  // Cross-validation: a fully associative LRU cache in the simulator must
  // miss exactly as often as the stack-distance model predicts.
  trace::BlendSpec spec;
  spec.count = 20000;
  spec.data_bytes = 16384;
  const auto t = trace::BlendTrace(spec, 17);
  const analysis::ReuseProfile profile(t, 32);

  // Fully associative: 1 set x N ways.
  constexpr std::uint32_t kLines = 64;
  sim::CacheConfig cfg{kLines * 32, 32, kLines, sim::Placement::kModulo,
                       sim::Replacement::kLru};
  sim::Cache cache(cfg, 1);
  for (const auto& rec : t.records) {
    if (rec.op == trace::OpClass::kLoad ||
        rec.op == trace::OpClass::kStore) {
      cache.Access(rec.mem_addr, /*allocate_on_miss=*/true);
    }
  }
  EXPECT_EQ(cache.stats().misses, profile.PredictedLruMisses(kLines));
}

TEST(ReuseProfileTest, IgnoresNonMemoryRecords) {
  trace::BlendSpec spec;
  spec.count = 5000;
  const auto t = trace::BlendTrace(spec, 3);
  const analysis::ReuseProfile profile(t, 32);
  std::uint64_t mem = 0;
  for (const auto& r : t.records) {
    mem += r.op == trace::OpClass::kLoad || r.op == trace::OpClass::kStore;
  }
  EXPECT_EQ(profile.accesses(), mem);
}

}  // namespace
}  // namespace spta
