// Tests for the analysis module: campaign mechanics, sample extraction,
// and the pWCET bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "evt/gumbel.hpp"
#include "mbpta/confidence.hpp"
#include "prng/xoshiro.hpp"
#include "sim/platform.hpp"
#include "trace/synthetic.hpp"

namespace spta {
namespace {

apps::TvcaConfig TinyTvca() {
  apps::TvcaConfig cfg;
  cfg.sensor_channels = 4;
  cfg.samples_per_frame = 6;
  cfg.fir_taps = 4;
  cfg.state_dim = 8;
  cfg.integrator_steps = 4;
  cfg.control_iterations = 1;
  cfg.straightline_instructions = 100;
  return cfg;
}

TEST(CampaignTest, FixedTraceCampaignSizeAndDeterminism) {
  const trace::Trace t = trace::BlendTrace({}, 1);
  sim::Platform p(sim::RandLeon3Config(), 1);
  const auto a = analysis::RunFixedTraceCampaign(p, t, 20, 7);
  ASSERT_EQ(a.size(), 20u);
  sim::Platform p2(sim::RandLeon3Config(), 99);  // master seed immaterial
  const auto b = analysis::RunFixedTraceCampaign(p2, t, 20, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycles, b[i].cycles);
  }
}

TEST(CampaignTest, FixedTraceCampaignSeedsDiffer) {
  const trace::Trace t = trace::BlendTrace({}, 1);
  sim::Platform p(sim::RandLeon3Config(), 1);
  const auto a = analysis::RunFixedTraceCampaign(p, t, 20, 7);
  const auto b = analysis::RunFixedTraceCampaign(p, t, 20, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].cycles != b[i].cycles;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CampaignTest, TvcaCampaignFreshInputsGiveDistinctInstructionCounts) {
  const apps::TvcaApp app(TinyTvca());
  analysis::CampaignConfig cfg;
  cfg.runs = 30;
  sim::Platform p(sim::RandLeon3Config(), 1);
  const auto samples = analysis::RunTvcaCampaign(p, app, cfg);
  std::set<std::uint64_t> instr;
  for (const auto& s : samples) instr.insert(s.detail.instructions);
  EXPECT_GT(instr.size(), 3u);  // multiple paths / input-dependent lengths
}

TEST(CampaignTest, DistinctScenariosCycleDeterministically) {
  const apps::TvcaApp app(TinyTvca());
  analysis::CampaignConfig cfg;
  cfg.runs = 12;
  cfg.distinct_scenarios = 3;
  sim::Platform p(sim::DetLeon3Config(), 1);
  const auto samples = analysis::RunTvcaCampaign(p, app, cfg);
  // On DET, identical scenario => identical cycles.
  for (std::size_t i = 0; i + 3 < samples.size(); ++i) {
    EXPECT_EQ(samples[i].cycles, samples[i + 3].cycles) << i;
  }
}

TEST(CampaignTest, ExtractTimesPreservesOrder) {
  std::vector<analysis::RunSample> samples(3);
  samples[0].cycles = 3.0;
  samples[1].cycles = 1.0;
  samples[2].cycles = 2.0;
  const auto times = analysis::ExtractTimes(samples);
  EXPECT_EQ(times, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(CampaignTest, ToPathObservationsKeepsIds) {
  std::vector<analysis::RunSample> samples(2);
  samples[0].cycles = 10.0;
  samples[0].path_id = 4;
  samples[1].cycles = 20.0;
  samples[1].path_id = 6;
  const auto obs = analysis::ToPathObservations(samples);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].path_id, 4u);
  EXPECT_DOUBLE_EQ(obs[1].time, 20.0);
}

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  evt::GumbelDist d{mu, beta};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

TEST(ConfidenceTest, CiBracketsPointEstimate) {
  const auto xs = GumbelSample(1000.0, 25.0, 3000, 5);
  const auto ci = mbpta::BootstrapPwcetCi(xs, 1e-9, 100, 400, 0.95, 3);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.RelativeWidth(), 0.0);
  EXPECT_LT(ci.RelativeWidth(), 0.25);
  EXPECT_DOUBLE_EQ(ci.exceedance_prob, 1e-9);
}

TEST(ConfidenceTest, DeterministicPerSeed) {
  const auto xs = GumbelSample(1000.0, 25.0, 2000, 6);
  const auto a = mbpta::BootstrapPwcetCi(xs, 1e-12, 50, 200, 0.9, 11);
  const auto b = mbpta::BootstrapPwcetCi(xs, 1e-12, 50, 200, 0.9, 11);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(ConfidenceTest, MoreDataTightensInterval) {
  const auto small = GumbelSample(1000.0, 25.0, 600, 7);
  const auto large = GumbelSample(1000.0, 25.0, 6000, 7);
  const auto ci_small =
      mbpta::BootstrapPwcetCi(small, 1e-9, 20, 400, 0.95, 3);
  const auto ci_large =
      mbpta::BootstrapPwcetCi(large, 1e-9, 20, 400, 0.95, 3);
  EXPECT_LT(ci_large.RelativeWidth(), ci_small.RelativeWidth());
}

TEST(ConfidenceTest, CoversTrueQuantileUsually) {
  // Coverage spot check: for the known generating distribution the CI at
  // 95% should contain the true quantile in the large majority of trials.
  const evt::GumbelDist truth{1000.0, 25.0};
  int covered = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto xs =
        GumbelSample(truth.mu, truth.beta, 3000, 100 + t);
    const auto ci = mbpta::BootstrapPwcetCi(xs, 1e-6, 100, 300, 0.95,
                                            static_cast<std::uint64_t>(t));
    // True per-run quantile for exceedance 1e-6.
    const double true_q = truth.Quantile(1.0 - 1e-6);
    if (true_q >= ci.lower && true_q <= ci.upper) ++covered;
  }
  EXPECT_GE(covered, 15) << "coverage collapsed";
}

}  // namespace
}  // namespace spta
