// Tests for the workload layer: kernels compute correct results, the frame
// composer and schedulers behave, and the TVCA model is deterministic with
// meaningful paths.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/rta.hpp"
#include "apps/scheduler.hpp"
#include "apps/tvca.hpp"
#include "common/hash.hpp"
#include "trace/interpreter.hpp"
#include "trace/synthetic.hpp"

namespace spta::apps {
namespace {

TEST(KernelsTest, MatMulComputesProduct) {
  const int n = 4;
  const trace::Program p = MakeMatMulProgram(n);
  trace::Interpreter interp(p);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (int i = 0; i < n * n; ++i) {
    a[i] = 0.5 + i;
    b[i] = 1.0 - 0.1 * i;
    interp.WriteFp(0, static_cast<std::size_t>(i), a[i]);
    interp.WriteFp(1, static_cast<std::size_t>(i), b[i]);
  }
  interp.Run();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double want = 0.0;
      for (int k = 0; k < n; ++k) want += a[i * n + k] * b[k * n + j];
      EXPECT_NEAR(interp.ReadFp(2, static_cast<std::size_t>(i * n + j)),
                  want, 1e-9);
    }
  }
}

TEST(KernelsTest, FirComputesConvolution) {
  const int taps = 3;
  const int samples = 5;
  const trace::Program p = MakeFirProgram(taps, samples);
  trace::Interpreter interp(p);
  const std::vector<double> coef = {0.5, 0.3, 0.2};
  for (int k = 0; k < taps; ++k) {
    interp.WriteFp(0, static_cast<std::size_t>(k), coef[k]);
  }
  std::vector<double> in(samples + taps);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = 1.0 + 0.5 * static_cast<double>(i);
    interp.WriteFp(1, i, in[i]);
  }
  interp.Run();
  for (int i = 0; i < samples; ++i) {
    double want = 0.0;
    for (int k = 0; k < taps; ++k) want += coef[k] * in[i + k];
    EXPECT_NEAR(interp.ReadFp(2, static_cast<std::size_t>(i)), want, 1e-12);
  }
}

TEST(KernelsTest, CrcMatchesReferenceImplementation) {
  const int words = 64;
  const trace::Program p = MakeCrcProgram(words);
  trace::Interpreter interp(p);
  std::vector<std::int32_t> table(256);
  std::vector<std::int32_t> msg(words);
  for (int i = 0; i < 256; ++i) {
    table[i] = (i * 2654435761) & 0x7fffffff;
    interp.WriteInt(0, static_cast<std::size_t>(i), table[i]);
  }
  for (int i = 0; i < words; ++i) {
    msg[i] = (i * 31 + 7) & 0xffff;
    interp.WriteInt(1, static_cast<std::size_t>(i), msg[i]);
  }
  interp.Run();
  // Reference in plain C++.
  std::int64_t crc = 0x1d0f;
  for (int i = 0; i < words; ++i) {
    const std::int64_t x = crc ^ msg[i];
    crc = (static_cast<std::uint64_t>(crc) >> 8) ^ table[x & 0xff];
  }
  EXPECT_EQ(interp.int_reg(20), crc);
}

TEST(KernelsTest, AttitudeKeepsQuaternionNormalized) {
  const int steps = 16;
  const trace::Program p = MakeAttitudeProgram(steps);
  trace::Interpreter interp(p);
  interp.WriteFp(0, 0, 1.0);  // unit quaternion
  for (int s = 0; s < 3 * steps; ++s) {
    interp.WriteFp(1, static_cast<std::size_t>(s),
                   0.1 * ((s % 5) - 2));
  }
  interp.Run();
  double norm = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double q = interp.ReadFp(0, i);
    norm += q * q;
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
}

TEST(KernelsTest, AttitudeTakesCorrectionPathOnLargeRates) {
  const int steps = 4;
  const trace::Program p = MakeAttitudeProgram(steps);
  trace::Interpreter small_rates(p);
  trace::Interpreter large_rates(p);
  small_rates.WriteFp(0, 0, 1.0);
  large_rates.WriteFp(0, 0, 1.0);
  for (int s = 0; s < 3 * steps; ++s) {
    small_rates.WriteFp(1, static_cast<std::size_t>(s), 0.01);
    large_rates.WriteFp(1, static_cast<std::size_t>(s), 2.0);
  }
  const auto t_small = small_rates.Run();
  const auto t_large = large_rates.Run();
  EXPECT_NE(t_small.path_signature, t_large.path_signature);
  EXPECT_GT(t_large.instruction_count(), t_small.instruction_count());
}

TEST(FrameComposerTest, PriorityAndMinorOrdering) {
  trace::Trace hi = trace::SequentialTrace(0x1000, 2, 4);
  hi.path_signature = 100;
  trace::Trace lo = trace::SequentialTrace(0x2000, 2, 4);
  lo.path_signature = 200;
  FrameComposer composer;
  // Low priority in minor 0 listed FIRST, but high priority must still run
  // first within the minor frame.
  const std::vector<FrameSlot> slots = {
      {&lo, 1, /*priority=*/5, /*minor=*/0},
      {&hi, 1, /*priority=*/1, /*minor=*/0},
      {&hi, 1, 1, 1},
  };
  const trace::Trace frame = composer.ComposeMajorFrame(slots);
  // Find the first task record after the dispatcher block.
  FrameComposer::Options defaults;
  const std::size_t overhead = defaults.dispatch_overhead_instructions;
  EXPECT_EQ(frame.records[overhead].mem_addr, 0x1000u);  // hi first
  EXPECT_EQ(frame.records.size(), 3 * overhead + 6);
}

TEST(FrameComposerTest, SignatureCombinesJobSignatures) {
  trace::Trace a = trace::SequentialTrace(0x1000, 1, 4);
  a.path_signature = 1;
  trace::Trace b = trace::SequentialTrace(0x1000, 1, 4);
  b.path_signature = 2;
  FrameComposer composer;
  const auto fa = composer.ComposeMajorFrame({{&a, 1, 1, 0}});
  const auto fb = composer.ComposeMajorFrame({{&b, 1, 1, 0}});
  EXPECT_NE(fa.path_signature, fb.path_signature);
}

TEST(FrameComposerTest, DispatcherTouchesKernelRegion) {
  trace::Trace t = trace::SequentialTrace(0x1000, 1, 4);
  FrameComposer::Options opts;
  opts.dispatch_overhead_instructions = 32;
  FrameComposer composer(opts);
  const auto frame = composer.ComposeMajorFrame({{&t, 1, 1, 0}});
  bool kernel_pc = false;
  for (const auto& r : frame.records) {
    kernel_pc |= r.pc >= opts.kernel_code_base &&
                 r.pc < opts.kernel_code_base + 0x10000;
  }
  EXPECT_TRUE(kernel_pc);
}

TEST(SchedulerTest, HyperperiodLcm) {
  EXPECT_EQ(Hyperperiod({{"a", 10, 10, 1}, {"b", 15, 15, 2}}), 30u);
  EXPECT_EQ(Hyperperiod({{"a", 250000, 250000, 1}, {"b", 500000, 500000, 2}}),
            500000u);
}

TEST(SchedulerTest, UtilizationSum) {
  const std::vector<PeriodicTaskSpec> tasks = {{"a", 10, 10, 1},
                                               {"b", 20, 20, 2}};
  EXPECT_DOUBLE_EQ(Utilization(tasks, {2, 5}), 0.45);
}

TEST(SchedulerTest, SimulationMeetsDeadlinesUnderLowLoad) {
  const std::vector<PeriodicTaskSpec> tasks = {
      {"hi", 100, 100, 1}, {"mid", 200, 200, 2}, {"lo", 400, 400, 3}};
  const std::vector<Cycles> wcet = {10, 20, 40};
  const auto res = SimulateFixedPriority(tasks, wcet, 4000);
  for (const auto& r : res) {
    EXPECT_EQ(r.deadline_misses, 0u) << r.name;
    EXPECT_GT(r.jobs_released, 0u);
  }
  // Highest priority task never waits.
  EXPECT_EQ(res[0].worst_response, 10u);
}

TEST(SchedulerTest, OverloadMissesDeadlines) {
  const std::vector<PeriodicTaskSpec> tasks = {{"hi", 100, 100, 1},
                                               {"lo", 100, 100, 2}};
  const std::vector<Cycles> wcet = {80, 50};  // U = 1.3
  const auto res = SimulateFixedPriority(tasks, wcet, 10000);
  EXPECT_EQ(res[0].deadline_misses, 0u);
  EXPECT_GT(res[1].deadline_misses, 0u);
}

TEST(SchedulerTest, PreemptionDelaysLowPriority) {
  const std::vector<PeriodicTaskSpec> tasks = {{"hi", 50, 50, 1},
                                               {"lo", 200, 200, 2}};
  const std::vector<Cycles> wcet = {20, 60};
  const auto res = SimulateFixedPriority(tasks, wcet, 2000);
  // lo: 60 own + preemption by hi: R = 60 + ceil(R/50)*20, fixed point 100.
  EXPECT_EQ(res[1].worst_response, 100u);
}

TEST(RtaTest, MatchesSimulationWorstResponse) {
  const std::vector<PeriodicTaskSpec> tasks = {
      {"hi", 100, 100, 1}, {"mid", 150, 150, 2}, {"lo", 350, 350, 3}};
  const std::vector<Cycles> wcet = {12, 30, 70};
  const auto rta = ResponseTimeAnalysis(tasks, wcet);
  const auto sim =
      SimulateFixedPriority(tasks, wcet, 10 * Hyperperiod(tasks));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_TRUE(rta[i].schedulable) << tasks[i].name;
    // RTA is exact for synchronous releases: equals the simulated worst.
    EXPECT_EQ(rta[i].response_time, sim[i].worst_response) << tasks[i].name;
  }
}

TEST(RtaTest, DetectsUnschedulableTask) {
  const std::vector<PeriodicTaskSpec> tasks = {{"hi", 100, 100, 1},
                                               {"lo", 200, 120, 2}};
  const std::vector<Cycles> wcet = {60, 70};
  const auto rta = ResponseTimeAnalysis(tasks, wcet);
  EXPECT_TRUE(rta[0].schedulable);
  EXPECT_FALSE(rta[1].schedulable);
}

TEST(TvcaTest, FrameDeterministicPerSeed) {
  const TvcaApp app;
  const TvcaFrame a = app.BuildFrame(42);
  const TvcaFrame b = app.BuildFrame(42);
  ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
  EXPECT_EQ(a.path_id, b.path_id);
  for (std::size_t i = 0; i < a.trace.records.size(); i += 997) {
    EXPECT_EQ(a.trace.records[i].pc, b.trace.records[i].pc);
    EXPECT_EQ(a.trace.records[i].mem_addr, b.trace.records[i].mem_addr);
  }
}

TEST(TvcaTest, ScenarioControlsPathId) {
  TvcaScenario s;
  EXPECT_EQ(s.PathId(), 0u);
  s.calibration = true;
  EXPECT_EQ(s.PathId(), 1u);
  s.maneuver_x = true;
  EXPECT_EQ(s.PathId(), 3u);
  s.maneuver_y = true;
  EXPECT_EQ(s.PathId(), 7u);
}

TEST(TvcaTest, AllEightPathsReachableAcrossSeeds) {
  const TvcaApp app;
  std::set<std::uint32_t> paths;
  for (std::uint64_t seed = 0; seed < 300 && paths.size() < 8; ++seed) {
    paths.insert(app.DrawScenario(seed).PathId());
  }
  EXPECT_EQ(paths.size(), 8u);
}

TEST(TvcaTest, ManeuverModeLengthensActuatorTrace) {
  const TvcaApp app;
  TvcaScenario calm;
  TvcaScenario maneuver;
  maneuver.maneuver_x = true;
  const auto t_calm = app.BuildTaskTrace(TvcaTask::kActuatorX, 1, calm);
  const auto t_man = app.BuildTaskTrace(TvcaTask::kActuatorX, 1, maneuver);
  EXPECT_GT(t_man.instruction_count(), t_calm.instruction_count());
}

TEST(TvcaTest, CalibrationLengthensSensorTrace) {
  const TvcaApp app;
  TvcaScenario normal;
  TvcaScenario calib;
  calib.calibration = true;
  const auto t_norm = app.BuildTaskTrace(TvcaTask::kSensorAcq, 1, normal);
  const auto t_cal = app.BuildTaskTrace(TvcaTask::kSensorAcq, 1, calib);
  EXPECT_GT(t_cal.instruction_count(), t_norm.instruction_count());
}

TEST(TvcaTest, TasksOccupyDisjointAddressRegions) {
  const TvcaApp app;
  const auto& sensor = app.program(TvcaTask::kSensorAcq);
  const auto& ax = app.program(TvcaTask::kActuatorX);
  const auto& ay = app.program(TvcaTask::kActuatorY);
  auto data_range = [](const trace::Program& p) {
    Address lo = ~Address{0};
    Address hi = 0;
    for (const auto& arr : p.arrays) {
      lo = std::min(lo, arr.base);
      hi = std::max(hi, arr.base + arr.byte_size());
    }
    return std::pair{lo, hi};
  };
  const auto [slo, shi] = data_range(sensor);
  const auto [xlo, xhi] = data_range(ax);
  const auto [ylo, yhi] = data_range(ay);
  EXPECT_LE(shi, xlo);
  EXPECT_LE(xhi, ylo);
  (void)slo;
  (void)yhi;
}

TEST(TvcaTest, FrameContainsAllFiveJobs) {
  const TvcaApp app;
  const TvcaFrame frame = app.BuildFrame(9);
  // Sensor code base 0x40000000, actuator-x 0x40010000, y 0x40020000.
  bool sensor = false;
  bool ax = false;
  bool ay = false;
  for (const auto& r : frame.trace.records) {
    sensor |= r.pc >= 0x40000000 && r.pc < 0x40010000;
    ax |= r.pc >= 0x40010000 && r.pc < 0x40020000;
    ay |= r.pc >= 0x40020000 && r.pc < 0x40030000;
  }
  EXPECT_TRUE(sensor);
  EXPECT_TRUE(ax);
  EXPECT_TRUE(ay);
}

TEST(TvcaTest, TaskSpecsAreRateMonotonic) {
  const TvcaApp app;
  const auto specs = app.TaskSpecs();
  ASSERT_EQ(specs.size(), 3u);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LE(specs[i - 1].period, specs[i].period);
    EXPECT_LT(specs[i - 1].priority, specs[i].priority);
  }
}

TEST(TvcaTest, TaskNames) {
  EXPECT_STREQ(ToString(TvcaTask::kSensorAcq), "sensor-acq");
  EXPECT_STREQ(ToString(TvcaTask::kActuatorX), "actuator-x");
  EXPECT_STREQ(ToString(TvcaTask::kActuatorY), "actuator-y");
}

}  // namespace
}  // namespace spta::apps
