// src/atlas battery: columnar container, kernel mining, memoized replay.
//
// Four property families:
//   * container: round-trips (frozen + fuzzed traces), golden encodings,
//     hostile-input rejection (truncations, bit flips, alien bytes) with
//     typed errors — never a crash;
//   * mining: segments partition the trace and reconstruct it exactly;
//   * memoization: RunMemoized is bit-identical to Platform::Run across
//     platform configs, seeds and workloads, and actually fast-forwards
//     (>= 90% hit rate on a kernel-dominated trace);
//   * integration: memoized campaigns equal the legacy runners sample for
//     sample (any job count, checkpoint journals interoperable), and the
//     service INGEST verb validates, mines and caches kernel tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/atlas_campaign.hpp"
#include "analysis/campaign.hpp"
#include "analysis/checkpoint.hpp"
#include "analysis/parallel_campaign.hpp"
#include "apps/tvca.hpp"
#include "apps/kernels.hpp"
#include "atlas/format.hpp"
#include "atlas/kernel_store.hpp"
#include "atlas/memo_runner.hpp"
#include "atlas/mine.hpp"
#include "atlas/state_digest.hpp"
#include "obs/atlas_counters.hpp"
#include "prng/xoshiro.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/platform.hpp"
#include "trace/interpreter.hpp"
#include "trace/trace_io.hpp"

namespace spta {
namespace {

// ---------------------------------------------------------------------------
// Workload builders (the frozen traces of golden_regression_test plus a
// synthetic kernel-loop trace for memoization-specific properties).

apps::TvcaConfig ReducedTvcaConfig() {
  apps::TvcaConfig tc;
  tc.sensor_channels = 4;
  tc.samples_per_frame = 8;
  tc.fir_taps = 6;
  tc.state_dim = 8;
  tc.integrator_steps = 6;
  tc.control_iterations = 1;
  tc.straightline_instructions = 200;
  tc.dispatch_overhead = 32;
  return tc;
}

trace::Trace ReducedTvcaTrace() {
  const apps::TvcaApp app(ReducedTvcaConfig());
  return app.BuildFrame(42).trace;
}

trace::Trace MatmulTrace() {
  const trace::Program program = apps::MakeMatMulProgram(10);
  trace::Interpreter interp(program);
  prng::Xoshiro128pp rng(77);
  for (int i = 0; i < 100; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), rng.UniformUnit());
    interp.WriteFp(1, static_cast<std::size_t>(i), rng.UniformUnit());
  }
  return interp.Run();
}

trace::Trace FirTrace() {
  const trace::Program program = apps::MakeFirProgram(8, 64);
  trace::Interpreter interp(program);
  prng::Xoshiro128pp rng(78);
  for (int i = 0; i < 8; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), 0.125);
  }
  for (int i = 0; i < 72; ++i) {
    interp.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
  }
  return interp.Run();
}

/// Synthetic loop trace: prologue . body x `iterations` . epilogue, with
/// the body touching the same addresses every iteration (so the warmed
/// micro-architectural state reaches a fixed point and memoization can
/// fast-forward). The single store per iteration drains (~31 cycles on
/// the LEON3 presets) well within one iteration (~50 cycles), so the
/// store-buffer backlog — genuine state — does not creep between
/// iterations and the entry digest converges after the warm-up laps.
trace::Trace KernelLoopTrace(std::size_t iterations,
                             std::size_t body_records = 48) {
  trace::Trace t;
  t.path_signature = 0xA71A5;
  auto push = [&](Address pc, trace::OpClass op, Address mem = 0,
                  bool taken = false) {
    trace::TraceRecord r;
    r.pc = pc;
    r.op = op;
    r.mem_addr = mem;
    r.branch_taken = taken;
    t.records.push_back(r);
  };
  for (std::size_t i = 0; i < 40; ++i) {
    push(0x1000 + 4 * i,
         i % 5 == 0 ? trace::OpClass::kLoad : trace::OpClass::kIntAlu,
         i % 5 == 0 ? 0x9000 + 64 * i : 0);
  }
  for (std::size_t k = 0; k < iterations; ++k) {
    for (std::size_t j = 0; j + 1 < body_records; ++j) {
      if (j % 4 == 1) {
        push(0x2000 + 4 * j, trace::OpClass::kLoad, 0x8000 + 32 * j);
      } else if (j == 18) {
        push(0x2000 + 4 * j, trace::OpClass::kStore, 0x8800 + 32 * j);
      } else {
        push(0x2000 + 4 * j, trace::OpClass::kIntAlu);
      }
    }
    push(0x2000 + 4 * (body_records - 1), trace::OpClass::kBranch, 0, true);
  }
  for (std::size_t i = 0; i < 30; ++i) {
    push(0x3000 + 4 * i, trace::OpClass::kIntAlu);
  }
  return t;
}

/// Fully random trace (fuzz input). Field values cover the whole legal
/// range including the oddballs (mem_addr on non-memory ops is legal in
/// the in-memory model and must survive the container round trip).
trace::Trace RandomTrace(std::uint64_t seed, std::size_t n) {
  prng::Xoshiro128pp rng(seed);
  trace::Trace t;
  t.path_signature = rng.Next();
  t.records.resize(n);
  for (auto& r : t.records) {
    r.pc = rng.Next() & 0xffffffffffull;
    r.op = static_cast<trace::OpClass>(
        rng.UniformBelow(static_cast<std::uint32_t>(trace::OpClass::kNop) + 1));
    const bool is_mem = r.op == trace::OpClass::kLoad ||
                        r.op == trace::OpClass::kStore;
    if (is_mem || rng.UniformBelow(8) == 0) {
      r.mem_addr = rng.Next() & 0xffffffffull;
    }
    r.fpu_operand_class =
        static_cast<std::uint8_t>(rng.UniformBelow(trace::kFpuOperandClasses));
    r.branch_taken = rng.UniformBelow(2) == 1;
    r.dst_reg = static_cast<std::uint8_t>(rng.UniformBelow(64));
    r.src1_reg = static_cast<std::uint8_t>(rng.Next() & 0xff);
    r.src2_reg = rng.UniformBelow(3) == 0 ? trace::kNoReg
                                          : static_cast<std::uint8_t>(
                                                rng.UniformBelow(64));
    if (r.src1_reg != trace::kNoReg) r.src1_reg &= 0x7f;
  }
  return t;
}

std::string AtlasBytes(const trace::Trace& t,
                       std::uint32_t block_records = atlas::kDefaultBlockRecords) {
  std::ostringstream out;
  atlas::WriteAtlas(out, t, block_records);
  return out.str();
}

std::string LegacyBytes(const trace::Trace& t) {
  std::ostringstream out;
  trace::WriteTrace(out, t);
  return out.str();
}

// ---------------------------------------------------------------------------
// Container round-trips.

TEST(AtlasFormatTest, FrozenTracesRoundTripAndHitPackTarget) {
  const struct {
    const char* name;
    trace::Trace t;
  } workloads[] = {{"tvca-reduced", ReducedTvcaTrace()},
                   {"matmul", MatmulTrace()},
                   {"fir", FirTrace()}};
  for (const auto& w : workloads) {
    const std::string packed = AtlasBytes(w.t);
    const std::string legacy = LegacyBytes(w.t);
    std::istringstream in(packed);
    trace::Trace round;
    std::string error;
    ASSERT_TRUE(atlas::TryReadAtlas(in, &round, &error)) << w.name << ": "
                                                         << error;
    EXPECT_EQ(round.records, w.t.records) << w.name;
    EXPECT_EQ(round.path_signature, w.t.path_signature) << w.name;
    EXPECT_TRUE(atlas::TraceContentDigest(round) ==
                atlas::TraceContentDigest(w.t))
        << w.name;
    // The acceptance target: >= 3x smaller than the legacy container.
    EXPECT_GE(static_cast<double>(legacy.size()) /
                  static_cast<double>(packed.size()),
              3.0)
        << w.name << " packed to " << packed.size() << " of "
        << legacy.size();
  }
}

TEST(AtlasFormatTest, EncodingIsDeterministic) {
  const trace::Trace t = ReducedTvcaTrace();
  EXPECT_EQ(AtlasBytes(t), AtlasBytes(t));
  EXPECT_EQ(AtlasBytes(t, 512), AtlasBytes(t, 512));
  EXPECT_NE(AtlasBytes(t, 512), AtlasBytes(t, 1024));
}

// Golden encodings of the frozen workloads: the exact container size and
// content digest are pinned so the on-disk format cannot drift silently.
// Re-baseline these constants only alongside a deliberate format change
// (and bump kAtlasVersion when the layout itself moves).
TEST(AtlasFormatTest, GoldenEncodings) {
  struct Golden {
    const char* name;
    trace::Trace t;
    std::size_t atlas_bytes;
    std::uint64_t digest_lo;
    std::uint64_t digest_hi;
  };
  const Golden goldens[] = {
      {"tvca-reduced", ReducedTvcaTrace(), 44216, 0xb77f77b646f7cda2ull,
       0x92705fe1015b8c8eull},
      {"matmul", MatmulTrace(), 64673, 0x3dbb0efb46a1e69dull,
       0xdba6142b06ab1be9ull},
      {"fir", FirTrace(), 26648, 0x54a1fd5945233d52ull,
       0xaf1da47dab6f321cull},
  };
  for (const auto& g : goldens) {
    const std::string packed = AtlasBytes(g.t);
    const DualHash digest = atlas::TraceContentDigest(g.t);
    EXPECT_EQ(packed.size(), g.atlas_bytes) << g.name;
    EXPECT_EQ(digest.lo, g.digest_lo) << g.name;
    EXPECT_EQ(digest.hi, g.digest_hi) << g.name;
  }
}

TEST(AtlasFormatTest, SeededFuzzRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    // Sizes sweep block boundaries: empty, single record, one block,
    // block +/- 1, several blocks (block_records = 64 below).
    const std::size_t sizes[] = {0, 1, 63, 64, 65, 500, 1337};
    const std::size_t n = sizes[seed % std::size(sizes)];
    const trace::Trace t = RandomTrace(seed, n);
    const std::string packed = AtlasBytes(t, 64);
    std::istringstream in(packed);
    trace::Trace round;
    std::string error;
    ASSERT_TRUE(atlas::TryReadAtlas(in, &round, &error))
        << "seed " << seed << ": " << error;
    ASSERT_EQ(round.records, t.records) << "seed " << seed;
    EXPECT_EQ(round.path_signature, t.path_signature) << "seed " << seed;
  }
}

TEST(AtlasFormatTest, FileRoundTripAndAnySniffing) {
  const trace::Trace t = FirTrace();
  const std::string atlas_path =
      ::testing::TempDir() + "spta_atlas_test_fir.atls";
  const std::string legacy_path =
      ::testing::TempDir() + "spta_atlas_test_fir.trc";
  atlas::SaveAtlasFile(atlas_path, t);
  trace::SaveTraceFile(legacy_path, t);

  trace::Trace from_atlas, from_legacy;
  atlas::TraceFormat f1 = atlas::TraceFormat::kLegacy;
  atlas::TraceFormat f2 = atlas::TraceFormat::kAtlas;
  std::string error;
  ASSERT_TRUE(atlas::TryLoadAnyTraceFile(atlas_path, &from_atlas, &f1, &error))
      << error;
  ASSERT_TRUE(
      atlas::TryLoadAnyTraceFile(legacy_path, &from_legacy, &f2, &error))
      << error;
  EXPECT_EQ(f1, atlas::TraceFormat::kAtlas);
  EXPECT_EQ(f2, atlas::TraceFormat::kLegacy);
  EXPECT_EQ(from_atlas.records, t.records);
  EXPECT_EQ(from_legacy.records, t.records);

  trace::Trace ignored;
  atlas::TraceFormat ignored_format = atlas::TraceFormat::kLegacy;
  EXPECT_FALSE(atlas::TryLoadAnyTraceFile(
      ::testing::TempDir() + "spta_atlas_no_such_file", &ignored,
      &ignored_format, &error));
  EXPECT_FALSE(error.empty());
  std::remove(atlas_path.c_str());
  std::remove(legacy_path.c_str());
}

// ---------------------------------------------------------------------------
// Hostile input: every truncation and every single-bit flip of a valid
// container must be rejected with a typed error — no abort, no silent
// wrong decode. (The content digest backstops whatever slips past the
// structural checks.)

TEST(AtlasFormatTest, EveryTruncationRejected) {
  const trace::Trace t = RandomTrace(9, 300);
  const std::string packed = AtlasBytes(t, 64);
  ASSERT_LT(packed.size(), 20000u);
  for (std::size_t len = 0; len < packed.size(); ++len) {
    std::istringstream in(packed.substr(0, len));
    trace::Trace out;
    std::string error;
    ASSERT_FALSE(atlas::TryReadAtlas(in, &out, &error)) << "len " << len;
    ASSERT_FALSE(error.empty()) << "len " << len;
  }
}

TEST(AtlasFormatTest, EveryByteFlipRejected) {
  const trace::Trace t = RandomTrace(10, 300);
  const std::string packed = AtlasBytes(t, 64);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    std::string damaged = packed;
    damaged[i] = static_cast<char>(damaged[i] ^ (1u << (i % 8)));
    std::istringstream in(damaged);
    trace::Trace out;
    std::string error;
    ASSERT_FALSE(atlas::TryReadAtlas(in, &out, &error)) << "byte " << i;
  }
}

TEST(AtlasFormatTest, AlienBytesRejectedBySniffer) {
  for (const std::string& bytes :
       {std::string(), std::string("ATL"), std::string("garbage input"),
        std::string(200, '\0'), std::string("ATLS then junk............")}) {
    std::istringstream in(bytes);
    trace::Trace out;
    atlas::TraceFormat format = atlas::TraceFormat::kLegacy;
    std::string error;
    EXPECT_FALSE(atlas::TryReadAnyTrace(in, &out, &format, &error));
    EXPECT_FALSE(error.empty());
  }
}

// ---------------------------------------------------------------------------
// Mining.

TEST(AtlasMineTest, FindsSyntheticKernel) {
  const std::size_t kIterations = 150;
  const trace::Trace t = KernelLoopTrace(kIterations);
  const atlas::Segmentation seg = atlas::MineKernels(t);

  ASSERT_EQ(seg.kernels.size(), 1u);
  EXPECT_EQ(seg.kernels[0].length, 48u);
  EXPECT_GE(seg.kernels[0].iterations, kIterations - 1);
  EXPECT_EQ(seg.total_records, t.records.size());
  EXPECT_GE(static_cast<double>(seg.KernelRecords()) /
                static_cast<double>(t.records.size()),
            0.9);
}

TEST(AtlasMineTest, SegmentsPartitionAndReconstructExactly) {
  const trace::Trace traces[] = {KernelLoopTrace(50), RandomTrace(3, 777),
                                 FirTrace(), trace::Trace{}};
  for (const auto& t : traces) {
    const atlas::Segmentation seg = atlas::MineKernels(t);
    std::vector<trace::TraceRecord> rebuilt;
    std::size_t cursor = 0;
    for (const atlas::Segment& s : seg.segments) {
      ASSERT_EQ(s.begin, cursor);
      for (std::size_t it = 0; it < s.iterations; ++it) {
        for (std::size_t j = 0; j < s.length; ++j) {
          rebuilt.push_back(t.records[s.begin + it * s.length + j]);
        }
      }
      cursor += s.records_covered();
    }
    ASSERT_EQ(cursor, t.records.size());
    EXPECT_EQ(rebuilt, t.records);
  }
}

TEST(AtlasMineTest, KernelIterationsAreFieldwiseEqualToBody) {
  const trace::Trace t = KernelLoopTrace(30);
  const atlas::Segmentation seg = atlas::MineKernels(t);
  for (const atlas::Segment& s : seg.segments) {
    if (s.kernel == atlas::kNoKernel) continue;
    for (std::size_t it = 1; it < s.iterations; ++it) {
      for (std::size_t j = 0; j < s.length; ++j) {
        ASSERT_EQ(t.records[s.begin + j],
                  t.records[s.begin + it * s.length + j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel store.

TEST(AtlasKernelStoreTest, CollisionDetectedAndCapacityBounded) {
  atlas::KernelStore store(/*capacity=*/2);
  DualHash a;
  a.Mix(1);
  DualHash colliding = a;
  colliding.hi ^= 0xdeadbeef;  // same lo bucket, different verifier

  atlas::KernelStore::Entry e;
  e.fixed_point = true;
  store.Insert(a, e);
  EXPECT_NE(store.Lookup(a), nullptr);
  EXPECT_EQ(store.Lookup(colliding), nullptr);  // collision, not a hit
  EXPECT_EQ(store.stats().collisions, 1u);

  DualHash b, c;
  b.Mix(2);
  c.Mix(3);
  store.Insert(b, e);
  store.Insert(c, e);  // capacity 2 exceeded -> wholesale clear
  EXPECT_EQ(store.stats().clears, 1u);
  EXPECT_EQ(store.Lookup(a), nullptr);
  EXPECT_NE(store.Lookup(c), nullptr);
}

// ---------------------------------------------------------------------------
// Memoized replay: bit-identity with Platform::Run.

void ExpectSameResult(const sim::RunResult& memo, const sim::RunResult& ref,
                      const char* label) {
  EXPECT_EQ(memo.cycles, ref.cycles) << label;
  EXPECT_EQ(memo.instructions, ref.instructions) << label;
  EXPECT_EQ(memo.il1.accesses, ref.il1.accesses) << label;
  EXPECT_EQ(memo.il1.misses, ref.il1.misses) << label;
  EXPECT_EQ(memo.dl1.accesses, ref.dl1.accesses) << label;
  EXPECT_EQ(memo.dl1.misses, ref.dl1.misses) << label;
  EXPECT_EQ(memo.itlb.accesses, ref.itlb.accesses) << label;
  EXPECT_EQ(memo.itlb.misses, ref.itlb.misses) << label;
  EXPECT_EQ(memo.dtlb.accesses, ref.dtlb.accesses) << label;
  EXPECT_EQ(memo.dtlb.misses, ref.dtlb.misses) << label;
  EXPECT_EQ(memo.fpu.operations, ref.fpu.operations) << label;
  EXPECT_EQ(memo.fpu.total_cycles, ref.fpu.total_cycles) << label;
  EXPECT_EQ(memo.store_buffer.stores, ref.store_buffer.stores) << label;
  EXPECT_EQ(memo.store_buffer.full_stalls, ref.store_buffer.full_stalls)
      << label;
  EXPECT_EQ(memo.store_buffer.stall_cycles, ref.store_buffer.stall_cycles)
      << label;
  EXPECT_EQ(memo.store_buffer.high_water, ref.store_buffer.high_water)
      << label;
  EXPECT_EQ(memo.prng.words, ref.prng.words) << label;
  EXPECT_EQ(memo.prng.rejections, ref.prng.rejections) << label;
  EXPECT_EQ(memo.bus.transactions, ref.bus.transactions) << label;
  EXPECT_EQ(memo.bus.busy_cycles, ref.bus.busy_cycles) << label;
  EXPECT_EQ(memo.bus.wait_cycles, ref.bus.wait_cycles) << label;
  EXPECT_EQ(memo.dram.accesses, ref.dram.accesses) << label;
  EXPECT_EQ(memo.dram.row_hits, ref.dram.row_hits) << label;
  EXPECT_EQ(memo.dram.refresh_stall_cycles, ref.dram.refresh_stall_cycles)
      << label;
}

sim::PlatformConfig L2RefreshConfig() {
  sim::PlatformConfig config = sim::RandLeon3Config();
  config.name = "rand+l2+refresh";
  config.l2.enabled = true;
  config.dram.refresh_interval = 7810;
  return config;
}

TEST(AtlasMemoTest, BitIdenticalToPlainRunAcrossConfigsAndSeeds) {
  const struct {
    const char* name;
    trace::Trace t;
  } workloads[] = {{"kernel-loop", KernelLoopTrace(120)},
                   {"tvca-reduced", ReducedTvcaTrace()},
                   {"matmul", MatmulTrace()},
                   {"fir", FirTrace()}};
  const sim::PlatformConfig configs[] = {
      sim::DetLeon3Config(), sim::RandLeon3Config(),
      sim::RandLeon3OperationConfig(), L2RefreshConfig()};
  for (const auto& config : configs) {
    const DualHash config_digest = atlas::ConfigDigest(config);
    sim::Platform reference(config, 1);
    sim::Platform memoized(config, 1);
    for (const auto& w : workloads) {
      const atlas::Segmentation seg = atlas::MineKernels(w.t);
      atlas::KernelStore store;
      for (Seed seed = 1; seed <= 5; ++seed) {
        const std::string label = std::string(config.name) + "/" + w.name +
                                  "/seed" + std::to_string(seed);
        const sim::RunResult ref = reference.Run(w.t, seed);
        const sim::RunResult memo = atlas::RunMemoized(
            memoized, w.t, seg, seed, config_digest, &store);
        ExpectSameResult(memo, ref, label.c_str());
      }
    }
  }
}

TEST(AtlasMemoTest, HitRateOnKernelDominatedTrace) {
  const trace::Trace t = KernelLoopTrace(150);
  const atlas::Segmentation seg = atlas::MineKernels(t);
  ASSERT_GE(seg.KernelRecords(), t.records.size() * 9 / 10);

  const sim::PlatformConfig config = sim::RandLeon3Config();
  const DualHash config_digest = atlas::ConfigDigest(config);
  sim::Platform platform(config, 1);
  atlas::KernelStore store;
  atlas::MemoRunStats stats;
  const sim::RunResult memo =
      atlas::RunMemoized(platform, t, seg, 7, config_digest, &store, &stats);

  sim::Platform reference(config, 1);
  ExpectSameResult(memo, reference.Run(t, 7), "hit-rate run");

  // Acceptance: >= 90% of kernel iterations fast-forwarded on a trace
  // with >= 100 identical iterations.
  EXPECT_GE(stats.kernel_iterations, 100u);
  EXPECT_GE(stats.HitRate(), 0.9) << stats.hits << "/"
                                  << stats.kernel_iterations;
  EXPECT_GT(stats.fast_forwarded_records, 0u);

  // Re-running the same seed on a warm store hits from iteration one's
  // converged state onward (same per-run seeds -> same entry digests).
  atlas::MemoRunStats warm;
  atlas::RunMemoized(platform, t, seg, 7, config_digest, &store, &warm);
  EXPECT_GE(warm.HitRate(), stats.HitRate());
}

TEST(AtlasMemoTest, StoreSharedAcrossRunsStaysBitIdentical) {
  const trace::Trace t = KernelLoopTrace(60);
  const atlas::Segmentation seg = atlas::MineKernels(t);
  const sim::PlatformConfig config = sim::RandLeon3Config();
  const DualHash config_digest = atlas::ConfigDigest(config);
  sim::Platform reference(config, 1);
  sim::Platform memoized(config, 1);
  atlas::KernelStore store;  // ONE store across every seed
  for (Seed seed = 1; seed <= 10; ++seed) {
    ExpectSameResult(
        atlas::RunMemoized(memoized, t, seg, seed, config_digest, &store),
        reference.Run(t, seed), "shared-store");
  }
}

// ---------------------------------------------------------------------------
// Campaign integration.

TEST(AtlasCampaignTest, FixedTraceMemoizedMatchesParallel) {
  const trace::Trace t = KernelLoopTrace(80);
  const sim::PlatformConfig config = sim::RandLeon3Config();
  const auto reference =
      analysis::RunFixedTraceCampaignParallel(config, t, 40, 99, 2);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    analysis::AtlasCampaignStats stats;
    const auto memo = analysis::RunFixedTraceCampaignMemoized(
        config, t, 40, 99, jobs, &stats);
    ASSERT_EQ(memo.size(), reference.size());
    for (std::size_t r = 0; r < memo.size(); ++r) {
      EXPECT_EQ(memo[r].cycles, reference[r].cycles) << "run " << r;
      EXPECT_EQ(memo[r].path_id, reference[r].path_id) << "run " << r;
      ExpectSameResult(memo[r].detail, reference[r].detail, "campaign");
    }
    EXPECT_GT(stats.memo.hits, 0u) << "memoization never engaged";
  }
}

TEST(AtlasCampaignTest, TvcaMemoizedMatchesParallel) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const sim::PlatformConfig config = sim::RandLeon3Config();
  for (const std::size_t scenarios : {std::size_t{0}, std::size_t{4}}) {
    analysis::CampaignConfig cc;
    cc.runs = 24;
    cc.master_seed = 5;
    cc.distinct_scenarios = scenarios;
    const auto reference =
        analysis::RunTvcaCampaignParallel(config, app, cc, 2);
    const auto memo = analysis::RunTvcaCampaignMemoized(config, app, cc, 2);
    ASSERT_EQ(memo.size(), reference.size());
    for (std::size_t r = 0; r < memo.size(); ++r) {
      EXPECT_EQ(memo[r].cycles, reference[r].cycles)
          << "scenarios " << scenarios << " run " << r;
      EXPECT_EQ(memo[r].path_id, reference[r].path_id);
    }
  }
}

TEST(AtlasCampaignTest, CheckpointJournalsInteroperateWithLegacy) {
  const trace::Trace t = KernelLoopTrace(80);
  const sim::PlatformConfig config = sim::RandLeon3Config();
  const std::string journal =
      ::testing::TempDir() + "spta_atlas_interop.ckpt";
  std::remove(journal.c_str());

  // Phase 1: LEGACY checkpointed runner, crashed after 10 appends.
  analysis::CheckpointOptions copts;
  copts.journal_path = journal;
  copts.abort_after_appends = 10;
  analysis::CheckpointedCampaignResult partial;
  std::string error;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignCheckpointed(
      config, t, 30, 77, 2, copts, &partial, &error))
      << error;
  ASSERT_FALSE(partial.completed);

  // Phase 2: resume the SAME journal through the MEMOIZED runner.
  copts.abort_after_appends = 0;
  copts.resume = true;
  analysis::CheckpointedCampaignResult resumed;
  analysis::AtlasCampaignStats stats;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignMemoizedCheckpointed(
      config, t, 30, 77, 2, copts, &resumed, &error, &stats))
      << error;
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.resumed_runs, 10u);

  // The merged sample equals an uninterrupted legacy campaign bit for bit.
  const auto reference =
      analysis::RunFixedTraceCampaignParallel(config, t, 30, 77, 2);
  ASSERT_EQ(resumed.samples.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(resumed.samples[r].cycles, reference[r].cycles) << r;
    EXPECT_EQ(resumed.samples[r].path_id, reference[r].path_id) << r;
  }
  std::remove(journal.c_str());
}

TEST(AtlasCampaignTest, CountersReachObsSurface) {
  obs::ResetAtlasCountersForTest();
  const trace::Trace t = KernelLoopTrace(80);
  analysis::AtlasCampaignStats stats;
  analysis::RunFixedTraceCampaignMemoized(sim::RandLeon3Config(), t, 10, 1,
                                          2, &stats);
  const obs::AtlasCountersSnapshot snap = obs::AtlasCounters();
  EXPECT_EQ(snap.kernel_hits, stats.memo.hits);
  EXPECT_EQ(snap.kernel_misses, stats.memo.misses);
  EXPECT_EQ(snap.kernel_bypasses, stats.memo.bypasses);
  EXPECT_EQ(snap.fast_forwarded_records, stats.memo.fast_forwarded_records);
  EXPECT_GT(snap.kernel_hits, 0u);
}

// ---------------------------------------------------------------------------
// Service INGEST.

service::Response Roundtrip(service::Server& server,
                            const service::Request& request) {
  std::stringstream in, out;
  service::WriteRequest(in, request);
  server.ServeStream(in, out);
  service::Response response;
  std::string error;
  EXPECT_EQ(service::ReadResponse(out, &response, &error),
            service::ReadStatus::kOk)
      << error;
  return response;
}

TEST(AtlasServiceTest, IngestValidatesMinesAndCaches) {
  service::Server server;
  const trace::Trace t = KernelLoopTrace(100);

  service::Request ingest;
  ingest.kind = service::RequestKind::kIngest;
  ingest.payload = AtlasBytes(t);
  const service::Response first = Roundtrip(server, ingest);
  ASSERT_TRUE(first.ok) << first.payload;
  EXPECT_EQ(first.args.GetString("format"), "atlas");
  EXPECT_EQ(first.args.GetUint("records", 0), t.records.size());
  EXPECT_EQ(first.args.GetUint("kernels", 0), 1u);
  EXPECT_EQ(first.args.GetString("cache"), "miss");
  EXPECT_FALSE(first.args.GetString("digest").empty());

  // Same trace in the LEGACY container: same content digest -> cache hit
  // with the identical kernel table.
  service::Request again;
  again.kind = service::RequestKind::kIngest;
  again.payload = LegacyBytes(t);
  const service::Response second = Roundtrip(server, again);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.args.GetString("format"), "legacy");
  EXPECT_EQ(second.args.GetString("cache"), "hit");
  EXPECT_EQ(second.args.GetString("digest"), first.args.GetString("digest"));
  EXPECT_EQ(second.args.GetUint("kernels", 0), 1u);
  EXPECT_EQ(second.payload, first.payload);
}

TEST(AtlasServiceTest, IngestRejectsHostilePayloadsWithoutDying) {
  service::Server server;
  const std::string valid = AtlasBytes(KernelLoopTrace(20));
  const std::string payloads[] = {
      std::string("not a trace at all"), valid.substr(0, valid.size() / 2),
      [&] {
        std::string damaged = valid;
        damaged[damaged.size() / 2] ^= 0x40;
        return damaged;
      }(),
      std::string()};
  for (const auto& payload : payloads) {
    service::Request ingest;
    ingest.kind = service::RequestKind::kIngest;
    ingest.payload = payload;
    const service::Response response = Roundtrip(server, ingest);
    EXPECT_FALSE(response.ok);
  }
  // The server is still alive and serving.
  service::Request ping;
  ping.kind = service::RequestKind::kPing;
  EXPECT_TRUE(Roundtrip(server, ping).ok);
}

TEST(AtlasServiceTest, PromExportsAtlasCounters) {
  service::Server server;
  const std::string prom = server.RenderPromText();
  EXPECT_NE(prom.find("spta_atlas_kernel_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("spta_atlas_traces_packed_total"), std::string::npos);
}

}  // namespace
}  // namespace spta
