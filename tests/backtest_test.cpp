// Tests for pWCET backtesting and PoT threshold sweeping.
#include <gtest/gtest.h>

#include <cmath>

#include "evt/gumbel.hpp"
#include "evt/threshold.hpp"
#include "mbpta/backtest.hpp"
#include "prng/xoshiro.hpp"

namespace spta {
namespace {

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  evt::GumbelDist d{mu, beta};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

TEST(BacktestTest, ConsistentOnStationaryData) {
  const auto xs = GumbelSample(1000.0, 25.0, 4000, 3);
  const auto r = mbpta::SplitBacktest(xs);
  EXPECT_EQ(r.analysis_runs, 2000u);
  EXPECT_EQ(r.validation_runs, 2000u);
  ASSERT_GE(r.points.size(), 2u);
  EXPECT_TRUE(r.AllConsistent());
  for (const auto& pt : r.points) {
    // At p=0.1 the observed count should be in the right ballpark.
    if (pt.nominal_prob == 0.1) {
      EXPECT_NEAR(static_cast<double>(pt.observed), 200.0, 60.0);
    }
  }
}

TEST(BacktestTest, DetectsDistributionShift) {
  // Validation half drawn from a slower distribution: the analysis-half
  // fit must be violated.
  auto xs = GumbelSample(1000.0, 25.0, 4000, 4);
  for (std::size_t i = 2000; i < xs.size(); ++i) xs[i] += 120.0;
  const auto r = mbpta::SplitBacktest(xs);
  EXPECT_FALSE(r.AllConsistent());
}

TEST(BacktestTest, SkipsUnderpoweredProbabilities) {
  const auto xs = GumbelSample(500.0, 10.0, 400, 5);
  const double probs[] = {0.1, 1e-6};  // 1e-6 * 200 << 2: skipped
  const auto r = mbpta::BacktestPwcet(
      std::span<const double>(xs).subspan(0, 200),
      std::span<const double>(xs).subspan(200), probs);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].nominal_prob, 0.1);
}

TEST(BacktestTest, BoundsGrowAsProbabilityDrops) {
  const auto xs = GumbelSample(1000.0, 25.0, 4000, 6);
  const auto r = mbpta::SplitBacktest(xs);
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_LT(r.points[i - 1].nominal_prob, 1.0);
    EXPECT_GT(r.points[i].bound, r.points[i - 1].bound);
  }
}

TEST(ThresholdSweepTest, ProducesMonotoneThresholds) {
  const auto xs = GumbelSample(1000.0, 25.0, 5000, 7);
  const auto sweep = evt::SweepThresholds(xs);
  ASSERT_GE(sweep.points.size(), 3u);
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GE(sweep.points[i].threshold, sweep.points[i - 1].threshold);
    EXPECT_LE(sweep.points[i].excesses, sweep.points[i - 1].excesses);
  }
  EXPECT_GE(sweep.chosen, 0);
}

TEST(ThresholdSweepTest, ChosenQuantileNearTruthForGumbel) {
  const evt::GumbelDist truth{1000.0, 25.0};
  const auto xs = GumbelSample(truth.mu, truth.beta, 20000, 8);
  const auto sweep = evt::SweepThresholds(xs, 1e-6);
  const double true_q = truth.Quantile(1.0 - 1e-6);
  EXPECT_NEAR(sweep.chosen_point().q_deep, true_q, 0.12 * true_q);
}

TEST(ThresholdSweepDeathTest, TooLittleDataRejected) {
  const auto xs = GumbelSample(0.0, 1.0, 100, 9);
  EXPECT_DEATH(evt::SweepThresholds(xs), "");
}

}  // namespace
}  // namespace spta
