// Equivalence battery for the batched PRNG front-end (prng::BlockDraws).
//
// The fast-path simulator replaced direct engine calls with block-buffered
// draws; MBPTA's bit-identity guarantee therefore rests on BlockDraws being
// observationally equal to the bare engine. These tests pin that contract:
// the served word stream is element-for-element the engine's stream across
// every refill-boundary alignment, and the derived draws (UniformBelow,
// UniformUnit) replay the engine's exact rejection/scaling arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "prng/block_draws.hpp"
#include "prng/hw_prng.hpp"
#include "prng/xoshiro.hpp"

namespace spta::prng {
namespace {

constexpr std::size_t kBlock = BlockDraws<HwPrng>::kBlockSize;

template <typename Engine>
void ExpectIdenticalWordStream(std::uint64_t seed, std::size_t count) {
  Engine direct(seed);
  BlockDraws<Engine> batched{Engine(seed)};
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(direct.Next(), batched.Next()) << "word index " << i;
  }
}

TEST(BlockDrawsTest, HwPrngWordStreamIdenticalAcrossRefills) {
  // > 2 full refills plus a partial block, so the stream crosses the
  // buffer boundary mid-sequence more than once.
  ExpectIdenticalWordStream<HwPrng>(42, 2 * kBlock + kBlock / 3);
  ExpectIdenticalWordStream<HwPrng>(0, 3 * kBlock + 1);
}

TEST(BlockDrawsTest, XoshiroWordStreamIdenticalAcrossRefills) {
  ExpectIdenticalWordStream<Xoshiro128pp>(7, 2 * kBlock + 17);
  ExpectIdenticalWordStream<Xoshiro128pp>(0xdeadbeef, 4 * kBlock);
}

TEST(BlockDrawsTest, ManySeedsSpotCheck) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ExpectIdenticalWordStream<HwPrng>(seed, kBlock + seed);
  }
}

TEST(BlockDrawsTest, RefillBoundaryAlignments) {
  // Start the comparison at every offset within one block: pre-consume
  // `offset` words from both sides, then check the next 2 blocks. This
  // catches any off-by-one at pos_ == fill_ regardless of alignment.
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, kBlock - 1,
                             kBlock, kBlock + 1}) {
    HwPrng direct(99);
    BlockDraws<HwPrng> batched{HwPrng(99)};
    for (std::size_t i = 0; i < offset; ++i) {
      ASSERT_EQ(direct.Next(), batched.Next());
    }
    for (std::size_t i = 0; i < 2 * kBlock; ++i) {
      ASSERT_EQ(direct.Next(), batched.Next())
          << "offset " << offset << " word " << i;
    }
  }
}

TEST(BlockDrawsTest, UniformBelowIdenticalToHwPrng) {
  // Interleave many bounds, including non-powers-of-two (which exercise
  // the rejection loop) and the cache/TLB way counts the simulator uses.
  const std::vector<std::uint32_t> bounds = {1,  2,  3,  4,  5,  7,  8,
                                             13, 16, 31, 32, 33, 64, 100};
  HwPrng direct(123);
  BlockDraws<HwPrng> batched{HwPrng(123)};
  for (std::size_t round = 0; round < 4 * kBlock; ++round) {
    const std::uint32_t bound = bounds[round % bounds.size()];
    ASSERT_EQ(direct.UniformBelow(bound), batched.UniformBelow(bound))
        << "round " << round << " bound " << bound;
  }
}

TEST(BlockDrawsTest, UniformUnitIdenticalToHwPrng) {
  HwPrng direct(321);
  BlockDraws<HwPrng> batched{HwPrng(321)};
  for (std::size_t i = 0; i < 3 * kBlock; ++i) {
    ASSERT_EQ(direct.UniformUnit(), batched.UniformUnit()) << "draw " << i;
  }
}

TEST(BlockDrawsTest, MixedDrawKindsStayInLockstep) {
  // The simulator mixes word draws and bounded draws on one stream; the
  // equivalence must hold under interleaving, not just per-kind.
  HwPrng direct(555);
  BlockDraws<HwPrng> batched{HwPrng(555)};
  for (std::size_t i = 0; i < 2 * kBlock; ++i) {
    switch (i % 3) {
      case 0:
        ASSERT_EQ(direct.Next(), batched.Next()) << i;
        break;
      case 1:
        ASSERT_EQ(direct.UniformBelow(static_cast<std::uint32_t>(1 + i % 63)),
                  batched.UniformBelow(static_cast<std::uint32_t>(1 + i % 63)))
            << i;
        break;
      default:
        ASSERT_EQ(direct.UniformUnit(), batched.UniformUnit()) << i;
        break;
    }
  }
}

TEST(BlockDrawsTest, BufferedCountTracksRefills) {
  BlockDraws<HwPrng> batched{HwPrng(1)};
  EXPECT_EQ(batched.buffered(), 0u);  // lazy: nothing drawn yet
  (void)batched.Next();
  EXPECT_EQ(batched.buffered(), kBlock - 1);
  for (std::size_t i = 1; i < kBlock; ++i) (void)batched.Next();
  EXPECT_EQ(batched.buffered(), 0u);
  (void)batched.Next();
  EXPECT_EQ(batched.buffered(), kBlock - 1);
}

TEST(BlockDrawsTest, StatsWordsExactAtRefillBoundaries) {
  // stats().words must count words actually SERVED, not words clocked into
  // the buffer: at every boundary alignment the figure has to agree with
  // the draw count, or per-lane PRNG accounting in the batch kernel would
  // jump by a block whenever one lane refills.
  for (const std::size_t draws :
       {kBlock - 1, kBlock, kBlock + 1, 2 * kBlock}) {
    BlockDraws<HwPrng> batched{HwPrng(17)};
    for (std::size_t i = 0; i < draws; ++i) (void)batched.Next();
    EXPECT_EQ(batched.stats().words, draws) << "draws " << draws;
    EXPECT_EQ(batched.stats().rejections, 0u);
  }
}

TEST(BlockDrawsTest, IndependentLanesRefillWithoutCrossPerturbation) {
  // The divergence hazard the batch kernel must not have: K lanes each own
  // a BlockDraws and consume at DIFFERENT rates (cache-miss-driven in the
  // real kernel), so refills land at different times across lanes. Each
  // lane's word stream and rejection sequence must match a direct engine
  // seeded identically — i.e. one lane exhausting its block mid-batch
  // must not perturb any sibling.
  constexpr std::size_t kLanes = 5;
  std::vector<BlockDraws<HwPrng>> lanes;
  std::vector<HwPrng> direct;
  for (std::size_t l = 0; l < kLanes; ++l) {
    lanes.emplace_back(HwPrng(1000 + l));
    direct.emplace_back(1000 + l);
  }
  std::vector<std::size_t> served(kLanes, 0);
  // Interleave draws lane-by-lane; lane l draws (l+1) times per round, so
  // the lanes drift apart and cross their refill boundaries on different
  // rounds.
  for (std::size_t round = 0; round < 2 * kBlock; ++round) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t k = 0; k <= l; ++k) {
        if (round % 2 == 0) {
          ASSERT_EQ(lanes[l].Next(), direct[l].Next())
              << "lane " << l << " round " << round;
        } else {
          const auto bound = static_cast<std::uint32_t>(2 + (round + l) % 7);
          ASSERT_EQ(lanes[l].UniformBelow(bound),
                    direct[l].UniformBelow(bound))
              << "lane " << l << " round " << round;
        }
        ++served[l];
      }
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    // Served words = one per call plus one per rejection re-draw; both
    // figures must match the direct engine's exact consumption.
    EXPECT_EQ(lanes[l].stats().words,
              served[l] + lanes[l].stats().rejections)
        << "lane " << l;
  }
}

TEST(BlockDrawsTest, SkipWordsExactAcrossRefillBoundaries) {
  // The atlas memoizer fast-forwards replacement streams with SkipWords;
  // the skip must land on exactly the word a draw-by-draw consumer would
  // see next, for every alignment relative to the refill boundary —
  // including skips that cross several refills in one call.
  for (const std::uint64_t skip :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{kBlock - 6},
        std::uint64_t{kBlock - 5}, std::uint64_t{kBlock - 4},
        std::uint64_t{kBlock}, std::uint64_t{kBlock + 1},
        std::uint64_t{3 * kBlock + 7}}) {
    BlockDraws<HwPrng> reference{HwPrng(99)};
    BlockDraws<HwPrng> skipping{HwPrng(99)};
    // Misalign both streams off the block start first so the skip starts
    // mid-buffer.
    for (int i = 0; i < 5; ++i) {
      reference.Next();
      skipping.Next();
    }
    for (std::uint64_t i = 0; i < skip; ++i) reference.Next();
    skipping.SkipWords(skip);
    // The served-word counter must agree with the drawn stream exactly
    // (the memoizer's stats replay depends on it) ...
    ASSERT_EQ(skipping.stats().words, reference.stats().words)
        << "skip " << skip;
    // ... and so must the effective stream state.
    DualHash drawn, skipped;
    reference.AppendStateDigest(drawn);
    skipping.AppendStateDigest(skipped);
    ASSERT_TRUE(drawn == skipped) << "skip " << skip;
    for (int i = 0; i < 600; ++i) {
      ASSERT_EQ(reference.Next(), skipping.Next())
          << "skip " << skip << " word " << i;
    }
  }
}

TEST(BlockDrawsTest, AddRejectionsFoldsIntoStatsOnly) {
  BlockDraws<HwPrng> draws{HwPrng(7)};
  draws.Next();
  const std::uint64_t words_before = draws.stats().words;
  const std::uint64_t next_peek = [&] {
    BlockDraws<HwPrng> probe{HwPrng(7)};
    probe.Next();
    return probe.Next();
  }();
  draws.AddRejections(3);
  EXPECT_EQ(draws.stats().rejections, 3u);
  EXPECT_EQ(draws.stats().words, words_before);  // no words consumed
  EXPECT_EQ(draws.Next(), next_peek);            // stream untouched
}

TEST(BlockDrawsTest, RejectionThresholdMatchesDocumentedFormula) {
  for (std::uint32_t bound : {1u, 2u, 3u, 5u, 64u, 1000u, 0x80000000u}) {
    const std::uint64_t threshold = HwPrng::RejectionThreshold(bound);
    EXPECT_EQ(threshold, (0x1'0000'0000ULL / bound) * bound) << bound;
    EXPECT_EQ(threshold % bound, 0u) << bound;  // whole residue classes
    EXPECT_GT(threshold, 0x1'0000'0000ULL - bound);  // maximal acceptance
  }
}

}  // namespace
}  // namespace spta::prng
