// Tests for the set-associative cache model: hit/miss semantics, each
// replacement policy, each placement policy (including the random-modulo
// no-self-conflict guarantee), flush/reseed behavior.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/cache.hpp"

namespace spta::sim {
namespace {

CacheConfig SmallCache(Placement p, Replacement r) {
  // 8 sets x 2 ways x 32B lines = 512B: easy to reason about.
  return CacheConfig{512, 32, 2, p, r};
}

TEST(CacheTest, MissThenHitOnSameLine) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  EXPECT_FALSE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x101f));  // same 32B line
  EXPECT_FALSE(c.Access(0x1020)); // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheTest, AssociativityHoldsConflictingLines) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  // Two lines mapping to set 0 fit in 2 ways.
  const Address a = 0;
  const Address b = 8 * 32;  // same set (8 sets)
  c.Access(a);
  c.Access(b);
  EXPECT_TRUE(c.Access(a));
  EXPECT_TRUE(c.Access(b));
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  const Address a = 0;
  const Address b = 8 * 32;
  const Address d = 16 * 32;  // third line in set 0
  c.Access(a);
  c.Access(b);
  c.Access(a);  // a is now MRU
  c.Access(d);  // evicts b
  EXPECT_TRUE(c.Access(a));
  EXPECT_FALSE(c.Access(b));
}

TEST(CacheTest, NruEvictsUnreferenced) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kNru), 1);
  const Address a = 0;
  const Address b = 8 * 32;
  const Address d = 16 * 32;
  c.Access(a);
  c.Access(b);
  // All referenced; inserting d clears reference bits and evicts way 0 (a).
  c.Access(d);
  EXPECT_FALSE(c.Access(a));
}

TEST(CacheTest, NoAllocateLeavesCacheCold) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  EXPECT_FALSE(c.Access(0x40, /*allocate_on_miss=*/false));
  EXPECT_FALSE(c.Access(0x40, /*allocate_on_miss=*/false));
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheTest, WriteNoAllocateStillUpdatesOnHit) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  c.Access(0x40, true);
  EXPECT_TRUE(c.Access(0x40, false));
}

TEST(CacheTest, FlushInvalidatesEverything) {
  Cache c(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  for (Address a = 0; a < 512; a += 32) c.Access(a);
  c.Flush();
  EXPECT_FALSE(c.Access(0));
}

TEST(CacheTest, ModuloPlacementIsSeedInvariant) {
  Cache c1(SmallCache(Placement::kModulo, Replacement::kLru), 1);
  Cache c2(SmallCache(Placement::kModulo, Replacement::kLru), 999);
  for (Address a = 0; a < 64 * 32; a += 32) {
    EXPECT_EQ(c1.SetIndexFor(a), c2.SetIndexFor(a));
  }
  EXPECT_EQ(c1.SetIndexFor(0), 0u);
  EXPECT_EQ(c1.SetIndexFor(9 * 32), 1u);
}

TEST(CacheTest, RandomModuloDependsOnSeed) {
  Cache c1(SmallCache(Placement::kRandomModulo, Replacement::kLru), 1);
  Cache c2(SmallCache(Placement::kRandomModulo, Replacement::kLru), 2);
  int diffs = 0;
  for (Address a = 0; a < 64 * 32; a += 32) {
    diffs += c1.SetIndexFor(a) != c2.SetIndexFor(a);
  }
  EXPECT_GT(diffs, 10);
}

TEST(CacheTest, RandomModuloNeverSelfConflictsWithinTagGroup) {
  // The DAC-2016 property: lines sharing a tag map to DISTINCT sets, so a
  // unit-stride walk cannot evict itself. Check across many seeds.
  for (Seed seed = 0; seed < 50; ++seed) {
    Cache c(SmallCache(Placement::kRandomModulo, Replacement::kLru), seed);
    // One tag group = 8 consecutive lines (8 sets).
    std::set<std::uint32_t> sets;
    for (Address a = 0x4000; a < 0x4000 + 8 * 32; a += 32) {
      sets.insert(c.SetIndexFor(a));
    }
    EXPECT_EQ(sets.size(), 8u) << "seed " << seed;
  }
}

TEST(CacheTest, HashRandomCanSelfConflictButCoversSets) {
  // Hash placement trades the no-self-conflict guarantee for more mixing:
  // over many lines all sets get used.
  Cache c(SmallCache(Placement::kHashRandom, Replacement::kLru), 3);
  std::set<std::uint32_t> sets;
  for (Address a = 0; a < 1024 * 32; a += 32) {
    sets.insert(c.SetIndexFor(a));
  }
  EXPECT_EQ(sets.size(), 8u);
}

TEST(CacheTest, ReseedChangesMappingAndFlushes) {
  Cache c(SmallCache(Placement::kRandomModulo, Replacement::kRandom), 1);
  c.Access(0x1000);
  std::vector<std::uint32_t> before;
  for (Address a = 0; a < 32 * 32; a += 32) before.push_back(c.SetIndexFor(a));
  c.Reseed(12345);
  EXPECT_FALSE(c.Access(0x1000));  // flushed
  int diffs = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    diffs += before[i] != c.SetIndexFor(static_cast<Address>(i) * 32);
  }
  EXPECT_GT(diffs, 5);
}

TEST(CacheTest, RandomReplacementIsSeedDeterministic) {
  const auto run = [](Seed s) {
    Cache c(SmallCache(Placement::kModulo, Replacement::kRandom), s);
    std::uint64_t misses = 0;
    // Three conflicting lines in a 2-way set force constant evictions.
    for (int i = 0; i < 300; ++i) {
      misses += !c.Access(static_cast<Address>(i % 3) * 8 * 32);
    }
    return misses;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(CacheTest, RandomReplacementVariesAcrossSeeds) {
  std::set<std::uint64_t> distinct;
  for (Seed s = 0; s < 10; ++s) {
    Cache c(SmallCache(Placement::kModulo, Replacement::kRandom), s);
    std::uint64_t misses = 0;
    for (int i = 0; i < 300; ++i) {
      misses += !c.Access(static_cast<Address>(i % 3) * 8 * 32);
    }
    distinct.insert(misses);
  }
  EXPECT_GT(distinct.size(), 3u);
}

TEST(CacheTest, MissesNeverExceedAccesses) {
  Cache c(SmallCache(Placement::kHashRandom, Replacement::kRandom), 9);
  for (Address a = 0; a < 4096; a += 4) c.Access(a);
  EXPECT_LE(c.stats().misses, c.stats().accesses);
  EXPECT_EQ(c.stats().accesses, 1024u);
}

TEST(CacheTest, Leon3GeometryIsPaperSpec) {
  const CacheConfig cfg{16 * 1024, 32, 4, Placement::kModulo,
                        Replacement::kLru};
  EXPECT_EQ(cfg.num_sets(), 128u);
}

// Property sweep over all placement x replacement combinations: basic
// invariants must hold for every policy pairing.
struct PolicyCase {
  Placement placement;
  Replacement replacement;
};

class CachePolicySweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(CachePolicySweep, WorkingSetSmallerThanCacheEventuallyAllHits) {
  const auto [pl, re] = GetParam();
  Cache c(CacheConfig{4096, 32, 4, pl, re}, 5);
  // 16 lines in a 128-line cache; for random-modulo and modulo a contiguous
  // region never self-conflicts; for hash placement collisions can occur
  // but 16 lines in 32 sets x 4 ways virtually never exceed a set.
  for (int pass = 0; pass < 3; ++pass) {
    for (Address a = 0; a < 16 * 32; a += 32) c.Access(a);
  }
  // After warm-up, misses are only the 16 cold ones (allow 4 collisions
  // worth of slack for hash placement).
  EXPECT_LE(c.stats().misses, 20u);
}

TEST_P(CachePolicySweep, SetIndexAlwaysInRange) {
  const auto [pl, re] = GetParam();
  Cache c(CacheConfig{2048, 32, 2, pl, re}, 77);
  for (Address a = 0; a < 1 << 20; a += 4093) {
    EXPECT_LT(c.SetIndexFor(a), c.config().num_sets());
  }
}

TEST_P(CachePolicySweep, DeterministicGivenSeed) {
  const auto [pl, re] = GetParam();
  const auto run = [&](Seed s) {
    Cache c(CacheConfig{1024, 32, 2, pl, re}, s);
    std::uint64_t misses = 0;
    for (int i = 0; i < 2000; ++i) {
      misses += !c.Access(static_cast<Address>((i * 7919) % 4096) & ~31ULL);
    }
    return misses;
  };
  EXPECT_EQ(run(3), run(3));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CachePolicySweep,
    ::testing::Values(
        PolicyCase{Placement::kModulo, Replacement::kLru},
        PolicyCase{Placement::kModulo, Replacement::kRandom},
        PolicyCase{Placement::kModulo, Replacement::kNru},
        PolicyCase{Placement::kRandomModulo, Replacement::kLru},
        PolicyCase{Placement::kRandomModulo, Replacement::kRandom},
        PolicyCase{Placement::kRandomModulo, Replacement::kNru},
        PolicyCase{Placement::kHashRandom, Replacement::kLru},
        PolicyCase{Placement::kHashRandom, Replacement::kRandom},
        PolicyCase{Placement::kHashRandom, Replacement::kNru}));

}  // namespace
}  // namespace spta::sim
