// Crash-safe campaign checkpointing (analysis/checkpoint.*) and atomic
// file publication (common/atomic_file.*): journal round trips, torn-line
// tolerance, alien-journal refusal, and the headline guarantee — kill a
// campaign at an arbitrary point, --resume it, and the samples (hence the
// pWCET) are bit-identical to an uninterrupted campaign.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checkpoint.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "common/atomic_file.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/config.hpp"

namespace {

using namespace spta;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "spta_ckpt_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".ckpt";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static std::string Slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  static void Dump(const std::string& p, const std::string& contents) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  static analysis::RunSample MakeSample(std::uint64_t i) {
    analysis::RunSample s;
    s.cycles = 1000.0 + static_cast<double>(i * 13);
    s.path_id = static_cast<std::uint32_t>(i % 5);
    s.detail.cycles = static_cast<Cycles>(s.cycles);
    s.detail.instructions = 100 + i;
    s.detail.il1.accesses = 10 * i;
    s.detail.il1.misses = i;
    s.detail.dram.accesses = i + 1;
    return s;
  }

  std::string path_;
};

TEST_F(CheckpointTest, JournalRoundTripRestoresEveryField) {
  analysis::CheckpointHeader header;
  header.campaign_seed = 42;
  header.runs = 8;
  header.distinct_scenarios = 3;
  header.workload_digest = analysis::TvcaWorkloadDigest();

  analysis::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(journal.OpenNew(path_, header, /*fsync_interval=*/1, &error))
      << error;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(journal.Append(i, MakeSample(i), &error)) << error;
  }
  ASSERT_TRUE(journal.Close(&error)) << error;

  analysis::CheckpointLoad load;
  ASSERT_TRUE(analysis::LoadCheckpoint(path_, &load, &error)) << error;
  EXPECT_EQ(load.header.campaign_seed, 42u);
  EXPECT_EQ(load.header.runs, 8u);
  EXPECT_EQ(load.header.distinct_scenarios, 3u);
  EXPECT_EQ(load.header.workload_digest, analysis::TvcaWorkloadDigest());
  EXPECT_EQ(load.completed, 8u);
  EXPECT_EQ(load.torn_lines, 0u);
  ASSERT_EQ(load.samples.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(load.samples[i].has_value()) << "run " << i;
    const auto& s = *load.samples[i];
    const auto expect = MakeSample(i);
    EXPECT_EQ(s.cycles, expect.cycles);
    EXPECT_EQ(s.path_id, expect.path_id);
    EXPECT_EQ(s.detail.instructions, expect.detail.instructions);
    EXPECT_EQ(s.detail.il1.accesses, expect.detail.il1.accesses);
    EXPECT_EQ(s.detail.il1.misses, expect.detail.il1.misses);
    EXPECT_EQ(s.detail.dram.accesses, expect.detail.dram.accesses);
  }
}

TEST_F(CheckpointTest, TornFinalLineIsDroppedNotHalfIngested) {
  analysis::CheckpointHeader header;
  header.campaign_seed = 1;
  header.runs = 4;
  header.workload_digest = analysis::TvcaWorkloadDigest();

  analysis::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(journal.OpenNew(path_, header, 1, &error));
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(journal.Append(i, MakeSample(i), &error));
  }
  ASSERT_TRUE(journal.Close(&error));

  // Crash mid-write: the last line loses its tail (checksum included).
  std::string contents = Slurp(path_);
  Dump(path_, contents.substr(0, contents.size() - 9));

  analysis::CheckpointLoad load;
  ASSERT_TRUE(analysis::LoadCheckpoint(path_, &load, &error)) << error;
  EXPECT_EQ(load.torn_lines, 1u);
  EXPECT_EQ(load.completed, 3u);
  EXPECT_FALSE(load.samples[3].has_value());
  EXPECT_TRUE(load.samples[2].has_value());
}

TEST_F(CheckpointTest, InteriorBitRotIsDetectedByTheLineChecksum) {
  analysis::CheckpointHeader header;
  header.campaign_seed = 1;
  header.runs = 4;
  header.workload_digest = analysis::TvcaWorkloadDigest();

  analysis::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(journal.OpenNew(path_, header, 1, &error));
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(journal.Append(i, MakeSample(i), &error));
  }
  ASSERT_TRUE(journal.Close(&error));

  // Corrupt one digit inside run 1's record (keep line structure intact).
  std::string contents = Slurp(path_);
  std::size_t line_start = contents.find("\nrun 1 ") + 1;
  std::size_t digit = contents.find_first_of("0123456789", line_start + 6);
  contents[digit] = contents[digit] == '9' ? '8' : '9';
  Dump(path_, contents);

  analysis::CheckpointLoad load;
  ASSERT_TRUE(analysis::LoadCheckpoint(path_, &load, &error)) << error;
  EXPECT_EQ(load.torn_lines, 1u);
  EXPECT_FALSE(load.samples[1].has_value());
  EXPECT_TRUE(load.samples[0].has_value());
  EXPECT_TRUE(load.samples[2].has_value());
}

TEST_F(CheckpointTest, DamagedHeaderFailsTheWholeLoad) {
  analysis::CheckpointHeader header;
  header.campaign_seed = 1;
  header.runs = 2;
  header.workload_digest = analysis::TvcaWorkloadDigest();
  analysis::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(journal.OpenNew(path_, header, 1, &error));
  ASSERT_TRUE(journal.Close(&error));

  std::string contents = Slurp(path_);
  contents[2] = 'X';  // inside the magic/header line
  Dump(path_, contents);

  analysis::CheckpointLoad load;
  EXPECT_FALSE(analysis::LoadCheckpoint(path_, &load, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(CheckpointTest, ResumeRefusesAnAlienJournal) {
  const auto config = sim::DetLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 6;
  cc.master_seed = 100;

  analysis::CheckpointOptions opts;
  opts.journal_path = path_;
  analysis::CheckpointedCampaignResult result;
  std::string error;
  ASSERT_TRUE(analysis::RunTvcaCampaignCheckpointed(config, app, cc, 1, opts,
                                                    &result, &error))
      << error;
  ASSERT_TRUE(result.completed);

  // Same journal, different campaign seed: refuse, don't mix samples.
  cc.master_seed = 101;
  opts.resume = true;
  EXPECT_FALSE(analysis::RunTvcaCampaignCheckpointed(config, app, cc, 1, opts,
                                                     &result, &error));
  EXPECT_NE(error.find("journal"), std::string::npos) << error;
}

TEST_F(CheckpointTest, CheckpointedRunMatchesThePlainParallelRunner) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 24;
  cc.master_seed = 555;

  const auto plain = analysis::RunTvcaCampaignParallel(config, app, cc, 2);

  analysis::CheckpointOptions opts;
  opts.journal_path = path_;
  analysis::CheckpointedCampaignResult result;
  std::string error;
  ASSERT_TRUE(analysis::RunTvcaCampaignCheckpointed(config, app, cc, 2, opts,
                                                    &result, &error))
      << error;
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.samples.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(result.samples[i].cycles, plain[i].cycles) << "run " << i;
    EXPECT_EQ(result.samples[i].path_id, plain[i].path_id) << "run " << i;
  }
}

TEST_F(CheckpointTest, ResumingACompleteJournalReExecutesNothing) {
  const auto config = sim::DetLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 10;
  cc.master_seed = 2;

  analysis::CheckpointOptions opts;
  opts.journal_path = path_;
  analysis::CheckpointedCampaignResult first;
  std::string error;
  ASSERT_TRUE(analysis::RunTvcaCampaignCheckpointed(config, app, cc, 1, opts,
                                                    &first, &error));
  ASSERT_TRUE(first.completed);

  opts.resume = true;
  analysis::CheckpointedCampaignResult second;
  ASSERT_TRUE(analysis::RunTvcaCampaignCheckpointed(config, app, cc, 1, opts,
                                                    &second, &error));
  EXPECT_TRUE(second.completed);
  EXPECT_EQ(second.resumed_runs, 10u);
  ASSERT_EQ(second.samples.size(), first.samples.size());
  for (std::size_t i = 0; i < first.samples.size(); ++i) {
    EXPECT_EQ(second.samples[i].cycles, first.samples[i].cycles);
  }
}

// The headline crash-safety guarantee, for three different campaign seeds:
// kill the campaign partway (the deterministic abort hook models SIGKILL
// at an arbitrary point — whatever made it to the journal is all that
// survives), resume, and require the final sample AND the fitted pWCET to
// be bit-identical to an uninterrupted campaign.
TEST_F(CheckpointTest, KillAndResumeIsBitIdenticalAcrossSeeds) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);
  const std::size_t runs = 45;

  for (const std::uint64_t seed : {909ULL, 1717ULL, 31415ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto uninterrupted = analysis::RunFixedTraceCampaignParallel(
        config, frame.trace, runs, seed, /*jobs=*/2);

    // Phase 1: "crash" after a seed-dependent number of appends.
    analysis::CheckpointOptions opts;
    opts.journal_path = path_;
    opts.abort_after_appends = 7 + static_cast<std::size_t>(seed % 23);
    analysis::CheckpointedCampaignResult crashed;
    std::string error;
    ASSERT_TRUE(analysis::RunFixedTraceCampaignCheckpointed(
        config, frame.trace, runs, seed, /*jobs=*/2, opts, &crashed, &error))
        << error;
    EXPECT_FALSE(crashed.completed);

    // Phase 2: resume from the journal, no abort.
    opts.abort_after_appends = 0;
    opts.resume = true;
    analysis::CheckpointedCampaignResult resumed;
    ASSERT_TRUE(analysis::RunFixedTraceCampaignCheckpointed(
        config, frame.trace, runs, seed, /*jobs=*/2, opts, &resumed, &error))
        << error;
    ASSERT_TRUE(resumed.completed);
    EXPECT_GT(resumed.resumed_runs, 0u);
    EXPECT_LT(resumed.resumed_runs, runs);

    ASSERT_EQ(resumed.samples.size(), uninterrupted.size());
    std::vector<double> times_resumed, times_plain;
    for (std::size_t i = 0; i < runs; ++i) {
      ASSERT_EQ(resumed.samples[i].cycles, uninterrupted[i].cycles)
          << "run " << i;
      times_resumed.push_back(resumed.samples[i].cycles);
      times_plain.push_back(uninterrupted[i].cycles);
    }

    // Identical samples must fit an identical pWCET — compare the actual
    // quantiles, not just the inputs.
    mbpta::MbptaOptions mopts;
    mopts.min_blocks = 10;
    mopts.require_iid = false;  // equality of the fit is the point here
    const auto a = mbpta::AnalyzeSample(times_resumed, mopts);
    const auto b = mbpta::AnalyzeSample(times_plain, mopts);
    ASSERT_TRUE(a.curve.has_value());
    ASSERT_TRUE(b.curve.has_value());
    for (const double p : {1e-3, 1e-9, 1e-15}) {
      EXPECT_EQ(a.curve->QuantileForExceedance(p),
                b.curve->QuantileForExceedance(p));
    }

    std::remove(path_.c_str());
  }
}

// --- atomic file publication ---------------------------------------------

TEST(AtomicFile, WritesContentAndLeavesNoTempBehind) {
  const std::string path = ::testing::TempDir() + "spta_atomic_test.txt";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "hello\nworld\n", &error)) << error;
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "hello\nworld\n");

  // Overwrite must be atomic too (rename over the old file).
  ASSERT_TRUE(AtomicWriteFile(path, "v2", &error)) << error;
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_EQ(ss2.str(), "v2");
  std::remove(path.c_str());
}

TEST(AtomicFile, FailsCleanlyOnAnUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(AtomicWriteFile("/nonexistent-dir/x/y.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, AnnotatedCsvExportRoundTripsWithDigest) {
  const std::string path = ::testing::TempDir() + "spta_atomic_samples.csv";
  std::vector<analysis::RunSample> samples;
  for (std::uint64_t i = 0; i < 40; ++i) {
    analysis::RunSample s;
    s.cycles = 2000.0 + static_cast<double>(i * 7);
    s.path_id = static_cast<std::uint32_t>(i % 2);
    samples.push_back(s);
  }
  std::string error;
  ASSERT_TRUE(
      analysis::WriteSamplesCsvFileAtomic(path, samples, /*faults=*/0, &error))
      << error;

  std::ifstream in(path);
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error))
      << error;
  ASSERT_TRUE(meta.digest.has_value());
  EXPECT_EQ(*meta.digest, analysis::ObservationsDigest(readback));
  EXPECT_EQ(meta.faults, 0u);
  EXPECT_EQ(readback.size(), samples.size());
  std::remove(path.c_str());
}

}  // namespace
