// End-to-end tests of the spta_cli BINARY (process-level): campaign ->
// CSV -> analyze/convergence round trips, usage errors, exit codes.
// The binary path is injected at build time via SPTA_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string CliPath() { return SPTA_CLI_PATH; }

int RunCli(const std::string& args, const std::string& stdout_file = "") {
  std::string cmd = CliPath() + " " + args;
  if (!stdout_file.empty()) cmd += " > " + stdout_file;
  cmd += " 2> /dev/null";
  const int rc = std::system(cmd.c_str());
  return WEXITSTATUS(rc);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CliBinaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_ = ::testing::TempDir() + "spta_cli_test_samples.csv";
  }
  void TearDown() override { std::remove(csv_.c_str()); }
  std::string csv_;
};

TEST_F(CliBinaryTest, NoArgumentsPrintsUsageAndFails) {
  EXPECT_EQ(RunCli(""), 2);
  EXPECT_EQ(RunCli("frobnicate"), 2);
}

TEST_F(CliBinaryTest, CampaignWritesWellFormedCsv) {
  ASSERT_EQ(RunCli("campaign --platform det --runs 60 --seed 3 --output " +
                   csv_),
            0);
  const std::string content = Slurp(csv_);
  EXPECT_EQ(content.rfind("cycles,path_id\n", 0), 0u);
  // Header + 60 data lines.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 61);
}

// The observability acceptance path: one campaign, three artifacts. The
// sample CSV must be byte-identical to a run without the obs flags, the
// trace must be a Chrome/Perfetto trace_event document, and the counter
// CSV must carry one row per run plus the aggregate JSON sidecar.
TEST_F(CliBinaryTest, CampaignObsFlagsProduceTraceAndCounters) {
  const std::string trace_json = ::testing::TempDir() + "spta_cli_trace.json";
  const std::string counters = ::testing::TempDir() + "spta_cli_counters.csv";
  const std::string plain_csv = ::testing::TempDir() + "spta_cli_plain.csv";
  ASSERT_EQ(RunCli("campaign --platform rand --runs 40 --seed 7 --output " +
                   csv_ + " --trace-out " + trace_json + " --counters-out " +
                   counters),
            0);
  ASSERT_EQ(
      RunCli("campaign --platform rand --runs 40 --seed 7 --output " +
             plain_csv),
      0);
  EXPECT_EQ(Slurp(csv_), Slurp(plain_csv));  // obs flags never touch data

  const std::string trace = Slurp(trace_json);
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"name\":\"tvca_campaign_parallel\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string counter_csv = Slurp(counters);
  EXPECT_NE(counter_csv.find("run,path_id,cycles,"), std::string::npos);
  // Comment + header + 40 rows.
  EXPECT_EQ(std::count(counter_csv.begin(), counter_csv.end(), '\n'), 42);
  const std::string aggregate = Slurp(counters + ".summary.json");
  EXPECT_NE(aggregate.find("\"runs\": 40"), std::string::npos);
  EXPECT_NE(aggregate.find("\"il1_misses\": "), std::string::npos);

  std::remove(trace_json.c_str());
  std::remove(counters.c_str());
  std::remove((counters + ".summary.json").c_str());
  std::remove(plain_csv.c_str());
}

TEST_F(CliBinaryTest, AnalyzeRoundTripSucceeds) {
  ASSERT_EQ(RunCli("campaign --platform rand --runs 250 --seed 9 --output " +
                   csv_),
            0);
  const std::string out = ::testing::TempDir() + "spta_cli_analyze.txt";
  EXPECT_EQ(RunCli("analyze --input " + csv_ + " --per-path", out), 0);
  const std::string report = Slurp(out);
  EXPECT_NE(report.find("Ljung-Box"), std::string::npos);
  EXPECT_NE(report.find("pWCET"), std::string::npos);
  EXPECT_NE(report.find("path coverage"), std::string::npos);
  std::remove(out.c_str());
}

TEST_F(CliBinaryTest, AnalyzeRejectsTinySample) {
  std::ofstream(csv_) << "cycles,path_id\n100,0\n101,0\n";
  EXPECT_EQ(RunCli("analyze --input " + csv_), 2);
}

TEST_F(CliBinaryTest, AnalyzeRejectsMissingFile) {
  EXPECT_EQ(RunCli("analyze --input /nonexistent/nope.csv"), 2);
}

// --batch-lanes must not perturb the sample: the batched CSV is
// byte-identical to the serial runner's, for the checkpointed path too.
TEST_F(CliBinaryTest, BatchLanesCsvIsByteIdenticalToSerial) {
  const std::string batched = ::testing::TempDir() + "spta_cli_batched.csv";
  const std::string serial_ctr = ::testing::TempDir() + "spta_cli_serial_ctr";
  const std::string batched_ctr =
      ::testing::TempDir() + "spta_cli_batched_ctr";
  ASSERT_EQ(RunCli("campaign --platform rand --runs 48 --seed 11 "
                   "--scenarios 6 --jobs 2 --counters-out " +
                   serial_ctr + " --output " + csv_),
            0);
  ASSERT_EQ(RunCli("campaign --platform rand --runs 48 --seed 11 "
                   "--scenarios 6 --jobs 2 --batch-lanes 8 --counters-out " +
                   batched_ctr + " --output " + batched),
            0);
  EXPECT_EQ(Slurp(batched), Slurp(csv_));
  // The per-run microarchitectural counters flatten RunResult.detail — so
  // the batched kernel's per-lane counters must match row for row too.
  EXPECT_EQ(Slurp(batched_ctr), Slurp(serial_ctr));
  EXPECT_NE(Slurp(serial_ctr).find("il1_misses"), std::string::npos);
  for (const auto& f : {batched, serial_ctr, batched_ctr,
                        serial_ctr + ".summary.json",
                        batched_ctr + ".summary.json"}) {
    std::remove(f.c_str());
  }
}

TEST_F(CliBinaryTest, BatchLanesRejectsFaultFlagsAndBadRange) {
  EXPECT_EQ(RunCli("campaign --platform rand --runs 4 --batch-lanes 8 "
                   "--seu-rate 0.001"),
            2);
  EXPECT_EQ(RunCli("campaign --platform rand --runs 4 --batch-lanes 99"), 2);
  EXPECT_EQ(RunCli("campaign --platform rand --runs 4 --batch-lanes -1"), 2);
}

TEST_F(CliBinaryTest, ConvergenceRunsOnCampaignOutput) {
  ASSERT_EQ(RunCli("campaign --platform rand --runs 450 --seed 4 --output " +
                   csv_),
            0);
  const std::string out = ::testing::TempDir() + "spta_cli_conv.txt";
  const int rc = RunCli(
      "convergence --input " + csv_ + " --initial 150 --step 150 --tol 0.05",
      out);
  const std::string report = Slurp(out);
  EXPECT_NE(report.find("converged:"), std::string::npos);
  EXPECT_TRUE(rc == 0 || rc == 1);  // converged or honestly not
  std::remove(out.c_str());
}

}  // namespace
