// Tests for the CLI-supporting libraries: flag parsing, sample CSV
// import/export, and the Good-Turing path-coverage estimator.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/sample_io.hpp"
#include "common/flags.hpp"
#include "mbpta/path_coverage.hpp"
#include "prng/xoshiro.hpp"

namespace spta {
namespace {

Flags MakeFlags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, KeyValuePairs) {
  const auto f = MakeFlags({"--runs", "500", "--platform", "det"});
  EXPECT_EQ(f.GetInt("runs", 0), 500);
  EXPECT_EQ(f.GetString("platform"), "det");
  EXPECT_FALSE(f.Has("seed"));
  EXPECT_EQ(f.GetInt("seed", 42), 42);
}

TEST(FlagsTest, EqualsSyntaxAndBooleans) {
  const auto f = MakeFlags({"--alpha=0.01", "--per-path", "--quiet", "false"});
  EXPECT_DOUBLE_EQ(f.GetDouble("alpha", 0.0), 0.01);
  EXPECT_TRUE(f.GetBool("per-path"));
  EXPECT_FALSE(f.GetBool("quiet", true));
}

TEST(FlagsTest, PositionalArguments) {
  const auto f = MakeFlags({"analyze", "--input", "x.csv", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "analyze");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, UnknownFlagDetection) {
  const auto f = MakeFlags({"--runs", "5", "--tpyo", "1"});
  const auto unknown = f.UnknownFlags({"runs", "seed"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(FlagsDeathTest, NonNumericIntRejected) {
  const auto f = MakeFlags({"--runs", "many"});
  EXPECT_DEATH(f.GetInt("runs", 0), "expects an integer");
}

TEST(SampleIoTest, RoundTrip) {
  std::vector<analysis::RunSample> samples(3);
  samples[0].cycles = 100.0;
  samples[0].path_id = 1;
  samples[1].cycles = 250.0;
  samples[1].path_id = 0;
  samples[2].cycles = 175.0;
  samples[2].path_id = 7;
  std::stringstream ss;
  analysis::WriteSamplesCsv(ss, samples);
  const auto obs = analysis::ReadSamplesCsv(ss);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_DOUBLE_EQ(obs[0].time, 100.0);
  EXPECT_EQ(obs[0].path_id, 1u);
  EXPECT_EQ(obs[2].path_id, 7u);
}

TEST(SampleIoTest, AcceptsCommentsBlanksAndMissingPath) {
  std::stringstream ss("# comment\n\n1000\n2000, 3\n  1500 \n");
  const auto obs = analysis::ReadSamplesCsv(ss);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[0].path_id, 0u);
  EXPECT_EQ(obs[1].path_id, 3u);
  EXPECT_DOUBLE_EQ(obs[2].time, 1500.0);
}

TEST(SampleIoTest, HeaderLineTolerated) {
  std::stringstream ss("cycles,path_id\n123,4\n");
  const auto obs = analysis::ReadSamplesCsv(ss);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].time, 123.0);
}

TEST(SampleIoDeathTest, MalformedNumberMidFileRejected) {
  std::stringstream ss("100\nnot-a-number\n");
  EXPECT_DEATH(analysis::ReadSamplesCsv(ss), "bad number");
}

TEST(PathCoverageTest, SinglePathHasFullCoverage) {
  std::vector<mbpta::PathObservation> obs(100, {0, 1.0});
  const auto r = mbpta::EstimatePathCoverage(obs);
  EXPECT_EQ(r.observed_paths, 1u);
  EXPECT_EQ(r.singleton_paths, 0u);
  EXPECT_DOUBLE_EQ(r.missing_mass, 0.0);
  EXPECT_TRUE(r.SufficientFor(1e-12));
}

TEST(PathCoverageTest, AllUniquePathsMeanNoCoverage) {
  std::vector<mbpta::PathObservation> obs;
  for (std::uint64_t i = 0; i < 50; ++i) obs.push_back({i, 1.0});
  const auto r = mbpta::EstimatePathCoverage(obs);
  EXPECT_EQ(r.observed_paths, 50u);
  EXPECT_EQ(r.singleton_paths, 50u);
  EXPECT_DOUBLE_EQ(r.missing_mass, 1.0);
  EXPECT_FALSE(r.SufficientFor(0.5));
}

TEST(PathCoverageTest, MixedCounts) {
  // Paths: 0 seen 3x, 1 seen 1x, 2 seen 1x -> missing mass 2/5.
  std::vector<mbpta::PathObservation> obs = {
      {0, 1.0}, {0, 1.0}, {0, 1.0}, {1, 1.0}, {2, 1.0}};
  const auto r = mbpta::EstimatePathCoverage(obs);
  EXPECT_EQ(r.observed_paths, 3u);
  EXPECT_EQ(r.singleton_paths, 2u);
  EXPECT_DOUBLE_EQ(r.missing_mass, 0.4);
  EXPECT_DOUBLE_EQ(r.coverage, 0.6);
}

TEST(PathCoverageTest, EstimatorTracksTruthOnSyntheticDistribution) {
  // Zipf-ish path distribution: measure empirically that the estimator is
  // in the right ballpark of the true unseen mass.
  std::vector<double> probs = {0.5, 0.25, 0.12, 0.06, 0.03, 0.02,
                               0.01, 0.005, 0.003, 0.002};
  prng::Xoshiro128pp rng(3);
  std::vector<mbpta::PathObservation> obs;
  std::vector<bool> seen(probs.size(), false);
  for (int i = 0; i < 200; ++i) {
    double u = rng.UniformUnit();
    std::uint64_t path = 0;
    for (std::size_t p = 0; p < probs.size(); ++p) {
      if (u < probs[p]) {
        path = p;
        break;
      }
      u -= probs[p];
      path = p;
    }
    seen[path] = true;
    obs.push_back({path, 1.0});
  }
  double true_unseen = 0.0;
  for (std::size_t p = 0; p < probs.size(); ++p) {
    if (!seen[p]) true_unseen += probs[p];
  }
  const auto r = mbpta::EstimatePathCoverage(obs);
  EXPECT_NEAR(r.missing_mass, true_unseen, 0.05);
}

}  // namespace
}  // namespace spta
