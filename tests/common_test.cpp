// Unit tests for the common utilities: contracts, hashing, CSV, tables,
// histograms.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace spta {
namespace {

TEST(AssertTest, CheckPassesOnTrueCondition) {
  SPTA_CHECK(1 + 1 == 2);
  SPTA_REQUIRE(true);
  SUCCEED();
}

TEST(AssertDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ SPTA_CHECK_MSG(false, "ctx " << 42); }, "invariant");
}

TEST(AssertDeathTest, RequireAbortsWithMessage) {
  EXPECT_DEATH({ SPTA_REQUIRE(2 < 1); }, "precondition");
}

TEST(TypesTest, PhaseNames) {
  EXPECT_STREQ(ToString(Phase::kAnalysis), "analysis");
  EXPECT_STREQ(ToString(Phase::kOperation), "operation");
}

TEST(HashTest, Mix64IsDeterministicAndBijectiveish) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  // Distinct inputs map to distinct outputs (spot check bijectivity).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, DeriveSeedDecorrelatesIndices) {
  const std::uint64_t a = DeriveSeed(7, std::uint64_t{0});
  const std::uint64_t b = DeriveSeed(7, std::uint64_t{1});
  EXPECT_NE(a, b);
  // Different masters give different streams.
  EXPECT_NE(DeriveSeed(7, std::uint64_t{0}), DeriveSeed(8, std::uint64_t{0}));
}

TEST(HashTest, DeriveSeedByTag) {
  EXPECT_NE(DeriveSeed(1, "il1"), DeriveSeed(1, "dl1"));
  EXPECT_EQ(DeriveSeed(1, "il1"), DeriveSeed(1, "il1"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  const auto ab = HashCombine(HashCombine(0, 1), 2);
  const auto ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(CsvTest, QuotingRules) {
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesHeaderAndRows) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.Header({"name", "value"});
  w.BeginRow();
  w.Field(std::string("x"));
  w.Field(1.5, 3);
  w.EndRow();
  w.Row({"y", "2"});
  EXPECT_EQ(oss.str(), "name,value\nx,1.5\ny,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvDeathTest, FieldOutsideRowIsRejected) {
  std::ostringstream oss;
  CsvWriter w(oss);
  EXPECT_DEATH(w.Field(std::string("oops")), "precondition");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.AddRow({"xxxx", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxx | 1           |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableDeathTest, WrongArityRejected) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "precondition");
}

TEST(TableTest, FormatProbNormalizesExponent) {
  EXPECT_EQ(FormatProb(1e-12), "1e-12");
  EXPECT_EQ(FormatProb(1e-3), "1e-3");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatF(1.25, 1), "1.2");  // round-to-even
  EXPECT_EQ(FormatG(123456.0, 3), "1.23e+05");
}

TEST(HistogramTest, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_DOUBLE_EQ(h.Density(0), 1.0 / 3.0);
}

TEST(HistogramTest, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(HistogramTest, FromSampleCoversExtremes) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::FromSample(xs, 4);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(HistogramTest, ConstantSampleDoesNotCrash) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  const Histogram h = Histogram::FromSample(xs, 3);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, AsciiRendersEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  const std::string art = h.Ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace spta
