// Tests for the disassembler and the PPCC goodness-of-fit statistic.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "apps/tvca.hpp"
#include "evt/gof.hpp"
#include "evt/gumbel.hpp"
#include "prng/xoshiro.hpp"
#include "trace/disasm.hpp"

namespace spta {
namespace {

TEST(DisasmTest, ListingContainsBlocksDataAndMnemonics) {
  const auto p = apps::MakeCrcProgram(16);
  const std::string listing = trace::Disassemble(p);
  EXPECT_NE(listing.find("program 'crc'"), std::string::npos);
  EXPECT_NE(listing.find("table[256] i32"), std::string::npos);
  EXPECT_NE(listing.find(".B0:"), std::string::npos);
  EXPECT_NE(listing.find("ldi"), std::string::npos);
  EXPECT_NE(listing.find("ixor"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
  // Every static instruction appears as a line with its address.
  EXPECT_NE(listing.find("0x40000000"), std::string::npos);
}

TEST(DisasmTest, BranchTargetsRendered) {
  const auto p = apps::MakeBubbleSortProgram(8);
  const std::string listing = trace::Disassemble(p);
  EXPECT_NE(listing.find("brz"), std::string::npos);
  EXPECT_NE(listing.find("jmp .B"), std::string::npos);
}

TEST(DisasmTest, FpProgramRendersFpMnemonics) {
  const auto p = apps::MakeAttitudeProgram(2);
  const std::string listing = trace::Disassemble(p);
  EXPECT_NE(listing.find("fsqrt"), std::string::npos);
  EXPECT_NE(listing.find("fdiv"), std::string::npos);
  EXPECT_NE(listing.find("ldf"), std::string::npos);
  EXPECT_NE(listing.find("stf"), std::string::npos);
}

TEST(DisasmTest, TvcaProgramsDisassembleWithoutAborting) {
  const apps::TvcaApp app;
  for (const auto task :
       {apps::TvcaTask::kSensorAcq, apps::TvcaTask::kActuatorX,
        apps::TvcaTask::kActuatorY}) {
    const std::string listing = trace::Disassemble(app.program(task));
    EXPECT_GT(listing.size(), 1000u);
  }
}

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  evt::GumbelDist d{mu, beta};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

TEST(PpccTest, NearOneForTrueModel) {
  const auto xs = GumbelSample(100.0, 5.0, 1000, 3);
  const auto fit = evt::FitGumbelMle(xs);
  EXPECT_GT(evt::Ppcc(xs, fit), 0.995);
}

TEST(PpccTest, DegradesForWrongDistribution) {
  // Uniform data dressed as Gumbel: correlation visibly below the
  // true-model case.
  prng::Xoshiro128pp rng(4);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.UniformUnit();
  const auto fit = evt::FitGumbelMle(xs);
  const double ppcc_uniform = evt::Ppcc(xs, fit);
  const auto good = GumbelSample(0.5, 0.1, 1000, 5);
  const double ppcc_good = evt::Ppcc(good, evt::FitGumbelMle(good));
  EXPECT_LT(ppcc_uniform, ppcc_good);
  EXPECT_LT(ppcc_uniform, 0.99);
}

TEST(PpccTest, InvariantToLocationScale) {
  // PPCC is a correlation: unchanged by affine rescaling of the data when
  // the model is refitted.
  const auto xs = GumbelSample(0.0, 1.0, 500, 6);
  std::vector<double> scaled(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    scaled[i] = 1e6 + 1e3 * xs[i];
  }
  const double a = evt::Ppcc(xs, evt::FitGumbelMle(xs));
  const double b = evt::Ppcc(scaled, evt::FitGumbelMle(scaled));
  EXPECT_NEAR(a, b, 1e-9);
}

}  // namespace
}  // namespace spta
