// Tests for the EVT layer: distributions, fitting (parameter recovery on
// synthetic data), block maxima, PoT, the pWCET curve and goodness-of-fit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "evt/block_maxima.hpp"
#include "evt/gev.hpp"
#include "evt/gof.hpp"
#include "evt/gpd.hpp"
#include "evt/gumbel.hpp"
#include "evt/pwcet.hpp"
#include "prng/xoshiro.hpp"

namespace spta::evt {
namespace {

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  std::vector<double> xs(n);
  GumbelDist d{mu, beta};
  for (auto& x : xs) {
    double u = rng.UniformUnit();
    if (u <= 0.0) u = 1e-12;
    x = d.Quantile(u);
  }
  return xs;
}

TEST(GumbelTest, CdfQuantileRoundTrip) {
  const GumbelDist d{10.0, 2.0};
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.999, 1e-9}) {
    EXPECT_NEAR(d.Cdf(d.Quantile(p)), p, 1e-9);
  }
}

TEST(GumbelTest, CdfMonotoneAndBounded) {
  const GumbelDist d{0.0, 1.0};
  double prev = 0.0;
  for (double x = -5.0; x <= 10.0; x += 0.25) {
    const double c = d.Cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(GumbelTest, PdfIntegratesToOne) {
  const GumbelDist d{3.0, 1.5};
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -10.0; x < 40.0; x += dx) {
    integral += d.Pdf(x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GumbelTest, MeanFormula) {
  const GumbelDist d{5.0, 2.0};
  EXPECT_NEAR(d.Mean(), 5.0 + 0.5772156649 * 2.0, 1e-6);
}

TEST(GumbelTest, MleRecoversParameters) {
  const auto xs = GumbelSample(100.0, 7.0, 20000, 41);
  const GumbelDist fit = FitGumbelMle(xs);
  EXPECT_NEAR(fit.mu, 100.0, 0.5);
  EXPECT_NEAR(fit.beta, 7.0, 0.4);
}

TEST(GumbelTest, PwmRecoversParameters) {
  const auto xs = GumbelSample(100.0, 7.0, 20000, 42);
  const GumbelDist fit = FitGumbelPwm(xs);
  EXPECT_NEAR(fit.mu, 100.0, 0.5);
  EXPECT_NEAR(fit.beta, 7.0, 0.4);
}

TEST(GumbelTest, MleAndPwmAgree) {
  const auto xs = GumbelSample(50.0, 3.0, 5000, 43);
  const GumbelDist mle = FitGumbelMle(xs);
  const GumbelDist pwm = FitGumbelPwm(xs);
  EXPECT_NEAR(mle.mu, pwm.mu, 0.5);
  EXPECT_NEAR(mle.beta, pwm.beta, 0.4);
}

TEST(GumbelTest, MleMaximizesLikelihoodLocally) {
  const auto xs = GumbelSample(10.0, 2.0, 3000, 44);
  const GumbelDist fit = FitGumbelMle(xs);
  const double ll = fit.LogLikelihood(xs);
  for (double dmu : {-0.3, 0.3}) {
    for (double dbeta : {-0.2, 0.2}) {
      GumbelDist perturbed{fit.mu + dmu, fit.beta + dbeta};
      EXPECT_LE(perturbed.LogLikelihood(xs), ll + 1e-6);
    }
  }
}

TEST(GevTest, QuantileCdfRoundTripAllShapes) {
  for (double xi : {-0.3, 0.0, 0.3}) {
    const GevDist d{10.0, 2.0, xi};
    for (double p : {0.05, 0.5, 0.95, 0.999}) {
      EXPECT_NEAR(d.Cdf(d.Quantile(p)), p, 1e-9) << "xi=" << xi;
    }
  }
}

TEST(GevTest, PwmRecoversGumbelShape) {
  const auto xs = GumbelSample(100.0, 7.0, 20000, 45);
  const GevDist fit = FitGevPwm(xs);
  EXPECT_TRUE(fit.IsEffectivelyGumbel(0.05)) << "xi=" << fit.xi;
  EXPECT_NEAR(fit.mu, 100.0, 1.0);
  EXPECT_NEAR(fit.sigma, 7.0, 0.5);
}

TEST(GevTest, PwmRecoversHeavyShape) {
  // Sample a Frechet-ish GEV (xi = 0.25) by inversion.
  prng::Xoshiro128pp rng(46);
  const GevDist truth{50.0, 5.0, 0.25};
  std::vector<double> xs(30000);
  for (auto& x : xs) {
    x = truth.Quantile(std::max(rng.UniformUnit(), 1e-12));
  }
  const GevDist fit = FitGevPwm(xs);
  EXPECT_NEAR(fit.xi, 0.25, 0.05);
  EXPECT_NEAR(fit.mu, 50.0, 1.0);
}

TEST(GevTest, SupportBoundariesHandled) {
  const GevDist heavy{0.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(heavy.Cdf(-10.0), 0.0);  // below the lower endpoint
  const GevDist bounded{0.0, 1.0, -0.5};
  EXPECT_DOUBLE_EQ(bounded.Cdf(10.0), 1.0);  // above the upper endpoint
}

TEST(GpdTest, ExponentialSpecialCase) {
  const GpdDist d{2.0, 0.0};
  EXPECT_NEAR(d.Sf(2.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.Quantile(1.0 - std::exp(-1.0)), 2.0, 1e-9);
}

TEST(GpdTest, PwmRecoversExponential) {
  prng::Xoshiro128pp rng(47);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = -3.0 * std::log(1.0 - std::max(rng.UniformUnit(), 1e-12));
  }
  const GpdDist fit = FitGpdPwm(xs);
  EXPECT_NEAR(fit.xi, 0.0, 0.05);
  EXPECT_NEAR(fit.sigma, 3.0, 0.15);
}

TEST(GpdTest, PotModelExceedanceConsistency) {
  const auto xs = GumbelSample(100.0, 5.0, 10000, 48);
  const PotModel pot = FitPot(xs, 0.1);
  EXPECT_EQ(pot.n_excesses, 1000u);
  EXPECT_NEAR(pot.zeta, 0.1, 1e-9);
  // At the threshold the exceedance equals zeta; it decays above.
  EXPECT_NEAR(pot.Exceedance(pot.threshold), pot.zeta, 1e-9);
  EXPECT_LT(pot.Exceedance(pot.threshold + 20.0), pot.zeta);
  // Quantile inverts exceedance.
  const double q = pot.QuantileForExceedance(1e-4);
  EXPECT_NEAR(pot.Exceedance(q), 1e-4, 1e-6);
}

TEST(BlockMaximaTest, BasicExtraction) {
  const std::vector<double> xs = {1, 5, 2, 8, 3, 4, 9, 1, 7};
  const auto maxima = BlockMaxima(xs, 3);
  ASSERT_EQ(maxima.size(), 3u);
  EXPECT_DOUBLE_EQ(maxima[0], 5.0);
  EXPECT_DOUBLE_EQ(maxima[1], 8.0);
  EXPECT_DOUBLE_EQ(maxima[2], 9.0);
}

TEST(BlockMaximaTest, TrailingPartialBlockDropped) {
  const std::vector<double> xs = {1, 2, 3, 4, 100};
  const auto maxima = BlockMaxima(xs, 2);
  ASSERT_EQ(maxima.size(), 2u);
  EXPECT_DOUBLE_EQ(maxima[1], 4.0);  // the 100 is in the dropped remainder
}

TEST(BlockMaximaTest, SuggestBlockSize) {
  EXPECT_EQ(SuggestBlockSize(3000, 30), 100u);
  EXPECT_EQ(SuggestBlockSize(100, 30), 3u);
  EXPECT_EQ(SuggestBlockSize(30, 30), 1u);
}

TEST(PwcetTest, QuantileExceedanceRoundTrip) {
  const PwcetCurve curve(GumbelDist{1000.0, 20.0}, 50, 5000);
  for (double p : {1e-3, 1e-6, 1e-9, 1e-12, 1e-15}) {
    const double v = curve.QuantileForExceedance(p);
    EXPECT_NEAR(curve.ExceedanceAt(v), p, p * 1e-6);
  }
}

TEST(PwcetTest, MonotoneDecreasingInProbability) {
  const PwcetCurve curve(GumbelDist{1000.0, 20.0}, 50, 5000);
  double prev = 0.0;
  for (int e = 1; e <= 16; ++e) {
    const double v = curve.QuantileForExceedance(std::pow(10.0, -e));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(PwcetTest, FitFromSampleUpperBoundsObservations) {
  const auto xs = GumbelSample(500.0, 10.0, 3000, 49);
  const PwcetCurve curve = PwcetCurve::FitFromSample(xs, 100);
  // The pWCET at 1/n-level exceedance should be near/above the sample max.
  const double max_obs = *std::max_element(xs.begin(), xs.end());
  EXPECT_GT(curve.QuantileForExceedance(1e-6), max_obs * 0.98);
  EXPECT_GT(curve.QuantileForExceedance(1e-12),
            curve.QuantileForExceedance(1e-6));
}

TEST(PwcetTest, CurvePointsSpanDecades) {
  const PwcetCurve curve(GumbelDist{100.0, 5.0}, 10, 1000);
  const auto pts = curve.CurvePoints(16);
  ASSERT_EQ(pts.size(), 16u);
  EXPECT_DOUBLE_EQ(pts.front().first, 0.1);
  EXPECT_NEAR(pts.back().first, 1e-16, 1e-22);
}

TEST(GofTest, QqPointsNearDiagonalForGoodFit) {
  const auto xs = GumbelSample(100.0, 7.0, 5000, 50);
  const GumbelDist fit = FitGumbelMle(xs);
  const auto pts = QqPoints(xs, fit);
  ASSERT_EQ(pts.size(), xs.size());
  // Compare central quantiles (tails are noisy).
  for (std::size_t i = pts.size() / 4; i < 3 * pts.size() / 4; ++i) {
    EXPECT_NEAR(pts[i].first, pts[i].second, 2.0);
  }
}

TEST(GofTest, ChiSquareAcceptsTrueModel) {
  const auto xs = GumbelSample(100.0, 7.0, 2000, 51);
  const GumbelDist fit = FitGumbelMle(xs);
  const auto r = ChiSquareGof(xs, fit, 10);
  EXPECT_TRUE(r.NotRejected(0.01)) << "p=" << r.p_value;
}

TEST(GofTest, ChiSquareRejectsWrongModel) {
  const auto xs = GumbelSample(100.0, 7.0, 2000, 52);
  const GumbelDist wrong{100.0, 20.0};
  const auto r = ChiSquareGof(xs, wrong, 10);
  EXPECT_FALSE(r.NotRejected(0.05));
}

TEST(GofTest, ExceedanceCheckConsistentForTrueModel) {
  const auto xs = GumbelSample(100.0, 7.0, 10000, 53);
  const GumbelDist fit = FitGumbelMle(xs);
  const auto r = ExceedanceCheck(xs, fit, 0.99);
  EXPECT_TRUE(r.consistent) << "z=" << r.z_score;
  EXPECT_NEAR(static_cast<double>(r.observed),
              static_cast<double>(r.expected), 40.0);
}

TEST(GofTest, ExceedanceCheckFlagsUnderestimation) {
  const auto xs = GumbelSample(100.0, 7.0, 10000, 54);
  const GumbelDist too_low{90.0, 3.0};  // underestimates the tail
  const auto r = ExceedanceCheck(xs, too_low, 0.99);
  EXPECT_FALSE(r.consistent);
  EXPECT_GT(r.observed, r.expected);
}

// Property sweep: fitting must recover parameters across the (mu, beta)
// plane, and the resulting pWCET curve must be internally consistent.
struct FitCase {
  double mu;
  double beta;
};

class GumbelFitSweep : public ::testing::TestWithParam<FitCase> {};

TEST_P(GumbelFitSweep, RecoversAndProjectsConsistently) {
  const auto [mu, beta] = GetParam();
  const auto xs = GumbelSample(mu, beta, 8000, 55 + std::llround(mu + beta));
  const GumbelDist fit = FitGumbelMle(xs);
  EXPECT_NEAR(fit.mu, mu, 0.05 * std::max(1.0, std::fabs(mu)) + 3 * beta / 50);
  EXPECT_NEAR(fit.beta, beta, 0.1 * beta + 0.01);
  const PwcetCurve curve(fit, 1, xs.size());
  EXPECT_GT(curve.QuantileForExceedance(1e-12),
            curve.QuantileForExceedance(1e-3));
}

INSTANTIATE_TEST_SUITE_P(
    Plane, GumbelFitSweep,
    ::testing::Values(FitCase{0.0, 1.0}, FitCase{100.0, 1.0},
                      FitCase{1e6, 500.0}, FitCase{-50.0, 12.0},
                      FitCase{3.0, 0.05}));

}  // namespace
}  // namespace spta::evt
