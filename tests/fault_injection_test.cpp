// The deterministic fault-injection subsystem (src/fault): seeding/replay
// contract, SEU injectors, PRNG degradation, sample-stream corruption,
// faulted campaigns, and the typed-rejection guarantees of the guarded
// analysis entry point. The central invariant throughout: every fault is
// a pure function of (campaign_seed, site, index), and a faulted campaign
// either gets rejected with a typed Diagnosis or is provably identical to
// the clean one — never a silently altered pWCET.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/diagnosis.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "fault/campaign.hpp"
#include "fault/plan.hpp"
#include "fault/prng_degrade.hpp"
#include "fault/sample_corruption.hpp"
#include "fault/seu.hpp"
#include "sim/config.hpp"
#include "sim/platform.hpp"

namespace {

using namespace spta;

// --- seeding / replay contract -------------------------------------------

TEST(FaultPlan, SiteSeedIsDeterministicAndSiteSeparated) {
  EXPECT_EQ(fault::SiteSeed(7, "seu", 3), fault::SiteSeed(7, "seu", 3));
  EXPECT_NE(fault::SiteSeed(7, "seu", 3), fault::SiteSeed(7, "seu", 4));
  EXPECT_NE(fault::SiteSeed(7, "seu", 3), fault::SiteSeed(7, "io", 3));
  EXPECT_NE(fault::SiteSeed(7, "seu", 3), fault::SiteSeed(8, "seu", 3));
}

TEST(FaultPlan, RollReplaysBitForBit) {
  fault::Roll a(42, "samples", 17);
  fault::Roll b(42, "samples", 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(FaultPlan, BelowStaysInBoundsAndCoversResidues) {
  fault::Roll roll(1, "test", 0);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 2000; ++i) {
    const auto v = roll.Below(7);
    ASSERT_LT(v, 7u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(FaultPlan, ChanceHonorsDegenerateProbabilities) {
  fault::Roll roll(1, "test", 1);
  EXPECT_FALSE(roll.Chance(0.0));
  EXPECT_TRUE(roll.Chance(1.0));
}

// --- SEU injection -------------------------------------------------------

class SeuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const apps::TvcaApp app;
    trace_ = app.BuildFrame(/*scenario_seed=*/42).trace;
  }
  trace::Trace trace_;
};

TEST_F(SeuTest, InjectionIsDeterministicInTheTriple) {
  const auto config = sim::RandLeon3Config();
  fault::SeuConfig seu;
  seu.upsets_per_run = 4.0;

  const auto run_once = [&](std::uint64_t run_index) {
    sim::Platform platform(config, 99);
    std::uint64_t flips = 0;
    const auto result = platform.RunWithHook(
        trace_, analysis::FixedTraceRunSeed(99, run_index),
        [&](sim::Platform& p) {
          flips = fault::InjectSeus(p, seu, /*campaign_seed=*/99, run_index)
                      .flips;
        });
    return std::make_pair(flips, result.cycles);
  };

  const auto first = run_once(5);
  const auto replay = run_once(5);
  EXPECT_EQ(first.first, replay.first);
  EXPECT_EQ(first.second, replay.second);
  EXPECT_EQ(first.first, 4u);  // integer rate: exactly 4 flips
}

TEST_F(SeuTest, FractionalRateIsABernoulliDraw) {
  const auto config = sim::DetLeon3Config();
  fault::SeuConfig seu;
  seu.upsets_per_run = 0.5;
  std::uint64_t total = 0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    sim::Platform platform(config, 7);
    (void)platform.RunWithHook(
        trace_, analysis::FixedTraceRunSeed(7, r), [&](sim::Platform& p) {
          total += fault::InjectSeus(p, seu, 7, r).flips;
        });
  }
  // 64 runs at rate 0.5: expect ~32 flips; a very loose band still rules
  // out "always 0" and "always 1".
  EXPECT_GT(total, 10u);
  EXPECT_LT(total, 54u);
}

TEST_F(SeuTest, CorruptTagBitFlipsExactlyOneBit) {
  const auto config = sim::RandLeon3Config();
  sim::Platform platform(config, 3);
  auto& il1 = platform.core(0).il1();
  ASSERT_GT(il1.TagSlots(), 0u);
  const auto before = il1.TagAt(0);
  il1.CorruptTagBit(0, 17);
  EXPECT_EQ(il1.TagAt(0), before ^ (1ULL << 17));
  il1.CorruptTagBit(0, 17);
  EXPECT_EQ(il1.TagAt(0), before);

  auto& dtlb = platform.core(0).dtlb();
  ASSERT_GT(dtlb.EntrySlots(), 0u);
  const auto vpn_before = dtlb.VpnAt(0);
  dtlb.CorruptVpnBit(0, 5);
  EXPECT_EQ(dtlb.VpnAt(0), vpn_before ^ (1ULL << 5));
}

// --- PRNG degradation ----------------------------------------------------

TEST(PrngDegrade, HealthyGeneratorPassesTheBattery) {
  fault::PrngDegradeConfig healthy;
  EXPECT_FALSE(healthy.Degraded());
  EXPECT_FALSE(fault::DegradationDetected(123, healthy));
}

TEST(PrngDegrade, StuckBitsAreCaught) {
  fault::PrngDegradeConfig stuck;
  stuck.stuck_one_mask = 0x00ff0000u;
  EXPECT_TRUE(stuck.Degraded());
  EXPECT_TRUE(fault::DegradationDetected(123, stuck));

  fault::PrngDegradeConfig zeroed;
  zeroed.stuck_zero_mask = 0x0000ffffu;
  EXPECT_TRUE(fault::DegradationDetected(123, zeroed));
}

TEST(PrngDegrade, ReducedEntropyIsCaught) {
  fault::PrngDegradeConfig weak;
  weak.entropy_bits = 8;
  EXPECT_TRUE(fault::DegradationDetected(123, weak));
}

TEST(PrngDegrade, DegradedWordsHonorTheMasks) {
  fault::PrngDegradeConfig config;
  config.stuck_one_mask = 0x1u;
  config.stuck_zero_mask = 0x80000000u;
  fault::DegradedHwPrng prng(5, config);
  for (int i = 0; i < 200; ++i) {
    const auto w = prng.Next();
    EXPECT_EQ(w & 0x1u, 0x1u);
    EXPECT_EQ(w & 0x80000000u, 0u);
  }
}

// --- sample-stream corruption --------------------------------------------

std::vector<mbpta::PathObservation> SyntheticSample(std::size_t n) {
  std::vector<mbpta::PathObservation> obs;
  obs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs.push_back({/*path_id=*/static_cast<std::uint32_t>(i % 3),
                   /*time=*/1000.0 + static_cast<double>((i * 37) % 101)});
  }
  return obs;
}

TEST(SampleCorruption, IsDeterministicAndReported) {
  fault::SampleCorruptionConfig config;
  config.outlier_rate = 0.05;
  config.duplicate_rate = 0.05;
  config.truncate_fraction = 0.25;

  auto a = SyntheticSample(400);
  auto b = SyntheticSample(400);
  const auto ra = fault::CorruptObservations(&a, config, 31);
  const auto rb = fault::CorruptObservations(&b, config, 31);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].path_id, b[i].path_id);
  }
  EXPECT_EQ(ra.outliers, rb.outliers);
  EXPECT_EQ(ra.duplicates, rb.duplicates);
  EXPECT_EQ(ra.dropped, rb.dropped);
  EXPECT_EQ(ra.dropped, 100u);  // truncate_fraction=0.25 on 400
  EXPECT_EQ(a.size(), 300u);
  EXPECT_GT(ra.Total(), ra.dropped);  // some outliers/duplicates fired
}

TEST(SampleCorruption, DifferentSeedDifferentDamage) {
  fault::SampleCorruptionConfig config;
  config.outlier_rate = 0.10;
  auto a = SyntheticSample(300);
  auto b = SyntheticSample(300);
  (void)fault::CorruptObservations(&a, config, 1);
  (void)fault::CorruptObservations(&b, config, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SampleCorruption, DisabledConfigIsANoOp) {
  fault::SampleCorruptionConfig config;
  EXPECT_FALSE(config.Enabled());
  auto obs = SyntheticSample(50);
  const auto untouched = obs;
  const auto report = fault::CorruptObservations(&obs, config, 9);
  EXPECT_EQ(report.Total(), 0u);
  ASSERT_EQ(obs.size(), untouched.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_EQ(obs[i].time, untouched[i].time);
  }
}

// --- faulted campaigns ---------------------------------------------------

TEST(FaultCampaign, DisabledPlanIsBitIdenticalToCleanRunner) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  fault::FaultCampaignConfig fc;
  fc.base.runs = 40;
  fc.base.master_seed = 2024;

  const auto clean =
      analysis::RunTvcaCampaignParallel(config, app, fc.base, /*jobs=*/2);
  const auto faulted =
      fault::RunTvcaCampaignWithFaults(config, app, fc, /*jobs=*/2);
  EXPECT_EQ(faulted.faults_injected, 0u);
  EXPECT_EQ(faulted.reseeds_dropped, 0u);
  EXPECT_FALSE(faulted.Tainted());
  ASSERT_EQ(faulted.samples.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(faulted.samples[i].cycles, clean[i].cycles) << "run " << i;
    EXPECT_EQ(faulted.samples[i].path_id, clean[i].path_id) << "run " << i;
  }
}

TEST(FaultCampaign, SeuPlanPerturbsTimingAndTaints) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);

  fault::FaultCampaignConfig fc;
  fc.base.runs = 60;
  fc.base.master_seed = 77;
  fc.seu.upsets_per_run = 8.0;

  const auto clean = analysis::RunFixedTraceCampaignParallel(
      config, frame.trace, fc.base.runs, fc.base.master_seed, /*jobs=*/2);
  const auto faulted = fault::RunFixedTraceCampaignWithFaults(
      config, frame.trace, fc, /*jobs=*/2);

  EXPECT_EQ(faulted.faults_injected, 8u * 60u);
  EXPECT_TRUE(faulted.Tainted());
  ASSERT_EQ(faulted.samples.size(), clean.size());
  bool any_changed = false;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (faulted.samples[i].cycles != clean[i].cycles) any_changed = true;
  }
  EXPECT_TRUE(any_changed)
      << "480 tag/TLB upsets never moved a single cycle count";
}

TEST(FaultCampaign, FaultedSamplesAreJobsInvariant) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  fault::FaultCampaignConfig fc;
  fc.base.runs = 30;
  fc.base.master_seed = 5;
  fc.seu.upsets_per_run = 2.0;
  fc.reseed_dropout = 0.2;

  const auto serial = fault::RunTvcaCampaignWithFaults(config, app, fc, 1);
  const auto parallel = fault::RunTvcaCampaignWithFaults(config, app, fc, 4);
  EXPECT_EQ(serial.faults_injected, parallel.faults_injected);
  EXPECT_EQ(serial.reseeds_dropped, parallel.reseeds_dropped);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].cycles, parallel.samples[i].cycles)
        << "run " << i;
  }
}

TEST(FaultCampaign, TotalReseedDropoutFreezesTheRandomization) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);

  fault::FaultCampaignConfig fc;
  fc.base.runs = 20;
  fc.base.master_seed = 11;
  fc.reseed_dropout = 1.0;

  const auto result = fault::RunFixedTraceCampaignWithFaults(
      config, frame.trace, fc, /*jobs=*/2);
  EXPECT_EQ(result.reseeds_dropped, 19u);  // run 0 never drops
  ASSERT_EQ(result.samples.size(), 20u);
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_EQ(result.samples[i].cycles, result.samples[0].cycles)
        << "run " << i << " should replay run 0's randomization";
  }
}

TEST(FaultCampaign, RunSeedDropoutIsAPureFunctionOfTheConfig) {
  fault::FaultCampaignConfig fc;
  fc.base.runs = 100;
  fc.base.master_seed = 13;
  fc.reseed_dropout = 0.3;
  for (std::size_t r = 0; r < 100; ++r) {
    bool d1 = false, d2 = false;
    EXPECT_EQ(fault::FaultedFixedTraceRunSeed(fc, r, &d1),
              fault::FaultedFixedTraceRunSeed(fc, r, &d2));
    EXPECT_EQ(d1, d2);
    if (r == 0) EXPECT_FALSE(d1);
  }
}

// --- detection: the guarded pipeline refuses unfit samples ---------------

TEST(GuardedAnalysis, TaintedSampleIsRejectedBeforeAnyStatistics) {
  const auto obs = SyntheticSample(500);
  analysis::SampleProvenance prov;
  prov.faults_reported = 3;
  const auto out = analysis::AnalyzeObservationsGuarded(obs, {}, prov);
  EXPECT_EQ(out.diagnosis.code, analysis::DiagnosisCode::kTainted);
  EXPECT_FALSE(out.result.has_value());
  EXPECT_FALSE(out.ok());
}

TEST(GuardedAnalysis, DigestMismatchIsRejected) {
  auto obs = SyntheticSample(500);
  analysis::SampleProvenance prov;
  prov.expected_digest = analysis::ObservationsDigest(obs);
  obs[250].time += 1.0;  // post-export tamper
  const auto out = analysis::AnalyzeObservationsGuarded(obs, {}, prov);
  EXPECT_EQ(out.diagnosis.code, analysis::DiagnosisCode::kIntegrityMismatch);
  EXPECT_FALSE(out.result.has_value());
}

TEST(GuardedAnalysis, MatchingDigestPassesThrough) {
  const auto obs = SyntheticSample(500);
  analysis::SampleProvenance prov;
  prov.expected_digest = analysis::ObservationsDigest(obs);
  const auto out = analysis::AnalyzeObservationsGuarded(obs, {}, prov);
  EXPECT_NE(out.diagnosis.code, analysis::DiagnosisCode::kIntegrityMismatch);
  EXPECT_NE(out.diagnosis.code, analysis::DiagnosisCode::kTainted);
}

TEST(GuardedAnalysis, TinySampleIsATypedRejectionNotAnAbort) {
  const auto obs = SyntheticSample(5);
  const auto out = analysis::AnalyzeObservationsGuarded(obs);
  EXPECT_EQ(out.diagnosis.code, analysis::DiagnosisCode::kTooFewSamples);
  EXPECT_FALSE(out.result.has_value());
}

TEST(GuardedAnalysis, ConstantSampleIsDegenerate) {
  std::vector<mbpta::PathObservation> obs(200, {0, 5000.0});
  const auto out = analysis::AnalyzeObservationsGuarded(obs);
  EXPECT_EQ(out.diagnosis.code, analysis::DiagnosisCode::kDegenerate);
}

TEST(GuardedAnalysis, DuplicateCorruptionTripsTheIidGate) {
  // A heavily duplicated stream (every other observation repeats its
  // predecessor) has strong autocorrelation: the Ljung-Box side of the
  // gate must reject it rather than let it shrink the pWCET.
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 300;
  cc.master_seed = 404;
  const auto samples =
      analysis::RunTvcaCampaignParallel(config, app, cc, /*jobs=*/2);
  std::vector<mbpta::PathObservation> obs;
  for (const auto& s : samples) {
    obs.push_back({s.path_id, s.cycles});
  }
  fault::SampleCorruptionConfig corruption;
  corruption.duplicate_rate = 0.6;
  (void)fault::CorruptObservations(&obs, corruption, 8);

  const auto out = analysis::AnalyzeObservationsGuarded(obs);
  EXPECT_FALSE(out.ok());
  // Statistical detection: the gate ran and rejected.
  ASSERT_TRUE(out.result.has_value());
  EXPECT_FALSE(out.result->usable);
  EXPECT_EQ(out.diagnosis.code, analysis::DiagnosisCode::kIidViolation);
}

// --- annotated CSV round trip --------------------------------------------

TEST(AnnotatedCsv, DigestAndFaultsSurviveTheRoundTrip) {
  const auto obs = SyntheticSample(120);
  std::ostringstream out;
  analysis::WriteObservationsCsvAnnotated(out, obs, /*faults=*/7);

  std::istringstream in(out.str());
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  std::string error;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error))
      << error;
  ASSERT_TRUE(meta.digest.has_value());
  EXPECT_EQ(*meta.digest, analysis::ObservationsDigest(readback));
  EXPECT_EQ(meta.faults, 7u);
  EXPECT_TRUE(meta.Tainted());

  // The guarded pipeline refuses the tainted file outright.
  const auto guarded = analysis::AnalyzeObservationsGuarded(
      readback, {}, analysis::ProvenanceFromMeta(meta));
  EXPECT_EQ(guarded.diagnosis.code, analysis::DiagnosisCode::kTainted);
}

TEST(AnnotatedCsv, RowTamperIsCaughtByTheDigest) {
  const auto obs = SyntheticSample(120);
  std::ostringstream out;
  analysis::WriteObservationsCsvAnnotated(out, obs, /*faults=*/0);
  std::string text = out.str();
  // Drop the final data row (truncation attack past the annotations).
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);

  std::istringstream in(text);
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  std::string error;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error));
  ASSERT_TRUE(meta.digest.has_value());
  const auto guarded = analysis::AnalyzeObservationsGuarded(
      readback, {}, analysis::ProvenanceFromMeta(meta));
  EXPECT_EQ(guarded.diagnosis.code,
            analysis::DiagnosisCode::kIntegrityMismatch);
}

TEST(AnnotatedCsv, LegacyFilesStillLoadWithoutMeta) {
  const auto obs = SyntheticSample(50);
  std::ostringstream out;
  analysis::WriteObservationsCsv(out, obs);  // plain writer, no comments
  std::istringstream in(out.str());
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  std::string error;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error));
  EXPECT_FALSE(meta.digest.has_value());
  EXPECT_EQ(meta.faults, 0u);
  EXPECT_EQ(readback.size(), obs.size());
}

}  // namespace
