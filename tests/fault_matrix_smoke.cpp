// The fault-matrix acceptance smoke (tier1): one end-to-end row per
// injector class, pinning the reject-never-misreport invariant of
// docs/FAULTS.md:
//
//   SEU              campaign taint -> annotated CSV -> typed kTainted
//   PRNG degradation bring-up battery catches it; a frozen campaign that
//                    runs anyway is caught statistically (kDegenerate)
//   sample stream    digest mismatch / size floor -> typed rejection
//   I/O faults       a hostile socket connection degrades ITS session
//                    (metrics count it); the daemon never dies
//
// Plus the two global invariants: zero silent pWCET alterations (the
// guarded path and the batch pipeline agree bit-for-bit on clean input,
// and a faulty transport either fails typed or serves the identical
// result) and zero daemon crashes (the test ends with a clean SHUTDOWN
// handshake on the same server that absorbed the hostile connections).
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/diagnosis.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "fault/campaign.hpp"
#include "fault/io_plan.hpp"
#include "fault/prng_degrade.hpp"
#include "fault/sample_corruption.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/config.hpp"

namespace spta {
namespace {

// The hostile-connection row deliberately provokes mid-frame server
// disconnects; the client side of the test would otherwise die on
// SIGPIPE when it writes into the dead socket.
[[maybe_unused]] const bool kSigpipeIgnored = [] {
  std::signal(SIGPIPE, SIG_IGN);
  return true;
}();

std::vector<mbpta::PathObservation> ToObservations(
    const std::vector<analysis::RunSample>& samples) {
  std::vector<mbpta::PathObservation> obs;
  obs.reserve(samples.size());
  for (const auto& s : samples) obs.push_back({s.path_id, s.cycles});
  return obs;
}

/// A well-behaved synthetic sample for the service rows (large enough for
/// the block-maxima floor, varied enough not to be degenerate).
std::vector<mbpta::PathObservation> ServiceSample(std::size_t n) {
  std::vector<mbpta::PathObservation> obs;
  obs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs.push_back({0, 10000.0 + static_cast<double>((i * 7919) % 997)});
  }
  return obs;
}

// --- row 1: SEU ----------------------------------------------------------

TEST(FaultMatrix, SeuTaintFlowsToTypedRejection) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);

  fault::FaultCampaignConfig fc;
  fc.base.runs = 40;
  fc.base.master_seed = 71;
  fc.seu.upsets_per_run = 4.0;
  const auto faulted = fault::RunFixedTraceCampaignWithFaults(
      config, frame.trace, fc, /*jobs=*/2);
  ASSERT_TRUE(faulted.Tainted());
  EXPECT_EQ(faulted.faults_injected, 40u * 4u);

  // Export with the taint annotation, re-ingest, analyze guarded: the
  // pipeline must refuse before fitting anything.
  std::ostringstream out;
  analysis::WriteObservationsCsvAnnotated(
      out, ToObservations(faulted.samples),
      faulted.faults_injected + faulted.reseeds_dropped);
  std::istringstream in(out.str());
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  std::string error;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error))
      << error;
  ASSERT_TRUE(meta.Tainted());

  const auto guarded = analysis::AnalyzeObservationsGuarded(
      readback, {}, analysis::ProvenanceFromMeta(meta));
  EXPECT_EQ(guarded.diagnosis.code, analysis::DiagnosisCode::kTainted);
  EXPECT_FALSE(guarded.result.has_value());  // no pWCET was ever fitted
  EXPECT_STREQ(analysis::DiagnosisCodeName(guarded.diagnosis.code),
               "tainted");
}

// --- row 2: PRNG degradation ---------------------------------------------

TEST(FaultMatrix, PrngDegradationIsCaughtAtBringUpOrStatistically) {
  // Bring-up: the FIPS-style battery rejects every degraded config.
  fault::PrngDegradeConfig healthy;
  EXPECT_FALSE(fault::DegradationDetected(1234, healthy));
  fault::PrngDegradeConfig stuck;
  stuck.stuck_one_mask = 0x00ff0000u;
  EXPECT_TRUE(fault::DegradationDetected(1234, stuck));
  fault::PrngDegradeConfig starved;
  starved.entropy_bits = 8;
  EXPECT_TRUE(fault::DegradationDetected(1234, starved));

  // A campaign that runs anyway with the reseed write dropped every run
  // replays run 0's randomization: taint accounting catches it, and even
  // without provenance the constant sample is typed kDegenerate — never a
  // (zero-variance, absurdly tight) pWCET.
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/9);
  fault::FaultCampaignConfig fc;
  fc.base.runs = 60;
  fc.base.master_seed = 17;
  fc.reseed_dropout = 1.0;
  const auto frozen = fault::RunFixedTraceCampaignWithFaults(
      config, frame.trace, fc, /*jobs=*/2);
  EXPECT_EQ(frozen.reseeds_dropped, 59u);

  analysis::SampleProvenance prov;
  prov.faults_reported = frozen.reseeds_dropped;
  const auto obs = ToObservations(frozen.samples);
  EXPECT_EQ(analysis::AnalyzeObservationsGuarded(obs, {}, prov)
                .diagnosis.code,
            analysis::DiagnosisCode::kTainted);
  EXPECT_EQ(analysis::AnalyzeObservationsGuarded(obs).diagnosis.code,
            analysis::DiagnosisCode::kDegenerate);
}

// --- row 3: sample-stream corruption -------------------------------------

TEST(FaultMatrix, CorruptedStreamsAreCaughtByDigestOrFloors) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 80;
  cc.master_seed = 303;
  const auto samples =
      analysis::RunTvcaCampaignParallel(config, app, cc, /*jobs=*/2);

  // Clean export, corrupted in transit: the recorded digest no longer
  // matches the rows, typed kIntegrityMismatch before any statistics.
  std::ostringstream out;
  analysis::WriteObservationsCsvAnnotated(out, ToObservations(samples),
                                          /*faults=*/0);
  std::istringstream in(out.str());
  std::vector<mbpta::PathObservation> readback;
  analysis::CsvMeta meta;
  std::string error;
  ASSERT_TRUE(
      analysis::TryReadSamplesCsvWithMeta(in, &readback, &meta, &error))
      << error;
  ASSERT_FALSE(meta.Tainted());

  fault::SampleCorruptionConfig corruption;
  corruption.duplicate_rate = 0.5;
  const auto report =
      fault::CorruptObservations(&readback, corruption, /*campaign_seed=*/12);
  ASSERT_GT(report.duplicates, 0u);
  const auto mismatched = analysis::AnalyzeObservationsGuarded(
      readback, {}, analysis::ProvenanceFromMeta(meta));
  EXPECT_EQ(mismatched.diagnosis.code,
            analysis::DiagnosisCode::kIntegrityMismatch);
  EXPECT_FALSE(mismatched.result.has_value());

  // Truncation below the block-maxima floor: typed kTooFewSamples even
  // with no provenance at all.
  auto truncated = ToObservations(samples);
  fault::SampleCorruptionConfig chop;
  chop.truncate_fraction = 0.8;
  (void)fault::CorruptObservations(&truncated, chop, /*campaign_seed=*/13);
  ASSERT_LT(truncated.size(), 30u);
  EXPECT_EQ(analysis::AnalyzeObservationsGuarded(truncated).diagnosis.code,
            analysis::DiagnosisCode::kTooFewSamples);
}

// --- global invariant: zero silent alterations on the clean path ---------

TEST(FaultMatrix, GuardedPathIsBitIdenticalToBatchOnCleanInput) {
  const auto config = sim::RandLeon3Config();
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 120;
  cc.master_seed = 2026;
  const auto samples =
      analysis::RunTvcaCampaignParallel(config, app, cc, /*jobs=*/2);
  const auto obs = ToObservations(samples);

  mbpta::MbptaOptions options;
  options.require_iid = false;
  const auto guarded = analysis::AnalyzeObservationsGuarded(obs, options);
  ASSERT_TRUE(guarded.result.has_value()) << guarded.diagnosis.message;

  std::vector<double> times;
  for (const auto& o : obs) times.push_back(o.time);
  const auto batch = mbpta::AnalyzeSample(times, options);
  ASSERT_EQ(batch.curve.has_value(), guarded.result->curve.has_value());
  if (batch.curve) {
    for (const double p : {1e-3, 1e-9, 1e-15}) {
      EXPECT_EQ(guarded.result->curve->QuantileForExceedance(p),
                batch.curve->QuantileForExceedance(p))
          << "guard layer altered the pWCET at p=" << p;
    }
  }
  EXPECT_EQ(guarded.result->usable, batch.usable);
  EXPECT_EQ(guarded.result->block_size, batch.block_size);
}

// --- row 4: I/O faults against the resident daemon -----------------------

TEST(FaultMatrix, DaemonSurvivesHostileConnectionsAndCountsThem) {
  const std::string path =
      "/tmp/spta_fault_matrix_" + std::to_string(::getpid()) + ".sock";

  // Per-connection fault assignment (connection ordinals are assigned in
  // accept order; this test connects strictly sequentially):
  //   0 — lethal: one absorbed EINTR, then a mid-frame disconnect
  //   1 — transient seeded plan (EINTR + short I/O, no disconnects)
  //   2 — same transient profile, different stream index
  //   3+ — clean (the survival probe + shutdown handshake)
  fault::IoFaultConfig transient;
  transient.eintr_rate = 0.2;
  transient.short_io_rate = 0.4;
  auto plan1 = std::make_shared<fault::IoFaultPlan>(transient, 99, 1);
  auto plan2 = std::make_shared<fault::IoFaultPlan>(transient, 99, 2);

  service::ServerOptions options;
  options.workers = 2;
  options.io_fault_hook_factory =
      [plan1, plan2](std::uint64_t ordinal) -> service::IoFaultHook {
    if (ordinal == 0) {
      auto reads = std::make_shared<std::atomic<int>>(0);
      return [reads](service::IoOp op, std::size_t) {
        service::IoFault f;
        if (op == service::IoOp::kRead) {
          const int n = reads->fetch_add(1) + 1;
          if (n == 1) f.error = EINTR;
          if (n >= 2) f.disconnect = true;
        }
        return f;
      };
    }
    if (ordinal == 1) return plan1->Hook();
    if (ordinal == 2) return plan2->Hook();
    return {};
  };
  service::Server server(options);
  std::thread daemon([&] { server.ServeUnixSocket(path); });

  const auto connect = [&](double timeout_ms = 0.0) {
    std::unique_ptr<service::UnixSocketConnection> connection;
    std::string error;
    for (int attempt = 0; attempt < 200 && !connection; ++attempt) {
      connection =
          service::UnixSocketConnection::Connect(path, &error, timeout_ms);
      if (!connection) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(connection) << error;
    return connection;
  };

  // Connection 0: the server-side stream dies mid-frame. The client sees
  // a typed transport failure — never a hang, never a daemon death. The
  // 2s I/O deadline bounds the test even if the contract were broken.
  {
    auto lethal = connect(/*timeout_ms=*/2000.0);
    ASSERT_TRUE(lethal);
    service::Client client(lethal->in(), lethal->out());
    const auto response = client.Ping();
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.args.GetString("code"), "transport");
  }

  // Connections 1 and 2: transient faults only — every request must
  // succeed, and the analysis served over the faulty transport must be
  // bit-identical across connections (no silent alteration in flight).
  const auto obs = ServiceSample(240);
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  std::string pwcet_over_faults;
  {
    auto faulty = connect();
    ASSERT_TRUE(faulty);
    service::Client client(faulty->in(), faulty->out());
    EXPECT_TRUE(client.Ping().ok);
    const auto analysis = client.AnalyzeInline(obs, no_iid);
    ASSERT_TRUE(analysis.ok) << analysis.payload;
    ASSERT_TRUE(analysis.args.Has("pwcet"));
    pwcet_over_faults = analysis.args.GetString("pwcet");
  }
  {
    auto faulty = connect();
    ASSERT_TRUE(faulty);
    service::Client client(faulty->in(), faulty->out());
    const auto analysis = client.AnalyzeInline(obs, no_iid);
    ASSERT_TRUE(analysis.ok) << analysis.payload;
    EXPECT_EQ(analysis.args.GetString("pwcet"), pwcet_over_faults);
  }
  EXPECT_GT(plan1->faults_fired() + plan2->faults_fired(), 0u);

  // Clean connection: the daemon is alive, its metrics surface shows the
  // injection campaign, and it still shuts down gracefully.
  {
    auto clean = connect();
    ASSERT_TRUE(clean);
    service::Client client(clean->in(), clean->out());
    EXPECT_TRUE(client.Ping().ok);
    const auto metrics = client.Metrics();
    EXPECT_TRUE(metrics.ok);
    EXPECT_TRUE(client.Shutdown().ok);
  }
  daemon.join();

  EXPECT_GE(server.metrics().faults_injected(),
            2 + plan1->faults_fired() + plan2->faults_fired());
  EXPECT_GE(server.metrics().sessions_degraded(), 1u);
  EXPECT_TRUE(server.shutdown_requested());
}

}  // namespace
}  // namespace spta
