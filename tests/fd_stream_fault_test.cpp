// Adversarial I/O coverage for service/fd_stream: the syscall retry
// discipline under injected EINTR/EAGAIN storms, short reads and writes,
// mid-frame disconnects, and real (kernel) EAGAIN as the deadline signal.
// The contract under test is the one docs/FAULTS.md documents: transient
// faults are absorbed losslessly, terminal faults fail the STREAM (badbit/
// EOF) and never the process.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <fcntl.h>
#include <istream>
#include <ostream>
#include <string>
#include <thread>

#include "fault/io_plan.hpp"
#include "service/fd_stream.hpp"

namespace {

using namespace spta;
using service::FdStreambuf;
using service::IoFault;
using service::IoOp;

class SocketPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  /// A payload long enough to force several buffer flushes/refills.
  static std::string Payload() {
    std::string s;
    s.reserve(32 * 1024);
    for (int i = 0; s.size() < 32 * 1024; ++i) {
      s += "frame " + std::to_string(i) + " payload ";
    }
    return s;
  }

  std::string ReadAll(std::istream& in) {
    std::string got;
    char buf[4096];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      got.append(buf, static_cast<std::size_t>(in.gcount()));
    }
    return got;
  }

  int fds_[2] = {-1, -1};
};

TEST_F(SocketPairTest, CleanPathRoundTrips) {
  const std::string payload = Payload();
  {
    FdStreambuf out_buf(fds_[0]);
    std::ostream out(&out_buf);
    out << payload;
    out.flush();
    ASSERT_TRUE(out.good());
  }
  ::shutdown(fds_[0], SHUT_WR);
  FdStreambuf in_buf(fds_[1]);
  std::istream in(&in_buf);
  EXPECT_EQ(ReadAll(in), payload);
}

TEST_F(SocketPairTest, InjectedEintrStormIsRetriedAway) {
  const std::string payload = Payload();
  int writer_faults = 0;
  {
    // Every other write syscall is hit with EINTR.
    FdStreambuf out_buf(fds_[0], [&](IoOp op, std::size_t) {
      IoFault f;
      if (op == IoOp::kWrite && ++writer_faults % 2 == 0) f.error = EINTR;
      return f;
    });
    std::ostream out(&out_buf);
    out << payload;
    out.flush();
    ASSERT_TRUE(out.good());
  }
  ::shutdown(fds_[0], SHUT_WR);

  int reader_faults = 0;
  FdStreambuf in_buf(fds_[1], [&](IoOp op, std::size_t) {
    IoFault f;
    if (op == IoOp::kRead && ++reader_faults % 2 == 1) f.error = EINTR;
    return f;
  });
  std::istream in(&in_buf);
  EXPECT_EQ(ReadAll(in), payload);
  EXPECT_GT(writer_faults, 0);
  EXPECT_GT(reader_faults, 0);
}

TEST_F(SocketPairTest, TransientInjectedEagainIsRetriedWithinBudget) {
  const std::string payload = Payload();
  int count = 0;
  {
    // Bursts of 3 consecutive EAGAINs — under the retry budget, so the
    // stream must survive them losslessly.
    FdStreambuf out_buf(fds_[0], [&](IoOp, std::size_t) {
      IoFault f;
      if (++count % 5 < 3) f.error = EAGAIN;
      return f;
    });
    std::ostream out(&out_buf);
    out << payload;
    out.flush();
    ASSERT_TRUE(out.good());
  }
  ::shutdown(fds_[0], SHUT_WR);
  FdStreambuf in_buf(fds_[1]);
  std::istream in(&in_buf);
  EXPECT_EQ(ReadAll(in), payload);
}

TEST_F(SocketPairTest, PersistentInjectedEagainFailsTheStreamNotTheProcess) {
  FdStreambuf out_buf(fds_[0], [](IoOp, std::size_t) {
    IoFault f;
    f.error = EAGAIN;  // never clears: a wedged peer
    return f;
  });
  std::ostream out(&out_buf);
  out << "doomed frame";
  out.flush();
  EXPECT_FALSE(out.good());  // bounded retries, then badbit — no spin
}

TEST_F(SocketPairTest, ShortReadsAndWritesAreLoopedToCompletion) {
  const std::string payload = Payload();
  // The 7-byte write cap shreds the payload into thousands of tiny skbs,
  // whose kernel truesize overhead overflows the socketpair send buffer
  // long before 32 KiB of payload is queued — so the reader must drain
  // concurrently or the writer deadlocks.
  std::string got;
  std::thread reader([&] {
    FdStreambuf in_buf(fds_[1], [](IoOp op, std::size_t) {
      IoFault f;
      if (op == IoOp::kRead) f.cap = 13;
      return f;
    });
    std::istream in(&in_buf);
    got = ReadAll(in);
  });
  {
    // Cap every write to 7 bytes, every read to 13: worst-case framing.
    FdStreambuf out_buf(fds_[0], [](IoOp op, std::size_t) {
      IoFault f;
      if (op == IoOp::kWrite) f.cap = 7;
      return f;
    });
    std::ostream out(&out_buf);
    out << payload;
    out.flush();
    EXPECT_TRUE(out.good());
  }
  ::shutdown(fds_[0], SHUT_WR);
  reader.join();
  EXPECT_EQ(got, payload);
}

TEST_F(SocketPairTest, ReadDisconnectIsEofNotACrash) {
  {
    FdStreambuf out_buf(fds_[0]);
    std::ostream out(&out_buf);
    out << "partial";
    out.flush();
  }
  int reads = 0;
  FdStreambuf in_buf(fds_[1], [&](IoOp op, std::size_t) {
    IoFault f;
    // First refill is clean; the peer "vanishes" on the second.
    if (op == IoOp::kRead && ++reads >= 2) f.disconnect = true;
    return f;
  });
  std::istream in(&in_buf);
  EXPECT_EQ(ReadAll(in), "partial");
  EXPECT_TRUE(in.eof());
}

TEST_F(SocketPairTest, WriteDisconnectFailsTheStream) {
  FdStreambuf out_buf(fds_[0], [](IoOp op, std::size_t) {
    IoFault f;
    if (op == IoOp::kWrite) f.disconnect = true;
    return f;
  });
  std::ostream out(&out_buf);
  out << "never arrives";
  out.flush();
  EXPECT_FALSE(out.good());
}

TEST_F(SocketPairTest, RealKernelEagainIsTheDeadlineSignal) {
  // A nonblocking fd with no data models an expired SO_RCVTIMEO: the
  // stream must fail the attempt immediately instead of retrying forever.
  ASSERT_EQ(::fcntl(fds_[1], F_SETFL, O_NONBLOCK), 0);
  FdStreambuf in_buf(fds_[1]);
  std::istream in(&in_buf);
  char c;
  in.read(&c, 1);
  EXPECT_TRUE(in.fail());
  EXPECT_EQ(in.gcount(), 0);
}

TEST_F(SocketPairTest, SeededIoPlanReplaysItsDecisions) {
  fault::IoFaultConfig config;
  config.eintr_rate = 0.3;
  config.short_io_rate = 0.3;
  config.disconnect_rate = 0.05;

  fault::IoFaultPlan a(config, /*campaign_seed=*/7, /*stream_index=*/2);
  fault::IoFaultPlan b(config, 7, 2);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.Next(IoOp::kRead, 4096);
    const auto fb = b.Next(IoOp::kRead, 4096);
    EXPECT_EQ(fa.error, fb.error);
    EXPECT_EQ(fa.cap, fb.cap);
    EXPECT_EQ(fa.disconnect, fb.disconnect);
  }
  EXPECT_EQ(a.faults_fired(), b.faults_fired());
  EXPECT_GT(a.faults_fired(), 0u);

  // A different stream index draws a different schedule.
  fault::IoFaultPlan c(config, 7, 3);
  bool any_diff = false;
  fault::IoFaultPlan a2(config, 7, 2);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a2.Next(IoOp::kRead, 4096);
    const auto fc = c.Next(IoOp::kRead, 4096);
    if (fa.error != fc.error || fa.cap != fc.cap ||
        fa.disconnect != fc.disconnect) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(SocketPairTest, PlannedFaultsStillDeliverEveryByteWhenTransient) {
  // End-to-end: a seeded plan with only transient faults (EINTR + short
  // I/O, no disconnects) must never corrupt or drop payload bytes.
  fault::IoFaultConfig config;
  config.eintr_rate = 0.2;
  config.short_io_rate = 0.4;

  const std::string payload = Payload();
  fault::IoFaultPlan writer_plan(config, 11, 0);
  {
    FdStreambuf out_buf(fds_[0], writer_plan.Hook());
    std::ostream out(&out_buf);
    out << payload;
    out.flush();
    ASSERT_TRUE(out.good());
  }
  ::shutdown(fds_[0], SHUT_WR);

  fault::IoFaultPlan reader_plan(config, 11, 1);
  FdStreambuf in_buf(fds_[1], reader_plan.Hook());
  std::istream in(&in_buf);
  EXPECT_EQ(ReadAll(in), payload);
  EXPECT_GT(writer_plan.faults_fired() + reader_plan.faults_fired(), 0u);
}

}  // namespace
