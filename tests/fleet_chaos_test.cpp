// Deterministic chaos soak against a REAL spta_fleet process tree.
//
// Where service_fleet_test exercises the in-process ShardedServer, this
// battery forks the actual supervisor binary (SPTA_FLEET_PATH) with real
// spta_serve children and drives a seeded fault::FleetChaosPlan at it:
// SIGKILLed children (crash injection), SIGSTOPped children (wedged —
// watchdog bait), and a disk-full leg (--cache-quota-bytes puts every
// child's persistent cache into simulated ENOSPC, which must degrade to
// memory-only, never corrupt). Throughout, a resilient driver issues a
// mixed request soak and the test asserts the self-healing contract:
//
//   * zero lost acked requests — every request is eventually answered,
//     through reconnect + resend when a child dies mid-connection;
//   * bit-identical ANALYZE responses vs an in-process batch reference
//     (chaos may slow the fleet down; it must never change an answer);
//   * a wedged child is detected by the watchdog and respawned within a
//     bounded number of probes;
//   * SIGTERM after the chaos drains the whole tree to exit 0 — chaos
//     respawns do not poison the exit code;
//   * a crash-looping child burns wall-clock (seeded backoff), not its
//     respawn budget, and the fleet reports degraded (exit 1).
//
// The chaos schedule is a pure function of the campaign seed: a failure
// here replays with the same kills in the same order.

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "fault/io_plan.hpp"
#include "mbpta/per_path.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

#ifndef SPTA_FLEET_PATH
#error "SPTA_FLEET_PATH must point at the spta_fleet binary"
#endif

namespace {

using namespace spta;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Uniform-ish jitter in [10000, 10500): passes the IID gate, fits
/// cleanly — the same shape the rest of the service battery uses.
std::vector<mbpta::PathObservation> MakeSample(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<mbpta::PathObservation> sample(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    sample[i].time =
        10000.0 + 500.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53);
    sample[i].path_id = 0;
  }
  return sample;
}

int FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  int port = -1;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/spta_chaos_cache_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path_ = tmpl;
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Extracts the integer value of a `"key":N` field from a one-line JSON
/// log record. Returns false when the key is absent.
bool JsonInt(const std::string& line, const std::string& key, long* value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *value = std::strtol(line.c_str() + at + needle.size(), nullptr, 10);
  return true;
}

bool JsonEventIs(const std::string& line, const char* event) {
  return line.find(std::string("\"event\":\"") + event + "\"") !=
         std::string::npos;
}

/// The spta_fleet process under test, with its stderr on a pipe. The
/// supervisor's structured one-line-JSON log is its observable behavior:
/// `"event":"spawned"` / `"event":"exited"` records track the live
/// children, `"event":"unresponsive"` proves the watchdog fired, and
/// `"event":"flight_harvest"` proves a dead child's flight ring was
/// recovered. Pump() drains the pipe; the parsers below are
/// line-oriented and tolerate partial reads (the tail is kept).
class FleetProcess {
 public:
  bool Start(const std::vector<std::string>& args) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(fds[1], 2);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(static_cast<const char*>(
          SPTA_FLEET_PATH)));
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(SPTA_FLEET_PATH, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    err_fd_ = fds[0];
    ::fcntl(err_fd_, F_SETFL, O_NONBLOCK);
    return true;
  }

  ~FleetProcess() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
    if (err_fd_ >= 0) ::close(err_fd_);
  }

  void Pump() {
    char buffer[4096];
    ssize_t n = 0;
    while (err_fd_ >= 0 &&
           (n = ::read(err_fd_, buffer, sizeof(buffer))) > 0) {
      log_.append(buffer, static_cast<std::size_t>(n));
    }
    // Parse complete lines only; keep the tail for the next Pump.
    std::size_t start = parsed_;
    for (;;) {
      const std::size_t eol = log_.find('\n', start);
      if (eol == std::string::npos) break;
      ParseLine(log_.substr(start, eol - start));
      start = eol + 1;
    }
    parsed_ = start;
  }

  std::vector<pid_t> AlivePids() {
    Pump();
    return alive_;
  }

  std::size_t spawned_total() const { return spawned_total_; }
  std::size_t unresponsive_total() const { return unresponsive_total_; }
  std::size_t flight_harvests() const { return flight_harvests_; }
  std::size_t flight_harvests_valid() const { return flight_harvests_valid_; }
  const std::string& log() const { return log_; }
  pid_t pid() const { return pid_; }

  /// Reaps the supervisor with a deadline; returns the exit status or -1.
  int WaitExit(std::int64_t deadline_ms) {
    const std::int64_t until = NowMs() + deadline_ms;
    int status = 0;
    while (NowMs() < until) {
      const pid_t done = ::waitpid(pid_, &status, WNOHANG);
      if (done == pid_) {
        pid_ = -1;
        Pump();
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  }

 private:
  void ParseLine(const std::string& line) {
    long child = 0;
    if (!JsonInt(line, "child_pid", &child)) return;
    const pid_t parsed = static_cast<pid_t>(child);
    if (JsonEventIs(line, "spawned")) {
      ++spawned_total_;
      alive_.push_back(parsed);
      return;
    }
    if (JsonEventIs(line, "unresponsive")) {
      ++unresponsive_total_;
      return;  // Still alive until the reaper logs the exit.
    }
    if (JsonEventIs(line, "flight_harvest")) {
      ++flight_harvests_;
      long valid = 0;
      if (JsonInt(line, "valid", &valid) && valid == 1) {
        ++flight_harvests_valid_;
      }
      return;
    }
    // Death notices: a drained/given-up child logs `exited` /
    // `respawn_limit`; a chaos casualty that will be replaced logs
    // `respawn` / `crash_loop_respawn`. All four mean the pid is gone.
    if (JsonEventIs(line, "exited") || JsonEventIs(line, "respawn") ||
        JsonEventIs(line, "crash_loop_respawn") ||
        JsonEventIs(line, "respawn_limit")) {
      for (std::size_t i = 0; i < alive_.size(); ++i) {
        if (alive_[i] == parsed) {
          alive_.erase(alive_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }

  pid_t pid_ = -1;
  int err_fd_ = -1;
  std::string log_;
  std::size_t parsed_ = 0;
  std::vector<pid_t> alive_;
  std::size_t spawned_total_ = 0;
  std::size_t unresponsive_total_ = 0;
  std::size_t flight_harvests_ = 0;
  std::size_t flight_harvests_valid_ = 0;
};

/// Issues requests against the fleet port, reconnecting and RESENDING on
/// transport failure: an acked request is never lost, an unacked one is
/// retried until the fleet heals. The generous attempt budget covers the
/// worst healing path (watchdog detect + SIGKILL + respawn + rebind).
class ResilientDriver {
 public:
  explicit ResilientDriver(int port) : port_(port) {}

  service::Response Call(const service::Request& request) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (!EnsureConnected()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      service::Response response = client_->Call(request);
      if (response.ok) {
        ++acked_;
        return response;
      }
      const std::string code = response.args.GetString("code");
      if (code == "transport") {
        // The child died (or was wedged past the IO timeout) with our
        // request possibly unacked: drop the connection, resend.
        Disconnect();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      ++acked_;  // A definitive ERR is still an ack (nothing was lost).
      return response;
    }
    return service::ErrResponse("transport", "fleet never healed");
  }

  std::uint64_t acked() const { return acked_; }

  void Disconnect() {
    client_.reset();
    connection_.reset();
  }

 private:
  bool EnsureConnected() {
    if (client_) return true;
    std::string error;
    connection_ = service::TcpConnection::Connect(
        "127.0.0.1", static_cast<std::uint16_t>(port_), &error, 2000.0);
    if (!connection_) return false;
    client_ = std::make_unique<service::Client>(connection_->in(),
                                                connection_->out());
    return true;
  }

  int port_;
  std::unique_ptr<service::TcpConnection> connection_;
  std::unique_ptr<service::Client> client_;
  std::uint64_t acked_ = 0;
};

/// Counts `flight-*.json` dumps harvested into `dir`.
std::size_t CountFlightDumps(const std::string& dir) {
  std::size_t count = 0;
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name.rfind("flight-", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        ++count;
      }
    }
    ::closedir(handle);
  }
  return count;
}

service::Request InlineAnalyze(const std::vector<mbpta::PathObservation>&
                                   sample) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args.SetUint("count", sample.size());
  request.payload = service::EncodeSamplePayload(sample);
  return request;
}

/// The batch reference: the same engine, in process, no chaos. Responses
/// are memoized per sample seed; analyze_us is timing noise, everything
/// else must match the fleet's answer bit for bit.
class BatchReference {
 public:
  BatchReference() : server_(service::ServerOptions{}) {}

  const service::Response& For(std::uint64_t seed, std::size_t n) {
    auto it = memo_.find(seed);
    if (it != memo_.end()) return it->second;
    service::Response response = server_.Execute(InlineAnalyze(
        MakeSample(n, seed)));
    return memo_.emplace(seed, std::move(response)).first->second;
  }

 private:
  service::Server server_;
  std::map<std::uint64_t, service::Response> memo_;
};

void ExpectMatchesReference(const service::Response& got,
                            const service::Response& want,
                            std::uint64_t seed) {
  ASSERT_TRUE(got.ok) << "seed " << seed << ": " << got.payload;
  ASSERT_TRUE(want.ok);
  EXPECT_EQ(got.args.GetString("pwcet"), want.args.GetString("pwcet"))
      << "seed " << seed;
  EXPECT_EQ(got.args.GetString("n"), want.args.GetString("n"))
      << "seed " << seed;
  EXPECT_EQ(got.payload, want.payload) << "seed " << seed;
}

TEST(FleetChaosTest, SoakLosesNoAckedRequestsAndMatchesBatch) {
  std::signal(SIGPIPE, SIG_IGN);
  const int port = FreePort();
  ASSERT_GT(port, 0);
  TempDir cache_dir;
  ASSERT_FALSE(cache_dir.path().empty());
  TempDir flight_dir;
  ASSERT_FALSE(flight_dir.path().empty());

  // Aggressive healing knobs so the whole soak (chaos + recoveries +
  // drain) fits a test budget: 100 ms probe spacing, 300 ms wedge
  // verdict. --cache-quota-bytes is the standing disk-full leg — every
  // child's persistent cache trips simulated ENOSPC almost immediately
  // and must degrade to memory-only while answers stay correct.
  FleetProcess fleet;
  ASSERT_TRUE(fleet.Start({
      "--tcp", std::to_string(port), "--procs", "2", "--shards", "1",
      "--cache-dir", cache_dir.path(), "--cache-quota-bytes", "4096",
      "--flight-dir", flight_dir.path(),
      "--respawn-limit", "100", "--min-uptime-ms", "50",
      "--respawn-base-ms", "20", "--respawn-cap-ms", "200",
      "--watchdog-interval-ms", "100", "--watchdog-timeout-ms", "300",
      "--watchdog-seed", "7", "--backoff-seed", "7"}));

  ResilientDriver driver(port);
  BatchReference reference;

  // Wait for the fleet to serve at all before the storm starts.
  service::Request readiness;
  readiness.kind = service::RequestKind::kPing;
  ASSERT_TRUE(driver.Call(readiness).ok) << "fleet never came up";

  fault::FleetChaosConfig chaos;
  chaos.kill_rate = 0.04;
  chaos.wedge_rate = 0.02;
  chaos.disk_full_rate = 0.03;
  fault::FleetChaosPlan plan(chaos, /*campaign_seed=*/20260809);

  const std::size_t kSteps = 210;
  const std::size_t kSampleN = 260;
  std::size_t kills = 0;
  std::size_t wedges = 0;
  std::uint64_t issued = 1;  // The readiness ping above.
  std::uint64_t next_unique_seed = 5000;
  // A pid already hit by chaos is skipped until the supervisor replaces
  // it (a second signal would not cause a second respawn, which would
  // break the spawned >= casualties accounting below).
  std::vector<pid_t> chaosed;
  const auto fresh_target = [&chaosed](pid_t pid) {
    for (const pid_t hit : chaosed) {
      if (hit == pid) return false;
    }
    return true;
  };

  for (std::size_t step = 0; step < kSteps; ++step) {
    std::vector<pid_t> alive = fleet.AlivePids();
    const auto decision = plan.Next(alive.size());
    if (decision.action == fault::FleetChaosAction::kKillChild) {
      const pid_t victim = alive[decision.target];
      if (fresh_target(victim) && ::kill(victim, SIGKILL) == 0) {
        ++kills;
        chaosed.push_back(victim);
      }
    } else if (decision.action == fault::FleetChaosAction::kWedgeChild) {
      const pid_t victim = alive[decision.target];
      if (fresh_target(victim) && ::kill(victim, SIGSTOP) == 0) {
        ++wedges;
        chaosed.push_back(victim);
      }
    } else if (decision.action == fault::FleetChaosAction::kDiskFull) {
      // Push fresh entries at the quota'd cache: unique analyses force
      // Put() into the simulated-ENOSPC path on whichever child serves
      // them. The answers must still match the batch reference.
      const std::uint64_t seed = next_unique_seed++;
      const auto got = driver.Call(InlineAnalyze(MakeSample(kSampleN, seed)));
      ++issued;
      ExpectMatchesReference(got, reference.For(seed, kSampleN), seed);
    }

    // The step's regular soak request: a deterministic kind mix.
    switch (step % 5) {
      case 0: {
        service::Request ping;
        ping.kind = service::RequestKind::kPing;
        EXPECT_TRUE(driver.Call(ping).ok);
        break;
      }
      case 1: {
        service::Request health;
        health.kind = service::RequestKind::kHealth;
        const auto response = driver.Call(health);
        EXPECT_TRUE(response.ok) << response.payload;
        EXPECT_EQ(response.args.GetString("role"), "fleet");
        break;
      }
      case 2: {
        service::Request metrics;
        metrics.kind = service::RequestKind::kMetrics;
        EXPECT_TRUE(driver.Call(metrics).ok);
        break;
      }
      default: {
        // A small rotating pool: re-analyses exercise memo/warm paths
        // across respawns; each must equal the batch answer.
        const std::uint64_t seed = 100 + (step % 7);
        const auto got =
            driver.Call(InlineAnalyze(MakeSample(kSampleN, seed)));
        ExpectMatchesReference(got, reference.For(seed, kSampleN), seed);
        break;
      }
    }
    ++issued;
  }

  EXPECT_GE(issued, 200u) << "soak volume contract";
  EXPECT_EQ(driver.acked(), issued) << "every request must be acked";
  EXPECT_GE(kills + wedges, 3u) << "the chaos schedule must actually bite";
  EXPECT_GE(plan.faults_fired(), kills + wedges);

  // Dedicated wedge: SIGSTOP one child and require the watchdog to
  // detect and replace it within a bounded number of probes (100 ms
  // spacing + 300 ms verdict + respawn — 5 s is many probes of slack).
  std::vector<pid_t> alive = fleet.AlivePids();
  ASSERT_FALSE(alive.empty());
  const pid_t wedged = alive.front();
  const std::size_t unresponsive_before = fleet.unresponsive_total();
  const std::size_t spawned_before = fleet.spawned_total();
  ASSERT_EQ(::kill(wedged, SIGSTOP), 0);
  const std::int64_t wedge_deadline = NowMs() + 5000;
  while (NowMs() < wedge_deadline &&
         fleet.spawned_total() <= spawned_before) {
    fleet.Pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(fleet.unresponsive_total(), unresponsive_before)
      << "watchdog never flagged the wedged child\n"
      << fleet.log();
  EXPECT_GT(fleet.spawned_total(), spawned_before)
      << "wedged child was never replaced\n"
      << fleet.log();

  // Post-chaos health: the fleet serves again, and the supervisor kept
  // every replacement inside the respawn budget (no gave-up children).
  service::Request ping;
  ping.kind = service::RequestKind::kPing;
  EXPECT_TRUE(driver.Call(ping).ok);
  driver.Disconnect();

  // Graceful drain: chaos respawns must not poison the exit code.
  ASSERT_EQ(::kill(fleet.pid(), SIGTERM), 0);
  const int status = fleet.WaitExit(15000);
  ASSERT_NE(status, -1) << "fleet did not drain in time\n" << fleet.log();
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "exit status " << status << "\n"
      << fleet.log();
  EXPECT_GE(fleet.spawned_total(), 2u + kills + wedges)
      << "every chaos casualty must have been respawned\n"
      << fleet.log();

  // Flight-recorder contract: every reaped child — SIGKILLed mid-soak,
  // watchdog-killed while wedged, or drained at SIGTERM — left a
  // harvested Chrome-trace dump behind, and the harvests parsed as valid
  // rings (a torn in-flight record is tolerated; a corrupt ring is not).
  EXPECT_GE(fleet.flight_harvests(), 2u + kills + wedges)
      << "every reaped child must be harvested\n"
      << fleet.log();
  EXPECT_EQ(fleet.flight_harvests_valid(), fleet.flight_harvests())
      << "every harvested ring must carry the valid magic/layout\n"
      << fleet.log();
  EXPECT_GE(CountFlightDumps(flight_dir.path()), 2u + kills)
      << "flight dumps missing from " << flight_dir.path() << "\n"
      << fleet.log();
}

TEST(FleetChaosTest, CrashLoopBackoffHoldsBudget) {
  // A child whose binary cannot exec dies within min-uptime every time:
  // the supervisor must treat it as a crash loop and spend WALL-CLOCK
  // (seeded decorrelated-jitter backoff, >= base per respawn), not burn
  // the budget in a tight fork loop. With base 80 ms and 4 respawns the
  // run cannot finish faster than ~320 ms; without the backoff it
  // finishes in single-digit milliseconds.
  const int port = FreePort();
  ASSERT_GT(port, 0);
  FleetProcess fleet;
  const std::int64_t started = NowMs();
  ASSERT_TRUE(fleet.Start({
      "--tcp", std::to_string(port), "--procs", "1",
      "--serve-bin", "/nonexistent/spta_serve_missing",
      "--respawn-limit", "4", "--min-uptime-ms", "1000",
      "--respawn-base-ms", "80", "--respawn-cap-ms", "400",
      "--watchdog-interval-ms", "0", "--backoff-seed", "11"}));
  const int status = fleet.WaitExit(20000);
  const std::int64_t elapsed = NowMs() - started;
  ASSERT_NE(status, -1) << "crash-looping fleet never gave up\n"
                        << fleet.log();
  // Degraded wind-down: respawn limit hit => exit 1.
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 1)
      << "exit status " << status << "\n"
      << fleet.log();
  // Initial spawn + exactly the budgeted respawns — the backoff did not
  // let the loop spin past its limit, and the limit was honored.
  EXPECT_EQ(fleet.spawned_total(), 5u) << fleet.log();
  EXPECT_GE(elapsed, 300) << "respawn budget was burned without backoff\n"
                          << fleet.log();
  EXPECT_NE(fleet.log().find("\"event\":\"crash_loop_respawn\""),
            std::string::npos);
  EXPECT_NE(fleet.log().find("\"event\":\"respawn_limit\""),
            std::string::npos);
}

}  // namespace
