// Golden-value regression guards + cross-kernel static-bound soundness.
//
// The golden values pin the exact timing of one reference workload under
// fixed seeds. They are EXPECTED to change whenever the timing model is
// deliberately re-tuned — the test exists so such changes are explicit
// (update the constants alongside the model change and re-baseline the
// benches) rather than accidental drift.
#include <gtest/gtest.h>

#include <functional>
#include <iterator>
#include <span>
#include <vector>

#include "analysis/atlas_campaign.hpp"
#include "analysis/batch_campaign.hpp"
#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "atlas/kernel_store.hpp"
#include "atlas/memo_runner.hpp"
#include "atlas/mine.hpp"
#include "atlas/state_digest.hpp"
#include "apps/kernels.hpp"
#include "apps/tvca.hpp"
#include "mbpta/mbpta.hpp"
#include "prng/xoshiro.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/platform.hpp"
#include "swcet/static_bound.hpp"
#include "trace/interpreter.hpp"

namespace spta {
namespace {

TEST(GoldenRegressionTest, ReferenceFrameTiming) {
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(42);
  EXPECT_EQ(frame.trace.records.size(), 224837u);
  EXPECT_EQ(frame.path_id, 4u);

  sim::Platform det(sim::DetLeon3Config(), 1);
  sim::Platform rnd(sim::RandLeon3Config(), 1);
  EXPECT_EQ(det.Run(frame.trace, 7).cycles, 826594u);
  EXPECT_EQ(rnd.Run(frame.trace, 7).cycles, 873322u);
  EXPECT_EQ(rnd.Run(frame.trace, 8).cycles, 879851u);
}

// ---------------------------------------------------------------------------
// Per-seed cycle + miss-count goldens for three workloads (the reduced
// TVCA frame and two kernel traces), frozen from the pre-fast-path tree.
// The throughput refactor's bit-identity contract means these can never
// drift; a deliberate timing-model change re-baselines them explicitly.
struct SeedGolden {
  std::uint64_t seed;
  std::uint64_t cycles;
  std::uint64_t il1_misses;
  std::uint64_t dl1_misses;
  std::uint64_t itlb_misses;
  std::uint64_t dtlb_misses;
};

void ExpectResultMatches(const sim::RunResult& result,
                         const SeedGolden& golden, const char* workload) {
  EXPECT_EQ(result.cycles, golden.cycles) << workload << " seed "
                                          << golden.seed;
  EXPECT_EQ(result.il1.misses, golden.il1_misses) << workload;
  EXPECT_EQ(result.dl1.misses, golden.dl1_misses) << workload;
  EXPECT_EQ(result.itlb.misses, golden.itlb_misses) << workload;
  EXPECT_EQ(result.dtlb.misses, golden.dtlb_misses) << workload;
}

void ExpectRunMatches(sim::Platform& platform, const trace::Trace& t,
                      const SeedGolden& golden, const char* workload) {
  ExpectResultMatches(platform.Run(t, golden.seed), golden, workload);
}

/// Replays a golden table through the lockstep batch kernel — all seeds in
/// ONE batch — so the pinned per-seed numbers also guard the batched path.
void ExpectBatchMatches(const sim::PlatformConfig& config,
                        const trace::Trace& t,
                        std::span<const SeedGolden> goldens,
                        const char* workload) {
  const auto prepared = sim::batch::PrepareTrace(t, config);
  sim::batch::BatchPlatform batch(config, goldens.size());
  std::vector<Seed> seeds;
  for (const auto& g : goldens) seeds.push_back(g.seed);
  const auto results = batch.RunBatch(prepared, seeds);
  for (std::size_t l = 0; l < goldens.size(); ++l) {
    ExpectResultMatches(results[l], goldens[l], workload);
  }
}

// Frozen per-seed goldens, shared by the serial and batched guards. The
// reduced TVCA frame's DL1 conflict misses move with the placement seed;
// matmul/fir fit L1 entirely, so every seed pins identical numbers.
constexpr SeedGolden kReducedTvcaDetGolden = {7, 50538, 112, 400, 4, 7};
constexpr SeedGolden kReducedTvcaRandGoldens[] = {
    {1, 50592, 112, 400, 4, 7}, {2, 50634, 112, 401, 4, 7},
    {3, 50592, 112, 400, 4, 7}, {4, 50592, 112, 400, 4, 7},
    {5, 50706, 112, 401, 4, 7},
};
constexpr SeedGolden kMatmulGoldens[] = {
    {7, 34209, 4, 150, 1, 1}, {1, 34209, 4, 150, 1, 1},
    {2, 34209, 4, 150, 1, 1}, {3, 34209, 4, 150, 1, 1},
    {4, 34209, 4, 150, 1, 1}, {5, 34209, 4, 150, 1, 1},
};
constexpr SeedGolden kFirGoldens[] = {
    {7, 11779, 3, 84, 1, 1}, {1, 11779, 3, 84, 1, 1},
    {2, 11779, 3, 84, 1, 1}, {3, 11779, 3, 84, 1, 1},
    {4, 11779, 3, 84, 1, 1}, {5, 11779, 3, 84, 1, 1},
};

apps::TvcaConfig ReducedTvcaConfig() {
  apps::TvcaConfig tc;
  tc.sensor_channels = 4;
  tc.samples_per_frame = 8;
  tc.fir_taps = 6;
  tc.state_dim = 8;
  tc.integrator_steps = 6;
  tc.control_iterations = 1;
  tc.straightline_instructions = 200;
  tc.dispatch_overhead = 32;
  return tc;
}

trace::Trace MatmulTrace() {
  const trace::Program program = apps::MakeMatMulProgram(10);
  trace::Interpreter interp(program);
  prng::Xoshiro128pp rng(77);
  for (int i = 0; i < 100; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), rng.UniformUnit());
    interp.WriteFp(1, static_cast<std::size_t>(i), rng.UniformUnit());
  }
  return interp.Run();
}

trace::Trace FirTrace() {
  const trace::Program program = apps::MakeFirProgram(8, 64);
  trace::Interpreter interp(program);
  prng::Xoshiro128pp rng(78);
  for (int i = 0; i < 8; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), 0.125);
  }
  for (int i = 0; i < 72; ++i) {
    interp.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
  }
  return interp.Run();
}

TEST(GoldenRegressionTest, ReducedTvcaPerSeedCycles) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const auto frame = app.BuildFrame(42);
  ASSERT_EQ(frame.trace.records.size(), 9065u);
  ASSERT_EQ(frame.path_id, 4u);

  sim::Platform det(sim::DetLeon3Config(), 1);
  ExpectRunMatches(det, frame.trace, kReducedTvcaDetGolden,
                   "tvca-reduced det");

  // Randomized platform: placement/replacement seeds perturb DL1 conflict
  // misses run to run, while the instruction side stays untouched (the
  // reduced frame's code footprint fits IL1 for every placement seed).
  sim::Platform rnd(sim::RandLeon3Config(), 1);
  for (const auto& golden : kReducedTvcaRandGoldens) {
    ExpectRunMatches(rnd, frame.trace, golden, "tvca-reduced rand");
  }
}

TEST(GoldenRegressionTest, MatmulKernelPerSeedCycles) {
  const trace::Trace t = MatmulTrace();
  ASSERT_EQ(t.records.size(), 13286u);

  // The 10x10 matmul's whole footprint fits both L1s: randomization has
  // nothing to perturb (cold misses only), so DET and every RAND seed pin
  // the exact same numbers — itself a property worth freezing.
  sim::Platform det(sim::DetLeon3Config(), 1);
  ExpectRunMatches(det, t, kMatmulGoldens[0], "matmul det");
  sim::Platform rnd(sim::RandLeon3Config(), 1);
  for (std::size_t i = 1; i < std::size(kMatmulGoldens); ++i) {
    ExpectRunMatches(rnd, t, kMatmulGoldens[i], "matmul rand");
  }
}

TEST(GoldenRegressionTest, FirKernelPerSeedCycles) {
  const trace::Trace t = FirTrace();
  ASSERT_EQ(t.records.size(), 5255u);

  sim::Platform det(sim::DetLeon3Config(), 1);
  ExpectRunMatches(det, t, kFirGoldens[0], "fir det");
  sim::Platform rnd(sim::RandLeon3Config(), 1);
  for (std::size_t i = 1; i < std::size(kFirGoldens); ++i) {
    ExpectRunMatches(rnd, t, kFirGoldens[i], "fir rand");
  }
}

// The SAME frozen tables replayed through the lockstep batch kernel: every
// pinned seed rides in one multi-lane batch and must land on the identical
// cycle and miss counts. (The det golden runs on the DET platform config,
// whose deterministic policies are still exercised by the lane arrays.)
TEST(GoldenRegressionTest, BatchedPathReproducesPerSeedGoldens) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const auto frame = app.BuildFrame(42);
  ExpectBatchMatches(sim::DetLeon3Config(), frame.trace,
                     {&kReducedTvcaDetGolden, 1}, "tvca-reduced det batched");
  ExpectBatchMatches(sim::RandLeon3Config(), frame.trace,
                     kReducedTvcaRandGoldens, "tvca-reduced rand batched");

  const trace::Trace matmul = MatmulTrace();
  ExpectBatchMatches(sim::DetLeon3Config(), matmul, {kMatmulGoldens, 1},
                     "matmul det batched");
  ExpectBatchMatches(sim::RandLeon3Config(), matmul,
                     std::span<const SeedGolden>(kMatmulGoldens).subspan(1),
                     "matmul rand batched");

  const trace::Trace fir = FirTrace();
  ExpectBatchMatches(sim::DetLeon3Config(), fir, {kFirGoldens, 1},
                     "fir det batched");
  ExpectBatchMatches(sim::RandLeon3Config(), fir,
                     std::span<const SeedGolden>(kFirGoldens).subspan(1),
                     "fir rand batched");
}

// pWCET-quantile equality: for three campaign master seeds, the batched
// TVCA campaign (scenario-grouped batches, 2 worker threads) must hand the
// MBPTA pipeline the exact sample the serial runner produces — hence the
// same Gumbel fit and the same pWCET quantiles to the last bit.
TEST(GoldenRegressionTest, BatchedCampaignPwcetQuantilesMatchSerial) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const auto platform_config = sim::RandLeon3Config();
  for (const std::uint64_t master : {11ull, 22ull, 33ull}) {
    analysis::CampaignConfig cc;
    cc.runs = 120;
    cc.master_seed = master;
    cc.distinct_scenarios = 6;  // fixed suite: runs share frames -> batches

    sim::Platform platform(platform_config, master);
    const auto serial_times =
        analysis::ExtractTimes(analysis::RunTvcaCampaign(platform, app, cc));
    const auto batched_times =
        analysis::ExtractTimes(analysis::RunTvcaCampaignBatched(
            platform_config, app, cc, /*lanes=*/8, /*jobs=*/2));
    ASSERT_EQ(serial_times, batched_times) << "master " << master;

    const auto serial_fit = mbpta::AnalyzeSample(serial_times);
    const auto batched_fit = mbpta::AnalyzeSample(batched_times);
    ASSERT_EQ(serial_fit.usable, batched_fit.usable) << "master " << master;
    if (serial_fit.usable) {
      for (const double p : {1e-9, 1e-12, 1e-15}) {
        EXPECT_EQ(serial_fit.PwcetAt(p), batched_fit.PwcetAt(p))
            << "master " << master << " p " << p;
      }
    }
  }
}

/// Replays a golden table through the atlas memoized runner — one shared
/// KernelStore across every seed, the production arrangement — so the
/// pinned per-seed numbers also guard the kernel fast-forward path.
void ExpectMemoMatches(const sim::PlatformConfig& config,
                       const trace::Trace& t,
                       std::span<const SeedGolden> goldens,
                       const char* workload) {
  const atlas::Segmentation segmentation = atlas::MineKernels(t);
  const DualHash config_digest = atlas::ConfigDigest(config);
  sim::Platform platform(config, 1);
  atlas::KernelStore store;
  for (const auto& g : goldens) {
    ExpectResultMatches(atlas::RunMemoized(platform, t, segmentation,
                                           g.seed, config_digest, &store),
                        g, workload);
  }
}

TEST(GoldenRegressionTest, AtlasMemoizedPathReproducesPerSeedGoldens) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const auto frame = app.BuildFrame(42);
  ExpectMemoMatches(sim::DetLeon3Config(), frame.trace,
                    {&kReducedTvcaDetGolden, 1}, "tvca-reduced det memo");
  ExpectMemoMatches(sim::RandLeon3Config(), frame.trace,
                    kReducedTvcaRandGoldens, "tvca-reduced rand memo");

  const trace::Trace matmul = MatmulTrace();
  ExpectMemoMatches(sim::DetLeon3Config(), matmul, {kMatmulGoldens, 1},
                    "matmul det memo");
  ExpectMemoMatches(sim::RandLeon3Config(), matmul,
                    std::span<const SeedGolden>(kMatmulGoldens).subspan(1),
                    "matmul rand memo");

  const trace::Trace fir = FirTrace();
  ExpectMemoMatches(sim::DetLeon3Config(), fir, {kFirGoldens, 1},
                    "fir det memo");
  ExpectMemoMatches(sim::RandLeon3Config(), fir,
                    std::span<const SeedGolden>(kFirGoldens).subspan(1),
                    "fir rand memo");
}

// pWCET-quantile equality for the memoized campaign path (the --atlas
// flag): same sample as the serial runner, hence the same fit and the
// same quantiles to the last bit.
TEST(GoldenRegressionTest, AtlasCampaignPwcetQuantilesMatchSerial) {
  const apps::TvcaApp app(ReducedTvcaConfig());
  const auto platform_config = sim::RandLeon3Config();
  for (const std::uint64_t master : {11ull, 22ull, 33ull}) {
    analysis::CampaignConfig cc;
    cc.runs = 120;
    cc.master_seed = master;
    cc.distinct_scenarios = 6;

    sim::Platform platform(platform_config, master);
    const auto serial_times =
        analysis::ExtractTimes(analysis::RunTvcaCampaign(platform, app, cc));
    const auto memo_times = analysis::ExtractTimes(
        analysis::RunTvcaCampaignMemoized(platform_config, app, cc,
                                          /*jobs=*/2));
    ASSERT_EQ(serial_times, memo_times) << "master " << master;

    const auto serial_fit = mbpta::AnalyzeSample(serial_times);
    const auto memo_fit = mbpta::AnalyzeSample(memo_times);
    ASSERT_EQ(serial_fit.usable, memo_fit.usable) << "master " << master;
    if (serial_fit.usable) {
      for (const double p : {1e-9, 1e-12, 1e-15}) {
        EXPECT_EQ(serial_fit.PwcetAt(p), memo_fit.PwcetAt(p))
            << "master " << master << " p " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end MBPTA pipeline golden values, produced THROUGH the parallel
// campaign runner: the sample vector must equal the serial runner's bit for
// bit, and the downstream pipeline (Ljung-Box, KS, Gumbel fit, pWCET) must
// therefore reproduce the pinned numbers regardless of the job count used
// to collect the measurements. Re-baseline these constants only alongside a
// deliberate timing-model change.
TEST(GoldenRegressionTest, MbptaPipelineThroughParallelRunner) {
  apps::TvcaConfig tc;  // reduced frame so 300 runs stay test-sized
  tc.sensor_channels = 4;
  tc.samples_per_frame = 8;
  tc.fir_taps = 6;
  tc.state_dim = 8;
  tc.integrator_steps = 6;
  tc.control_iterations = 1;
  tc.straightline_instructions = 200;
  tc.dispatch_overhead = 32;
  const apps::TvcaApp app(tc);

  analysis::CampaignConfig cc;
  cc.runs = 300;  // fresh inputs per run, the paper's analysis protocol

  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto serial_times =
      analysis::ExtractTimes(analysis::RunTvcaCampaign(platform, app, cc));
  const auto parallel_times = analysis::ExtractTimes(
      analysis::RunTvcaCampaignParallel(sim::RandLeon3Config(), app, cc, 4));
  ASSERT_EQ(serial_times, parallel_times);  // bit-identical doubles

  const auto result = mbpta::AnalyzeSample(parallel_times);
  EXPECT_TRUE(result.usable);
  EXPECT_TRUE(result.iid.Passed());
  // Golden i.i.d. gate values and pWCET, pinned from the deterministic
  // sample (identical under any --jobs, asserted above).
  EXPECT_NEAR(result.iid.independence.p_value, 0.142373525583, 1e-9);
  EXPECT_NEAR(result.iid.identical_distribution.p_value, 0.799993650987,
              1e-9);
  EXPECT_EQ(result.block_size, 10u);
  EXPECT_NEAR(result.PwcetAt(1e-12), 88623.514295, 1e-3);
}

// ---------------------------------------------------------------------------
// Static-bound soundness across the whole kernel suite: for every kernel,
// derive loop bounds from one exercising trace (with margin) and check the
// bound dominates simulated executions over fresh inputs and seeds.
struct KernelUnderTest {
  const char* name;
  std::function<trace::Program()> make_program;
  std::function<void(trace::Interpreter&, std::uint64_t)> poke;
};

class StaticSoundnessSweep
    : public ::testing::TestWithParam<KernelUnderTest> {};

TEST_P(StaticSoundnessSweep, BoundDominatesSimulatedRuns) {
  const auto& k = GetParam();
  const trace::Program program = k.make_program();

  // Evidence trace for loop bounds (seed 0); margin covers other inputs.
  trace::Interpreter evidence(program);
  k.poke(evidence, 0);
  const trace::Trace evidence_trace = evidence.Run();
  const std::vector<const trace::Trace*> traces = {&evidence_trace};
  const auto bounds = swcet::DeriveLoopBounds(program, traces, 1.5);
  const auto config = sim::RandLeon3Config();
  const auto bound = swcet::ComputeStaticBound(program, bounds, config);

  sim::Platform platform(config, 1);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trace::Interpreter interp(program);
    k.poke(interp, seed);
    const auto t = interp.Run();
    const auto res = platform.Run(t, seed);
    EXPECT_GE(bound.wcet_bound, res.cycles) << k.name << " seed " << seed;
    // The best-case figure is a floor under the ANNOTATED (margin-inflated)
    // iteration counts, not under observed executions — so it is only
    // sanity-checked for being strictly below the worst-case bound.
    EXPECT_LT(bound.bcet_bound, bound.wcet_bound) << k.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, StaticSoundnessSweep,
    ::testing::Values(
        KernelUnderTest{"matmul",
                        [] { return apps::MakeMatMulProgram(10); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 100; ++i) {
                            in.WriteFp(0, (std::size_t)i, rng.UniformUnit());
                            in.WriteFp(1, (std::size_t)i, rng.UniformUnit());
                          }
                        }},
        KernelUnderTest{"fir",
                        [] { return apps::MakeFirProgram(8, 64); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 8; ++i) {
                            in.WriteFp(0, (std::size_t)i, 0.125);
                          }
                          for (int i = 0; i < 72; ++i) {
                            in.WriteFp(1, (std::size_t)i, rng.Normal());
                          }
                        }},
        KernelUnderTest{"crc",
                        [] { return apps::MakeCrcProgram(128); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 256; ++i) {
                            in.WriteInt(0, (std::size_t)i,
                                        (std::int32_t)(rng.Next() & 0xffff));
                          }
                          for (int i = 0; i < 128; ++i) {
                            in.WriteInt(1, (std::size_t)i,
                                        (std::int32_t)(rng.Next() & 0xff));
                          }
                        }},
        KernelUnderTest{"bubble-sort",
                        [] { return apps::MakeBubbleSortProgram(40); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 40; ++i) {
                            in.WriteInt(0, (std::size_t)i,
                                        (std::int32_t)rng.UniformBelow(1000));
                          }
                        }},
        KernelUnderTest{"binary-search",
                        [] { return apps::MakeBinarySearchProgram(256, 16); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 256; ++i) {
                            in.WriteInt(0, (std::size_t)i, 2 * i);
                          }
                          for (int q = 0; q < 16; ++q) {
                            in.WriteInt(1, (std::size_t)q,
                                        (std::int32_t)rng.UniformBelow(512));
                          }
                        }},
        KernelUnderTest{"interpolation",
                        [] { return apps::MakeInterpolationProgram(32, 16); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 32; ++i) {
                            in.WriteFp(0, (std::size_t)i, 1.0 * i);
                            in.WriteFp(1, (std::size_t)i, 0.5 * i);
                          }
                          for (int q = 0; q < 16; ++q) {
                            in.WriteFp(2, (std::size_t)q,
                                       rng.UniformReal(-3.0, 35.0));
                          }
                        }},
        KernelUnderTest{"lu-solve",
                        [] { return apps::MakeLuSolveProgram(8); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          for (int i = 0; i < 8; ++i) {
                            for (int j = 0; j < 8; ++j) {
                              double v = 0.2 * (rng.UniformUnit() - 0.5);
                              if (i == j) v += 3.0;
                              in.WriteFp(0, (std::size_t)(i * 8 + j), v);
                            }
                            in.WriteFp(1, (std::size_t)i, rng.Normal());
                          }
                        }},
        KernelUnderTest{"attitude",
                        [] { return apps::MakeAttitudeProgram(6); },
                        [](trace::Interpreter& in, std::uint64_t seed) {
                          prng::Xoshiro128pp rng(seed);
                          in.WriteFp(0, 0, 1.0);
                          for (int s = 0; s < 18; ++s) {
                            in.WriteFp(1, (std::size_t)s,
                                       rng.UniformReal(-1.0, 1.0));
                          }
                        }}));

}  // namespace
}  // namespace spta
