// Tests for the load-use hazard model, the trace register-operand
// annotations, the CRPS metric and the payload application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/payload.hpp"
#include "evt/crps.hpp"
#include "evt/gumbel.hpp"
#include "prng/xoshiro.hpp"
#include "sim/core.hpp"
#include "sim/memory_system.hpp"
#include "sim/platform.hpp"
#include "trace/interpreter.hpp"
#include "trace/program.hpp"

namespace spta {
namespace {

// --- register annotations ----------------------------------------------------

TEST(RegAnnotationTest, InterpreterFillsLoadAndAluRegs) {
  trace::ProgramBuilder b("regs");
  const auto arr = b.AddIntArray("a", 4);
  const auto blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.IConst(1, 2);      // r1 = 2
  b.LoadI(5, arr, 1);  // r5 = a[r1]
  b.IAdd(6, 5, 1);     // r6 = r5 + r1  (consumes the load)
  b.FConst(2, 1.5);    // f2
  b.FSqrt(3, 2);       // f3 = sqrt(f2)
  b.Halt();
  const auto p = b.Build();
  trace::Interpreter interp(p);
  const auto t = interp.Run();

  EXPECT_EQ(t.records[0].dst_reg, 1);  // IConst r1
  EXPECT_EQ(t.records[1].dst_reg, 5);  // LoadI dst
  EXPECT_EQ(t.records[1].src1_reg, 1);
  EXPECT_TRUE(t.records[2].Reads(5));  // IAdd reads r5
  // FP registers carry the file flag, so f3 != integer r3.
  EXPECT_EQ(t.records[4].dst_reg, 3 | trace::kFpRegFlag);
  EXPECT_TRUE(t.records[4].Reads(2 | trace::kFpRegFlag));
  EXPECT_FALSE(t.records[4].Reads(2));  // integer r2 is a different name
}

TEST(RegAnnotationTest, NoRegNeverMatches) {
  trace::TraceRecord rec;
  EXPECT_FALSE(rec.Reads(trace::kNoReg));
  rec.src1_reg = 3;
  EXPECT_TRUE(rec.Reads(3));
  EXPECT_FALSE(rec.Reads(trace::kNoReg));
}

// --- load-use hazard ---------------------------------------------------------

trace::Trace LoadThenAlu(bool dependent) {
  trace::Trace t;
  trace::TraceRecord load;
  load.pc = 0x40000000;
  load.op = trace::OpClass::kLoad;
  load.mem_addr = 0x40100000;
  load.dst_reg = 5;
  t.records.push_back(load);
  trace::TraceRecord alu;
  alu.pc = 0x40000004;
  alu.op = trace::OpClass::kIntAlu;
  alu.src1_reg = dependent ? 5 : 6;
  alu.dst_reg = 7;
  t.records.push_back(alu);
  return t;
}

TEST(LoadUseHazardTest, DependentConsumerStallsOneCycle) {
  const auto cfg = sim::DetLeon3Config();
  sim::MemorySystem mem_a(cfg.bus, cfg.dram);
  sim::Core core_a(cfg, 0, &mem_a, 1);
  const auto dep = core_a.Run(LoadThenAlu(true));
  sim::MemorySystem mem_b(cfg.bus, cfg.dram);
  sim::Core core_b(cfg, 0, &mem_b, 1);
  const auto indep = core_b.Run(LoadThenAlu(false));
  EXPECT_EQ(dep.cycles, indep.cycles + cfg.pipeline.load_use_stall);
}

TEST(LoadUseHazardTest, StallOnlyImmediatelyAfterLoad) {
  // load ; independent alu ; dependent alu -> no stall (result arrived).
  auto t = LoadThenAlu(false);
  trace::TraceRecord consumer;
  consumer.pc = 0x40000008;
  consumer.op = trace::OpClass::kIntAlu;
  consumer.src1_reg = 5;
  t.records.push_back(consumer);
  const auto cfg = sim::DetLeon3Config();
  sim::MemorySystem mem(cfg.bus, cfg.dram);
  sim::Core core(cfg, 0, &mem, 1);
  const auto res = core.Run(t);
  // = independent 2-instruction time + 1 more ALU cycle, no stall.
  sim::MemorySystem mem2(cfg.bus, cfg.dram);
  sim::Core core2(cfg, 0, &mem2, 1);
  const auto base = core2.Run(LoadThenAlu(false));
  EXPECT_EQ(res.cycles, base.cycles + cfg.pipeline.int_alu);
}

TEST(LoadUseHazardTest, VisibleInEndToEndProgramTiming) {
  // Two IR programs: load feeding the next op vs load feeding a later op.
  const auto build = [](bool dependent) {
    trace::ProgramBuilder b(dependent ? "dep" : "indep");
    const auto arr = b.AddIntArray("a", 8);
    const auto blk = b.NewBlock();
    b.SetEntry(blk);
    b.SwitchTo(blk);
    b.IConst(1, 0);
    b.LoadI(5, arr, 1);
    if (dependent) {
      b.IAddImm(6, 5, 1);  // consumes the load immediately
      b.IConst(7, 9);
    } else {
      b.IConst(7, 9);      // filler first
      b.IAddImm(6, 5, 1);
    }
    b.Halt();
    return b.Build();
  };
  const auto p_dep = build(true);
  const auto p_indep = build(false);
  trace::Interpreter ia(p_dep);
  trace::Interpreter ib(p_indep);
  sim::Platform platform(sim::DetLeon3Config(), 1);
  const auto dep_cycles = platform.Run(ia.Run(), 1).cycles;
  const auto indep_cycles = platform.Run(ib.Run(), 1).cycles;
  EXPECT_EQ(dep_cycles, indep_cycles + 1);
}

// --- CRPS ---------------------------------------------------------------------

TEST(CrpsTest, TrueModelBeatsWrongModels) {
  prng::Xoshiro128pp rng(5);
  const evt::GumbelDist truth{100.0, 5.0};
  std::vector<double> xs(3000);
  for (auto& x : xs) {
    x = truth.Quantile(std::max(rng.UniformUnit(), 1e-12));
  }
  const double crps_true = evt::CrpsGumbel(truth, xs);
  const double crps_shifted = evt::CrpsGumbel({110.0, 5.0}, xs);
  const double crps_wide = evt::CrpsGumbel({100.0, 15.0}, xs);
  EXPECT_LT(crps_true, crps_shifted);
  EXPECT_LT(crps_true, crps_wide);
}

TEST(CrpsTest, PerfectPointForecastNearZero) {
  // A nearly-degenerate forecast centered on the data has tiny CRPS.
  const std::vector<double> xs(100, 50.0);
  const double crps = evt::CrpsGumbel({50.0, 1e-3}, xs);
  EXPECT_NEAR(crps, 0.0, 1e-2);
}

TEST(CrpsTest, ScalesWithScale) {
  // CRPS of the true model grows linearly with the scale parameter.
  prng::Xoshiro128pp rng(6);
  for (const double beta : {2.0, 4.0}) {
    const evt::GumbelDist d{0.0, beta};
    std::vector<double> xs(2000);
    for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
    const double crps = evt::CrpsGumbel(d, xs);
    EXPECT_NEAR(crps / beta, 0.72, 0.1);  // ~ (gamma - ln... ) * const
  }
}

// --- payload app ---------------------------------------------------------------

TEST(PayloadAppTest, FrameDeterministicAndNonTrivial) {
  const apps::PayloadApp app;
  const auto a = app.BuildFrame(7);
  const auto b = app.BuildFrame(7);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_GT(a.instruction_count(), 50000u);
  const auto c = app.BuildFrame(8);
  EXPECT_NE(a.records.size(), c.records.size());  // input-dependent paths
}

TEST(PayloadAppTest, StaysInsideItsPartition) {
  const apps::PayloadApp app;
  const auto frame = app.BuildFrame(3);
  for (const auto& r : frame.records) {
    EXPECT_GE(r.pc, 0x70000000u);
    if (r.mem_addr != 0) EXPECT_GE(r.mem_addr, 0x70000000u);
  }
}

TEST(PayloadAppTest, RunsOnPlatform) {
  const apps::PayloadApp app;
  const auto frame = app.BuildFrame(4);
  sim::Platform platform(sim::RandLeon3Config(), 2);
  const auto res = platform.Run(frame, 9);
  EXPECT_GT(res.cycles, frame.instruction_count());
}

}  // namespace
}  // namespace spta
