// End-to-end integration tests: the full measurement-and-analysis pipeline
// on a scaled-down TVCA, reproducing the paper's qualitative claims in
// miniature (fast enough for CI).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "mbta/mbta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

namespace spta {
namespace {

apps::TvcaConfig SmallTvca() {
  apps::TvcaConfig cfg;
  cfg.sensor_channels = 6;
  cfg.samples_per_frame = 10;
  cfg.fir_taps = 8;
  cfg.state_dim = 16;
  cfg.integrator_steps = 10;
  cfg.control_iterations = 2;
  cfg.straightline_instructions = 600;
  return cfg;
}

class TvcaPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app_ = new apps::TvcaApp(SmallTvca());
    analysis::CampaignConfig cfg;
    cfg.runs = 600;
    cfg.master_seed = 99;
    sim::Platform rand_platform(sim::RandLeon3Config(), 1);
    rand_samples_ = new auto(
        analysis::RunTvcaCampaign(rand_platform, *app_, cfg));
    sim::Platform det_platform(sim::DetLeon3Config(), 1);
    det_samples_ = new auto(
        analysis::RunTvcaCampaign(det_platform, *app_, cfg));
  }

  static void TearDownTestSuite() {
    delete rand_samples_;
    delete det_samples_;
    delete app_;
  }

  static apps::TvcaApp* app_;
  static std::vector<analysis::RunSample>* rand_samples_;
  static std::vector<analysis::RunSample>* det_samples_;
};

apps::TvcaApp* TvcaPipelineTest::app_ = nullptr;
std::vector<analysis::RunSample>* TvcaPipelineTest::rand_samples_ = nullptr;
std::vector<analysis::RunSample>* TvcaPipelineTest::det_samples_ = nullptr;

TEST_F(TvcaPipelineTest, IidGatePassesOnRandPlatform) {
  // Paper Section III: Ljung-Box and two-sample KS both clear 5%.
  const auto times = analysis::ExtractTimes(*rand_samples_);
  const auto gate = mbpta::RunIidGate(times);
  EXPECT_TRUE(gate.Passed())
      << "LB p=" << gate.independence.p_value
      << " KS p=" << gate.identical_distribution.p_value;
}

TEST_F(TvcaPipelineTest, PwcetUpperBoundsObservedTail) {
  // Paper Figure 2: the Gumbel projection tightly upper-bounds the ECDF.
  const auto times = analysis::ExtractTimes(*rand_samples_);
  const auto result = mbpta::AnalyzeSample(times);
  ASSERT_TRUE(result.curve.has_value());
  const double max_obs = stats::Max(times);
  // At the empirical resolution (1/600), the model must not be below the
  // observations by more than fit noise...
  EXPECT_GT(result.PwcetAt(1.0 / 600.0), stats::Quantile(times, 0.995) * 0.99);
  // ...and must exceed the high watermark at certification probabilities.
  EXPECT_GT(result.PwcetAt(1e-9), max_obs * 0.999);
  EXPECT_GT(result.PwcetAt(1e-15), result.PwcetAt(1e-9));
}

TEST_F(TvcaPipelineTest, AveragePerformancePreserved) {
  // Paper Figure 3, first two bars: DET avg vs RAND avg — "no noticeable
  // difference" (we allow 10%).
  const auto rand_times = analysis::ExtractTimes(*rand_samples_);
  const auto det_times = analysis::ExtractTimes(*det_samples_);
  const double ratio =
      stats::Mean(rand_times) / stats::Mean(det_times);
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.10);
}

TEST_F(TvcaPipelineTest, PwcetCompetitiveWithMbtaMargin) {
  // Paper conclusion: MBPTA estimates are in the same order of magnitude
  // as industrial high-watermark + 50%, with actual evidence behind them.
  const auto rand_times = analysis::ExtractTimes(*rand_samples_);
  const auto det_times = analysis::ExtractTimes(*det_samples_);
  const auto result = mbpta::AnalyzeSample(rand_times);
  ASSERT_TRUE(result.curve.has_value());
  const auto industrial = mbta::Estimate(det_times, 0.5);
  const double pwcet = result.PwcetAt(1e-12);
  EXPECT_GT(pwcet, industrial.high_watermark * 0.9);
  EXPECT_LT(pwcet, industrial.wcet_estimate * 1.5);
}

TEST_F(TvcaPipelineTest, PerPathEnvelopeDominatesPooledObservations) {
  const auto obs = analysis::ToPathObservations(*rand_samples_);
  mbpta::PerPathOptions opts;
  opts.min_samples_per_path = 60;
  const auto per_path = mbpta::AnalyzePerPath(obs, opts);
  EXPECT_GE(per_path.analyzed_count(), 1u);
  const auto times = analysis::ExtractTimes(*rand_samples_);
  EXPECT_GE(per_path.EnvelopeAt(1e-12), stats::Max(times) * 0.999);
}

TEST_F(TvcaPipelineTest, ConvergenceCriterionSatisfied) {
  // Paper: 3,000 runs satisfied the convergence criterion; our miniature
  // must converge within its 600 runs.
  const auto times = analysis::ExtractTimes(*rand_samples_);
  mbpta::ConvergenceOptions opts;
  opts.initial_runs = 150;
  opts.step_runs = 75;
  // A 600-run miniature judges stability at a less extreme reference
  // probability and a looser tolerance than a full 3,000-run campaign.
  opts.reference_prob = 1e-9;
  opts.rel_tolerance = 0.05;
  const auto conv = mbpta::CheckConvergence(times, opts);
  EXPECT_TRUE(conv.converged);
}

TEST_F(TvcaPipelineTest, DetPlatformDeterministicPerScenario) {
  // On DET, re-running the same frame gives the same time, run after run.
  const auto frame = app_->BuildFrame(1234);
  sim::Platform det(sim::DetLeon3Config(), 1);
  const auto a = det.Run(frame.trace, 1).cycles;
  const auto b = det.Run(frame.trace, 2).cycles;
  EXPECT_EQ(a, b);
}

TEST_F(TvcaPipelineTest, CampaignIsReproducible) {
  analysis::CampaignConfig cfg;
  cfg.runs = 50;
  cfg.master_seed = 7;
  sim::Platform p1(sim::RandLeon3Config(), 1);
  sim::Platform p2(sim::RandLeon3Config(), 1);
  const auto s1 = analysis::RunTvcaCampaign(p1, *app_, cfg);
  const auto s2 = analysis::RunTvcaCampaign(p2, *app_, cfg);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].cycles, s2[i].cycles);
    EXPECT_EQ(s1[i].path_id, s2[i].path_id);
  }
}

TEST_F(TvcaPipelineTest, AnalysisFpuUpperBoundsOperationFpu) {
  // The hardware trick of Section II: running the SAME frame, the
  // analysis-phase platform (worst-case-fixed FPU) never undercuts the
  // operation-phase platform (value-dependent FPU).
  const auto frame = app_->BuildFrame(777);
  sim::Platform analysis_p(sim::RandLeon3Config(), 1);
  sim::Platform operation_p(sim::RandLeon3OperationConfig(), 1);
  for (Seed s = 0; s < 5; ++s) {
    const auto analysis_t = analysis_p.Run(frame.trace, s).cycles;
    const auto operation_t = operation_p.Run(frame.trace, s).cycles;
    EXPECT_GE(analysis_t, operation_t) << "seed " << s;
  }
}

TEST_F(TvcaPipelineTest, FixedScenarioSuiteReusesTraces) {
  analysis::CampaignConfig cfg;
  cfg.runs = 40;
  cfg.distinct_scenarios = 4;
  cfg.master_seed = 5;
  sim::Platform p(sim::RandLeon3Config(), 1);
  const auto samples = analysis::RunTvcaCampaign(p, *app_, cfg);
  // Only 4 distinct paths at most; run 0 and run 4 share a scenario.
  EXPECT_EQ(samples[0].path_id, samples[4].path_id);
  EXPECT_EQ(samples[0].detail.instructions, samples[4].detail.instructions);
}

TEST_F(TvcaPipelineTest, RunSampleDetailCountersPopulated) {
  const auto& s = rand_samples_->front();
  EXPECT_GT(s.detail.instructions, 0u);
  EXPECT_GT(s.detail.il1.accesses, 0u);
  EXPECT_GT(s.detail.dl1.accesses, 0u);
  EXPECT_GT(s.detail.fpu.operations, 0u);
  EXPECT_GT(s.detail.store_buffer.stores, 0u);
  EXPECT_EQ(s.cycles, static_cast<double>(s.detail.cycles));
}

}  // namespace
}  // namespace spta
