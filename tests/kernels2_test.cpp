// Functional tests for the extended WCET-benchmark kernel suite (bubble
// sort, binary search, interpolation, LU solve) and for the new EVT
// diagnostics (Anderson-Darling, mean excess).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/kernels.hpp"
#include "evt/ad_test.hpp"
#include "evt/gumbel.hpp"
#include "evt/mean_excess.hpp"
#include "prng/xoshiro.hpp"
#include "trace/interpreter.hpp"

namespace spta {
namespace {

TEST(BubbleSortKernel, SortsArbitraryInput) {
  const int n = 24;
  const trace::Program p = apps::MakeBubbleSortProgram(n);
  trace::Interpreter interp(p);
  std::vector<std::int32_t> keys(n);
  prng::Xoshiro128pp rng(1);
  for (int i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(rng.UniformBelow(1000));
    interp.WriteInt(0, static_cast<std::size_t>(i),
                    keys[static_cast<std::size_t>(i)]);
  }
  interp.Run();
  std::sort(keys.begin(), keys.end());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(interp.ReadInt(0, static_cast<std::size_t>(i)),
              keys[static_cast<std::size_t>(i)]);
  }
}

TEST(BubbleSortKernel, SortedInputTakesShorterPath) {
  const int n = 16;
  const trace::Program p = apps::MakeBubbleSortProgram(n);
  trace::Interpreter sorted_in(p);
  trace::Interpreter reversed_in(p);
  for (int i = 0; i < n; ++i) {
    sorted_in.WriteInt(0, static_cast<std::size_t>(i), i);
    reversed_in.WriteInt(0, static_cast<std::size_t>(i), n - i);
  }
  const auto t_sorted = sorted_in.Run();
  const auto t_rev = reversed_in.Run();
  // Reversed input executes the swap block every comparison.
  EXPECT_GT(t_rev.instruction_count(), t_sorted.instruction_count());
  EXPECT_NE(t_rev.path_signature, t_sorted.path_signature);
}

TEST(BinarySearchKernel, FindsPresentAndAbsentKeys) {
  const int n = 64;
  const int queries = 4;
  const trace::Program p = apps::MakeBinarySearchProgram(n, queries);
  trace::Interpreter interp(p);
  for (int i = 0; i < n; ++i) {
    interp.WriteInt(0, static_cast<std::size_t>(i), 3 * i);  // 0,3,6,...
  }
  interp.WriteInt(1, 0, 0);        // first element
  interp.WriteInt(1, 1, 3 * 63);   // last element
  interp.WriteInt(1, 2, 3 * 20);   // middle element
  interp.WriteInt(1, 3, 100);      // absent (not a multiple of 3)
  interp.Run();
  EXPECT_EQ(interp.ReadInt(2, 0), 0);
  EXPECT_EQ(interp.ReadInt(2, 1), 63);
  EXPECT_EQ(interp.ReadInt(2, 2), 20);
  EXPECT_EQ(interp.ReadInt(2, 3), -1);
}

TEST(BinarySearchKernel, PathDependsOnProbeSequence) {
  const int n = 128;
  const trace::Program p = apps::MakeBinarySearchProgram(n, 1);
  trace::Interpreter a(p);
  trace::Interpreter b(p);
  for (int i = 0; i < n; ++i) {
    a.WriteInt(0, static_cast<std::size_t>(i), i);
    b.WriteInt(0, static_cast<std::size_t>(i), i);
  }
  a.WriteInt(1, 0, 0);       // leftmost: log2(n) probes
  b.WriteInt(1, 0, n - 65);  // different descent
  EXPECT_NE(a.Run().path_signature, b.Run().path_signature);
}

TEST(InterpolationKernel, InterpolatesClampsAndMatchesReference) {
  const int table = 8;
  const int queries = 5;
  const trace::Program p = apps::MakeInterpolationProgram(table, queries);
  trace::Interpreter interp(p);
  // y = x^2 on breakpoints 0,1,...,7.
  for (int i = 0; i < table; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), static_cast<double>(i));
    interp.WriteFp(1, static_cast<std::size_t>(i),
                   static_cast<double>(i) * i);
  }
  interp.WriteFp(2, 0, -1.0);  // below: clamp to y[0] = 0
  interp.WriteFp(2, 1, 10.0);  // above: clamp to y[7] = 49
  interp.WriteFp(2, 2, 2.5);   // between 2 and 3: 4 + 0.5*(9-4) = 6.5
  interp.WriteFp(2, 3, 6.0);   // exact breakpoint
  interp.WriteFp(2, 4, 0.25);  // first segment: 0 + 0.25*(1-0) = 0.25
  interp.Run();
  EXPECT_DOUBLE_EQ(interp.ReadFp(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(interp.ReadFp(3, 1), 49.0);
  EXPECT_DOUBLE_EQ(interp.ReadFp(3, 2), 6.5);
  EXPECT_DOUBLE_EQ(interp.ReadFp(3, 3), 36.0);
  EXPECT_DOUBLE_EQ(interp.ReadFp(3, 4), 0.25);
}

TEST(InterpolationKernel, ThreePathsDistinguished) {
  const trace::Program p = apps::MakeInterpolationProgram(4, 1);
  const auto run_with = [&](double q) {
    trace::Interpreter interp(p);
    for (int i = 0; i < 4; ++i) {
      interp.WriteFp(0, static_cast<std::size_t>(i),
                     static_cast<double>(i));
      interp.WriteFp(1, static_cast<std::size_t>(i), 1.0);
    }
    interp.WriteFp(2, 0, q);
    return interp.Run().path_signature;
  };
  const auto below = run_with(-5.0);
  const auto inside = run_with(1.5);
  const auto above = run_with(9.0);
  EXPECT_NE(below, inside);
  EXPECT_NE(inside, above);
  EXPECT_NE(below, above);
}

TEST(LuSolveKernel, SolvesDiagonallyDominantSystem) {
  const int n = 6;
  const trace::Program p = apps::MakeLuSolveProgram(n);
  trace::Interpreter interp(p);
  // Build a well-conditioned system with a known solution.
  prng::Xoshiro128pp rng(3);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = 1.0 + 0.5 * i;
    for (int j = 0; j < n; ++j) {
      double v = 0.2 * (rng.UniformUnit() - 0.5);
      if (i == j) v += 4.0;  // diagonal dominance
      a[static_cast<std::size_t>(i * n + j)] = v;
      interp.WriteFp(0, static_cast<std::size_t>(i * n + j), v);
    }
  }
  for (int i = 0; i < n; ++i) {
    double bi = 0.0;
    for (int j = 0; j < n; ++j) {
      bi += a[static_cast<std::size_t>(i * n + j)] *
            x_true[static_cast<std::size_t>(j)];
    }
    interp.WriteFp(1, static_cast<std::size_t>(i), bi);
  }
  interp.Run();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(interp.ReadFp(1, static_cast<std::size_t>(i)),
                x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(LuSolveKernel, IdentityMatrixIsNoOp) {
  const int n = 4;
  const trace::Program p = apps::MakeLuSolveProgram(n);
  trace::Interpreter interp(p);
  for (int i = 0; i < n; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i * n + i), 1.0);
    interp.WriteFp(1, static_cast<std::size_t>(i), 2.0 + i);
  }
  interp.Run();
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(interp.ReadFp(1, static_cast<std::size_t>(i)),
                     2.0 + i);
  }
}

// --- New EVT diagnostics ----------------------------------------------------

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  evt::GumbelDist d{mu, beta};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

TEST(AndersonDarlingTest, AcceptsTrueModel) {
  const auto xs = GumbelSample(100.0, 5.0, 2000, 9);
  const auto fit = evt::FitGumbelMle(xs);
  const auto r = evt::AndersonDarlingGumbel(xs, fit);
  EXPECT_TRUE(r.NotRejected()) << "A*=" << r.adjusted;
  EXPECT_GT(r.a_squared, 0.0);
}

TEST(AndersonDarlingTest, RejectsWrongScale) {
  const auto xs = GumbelSample(100.0, 5.0, 2000, 10);
  const evt::GumbelDist wrong{100.0, 15.0};
  EXPECT_FALSE(evt::AndersonDarlingGumbel(xs, wrong).NotRejected());
}

TEST(AndersonDarlingTest, RejectsNormalData) {
  prng::Xoshiro128pp rng(11);
  std::vector<double> xs(4000);
  for (auto& x : xs) x = 50.0 + 4.0 * rng.Normal();
  const auto fit = evt::FitGumbelMle(xs);
  // A symmetric sample is a poor Gumbel; the tail-weighted AD sees it.
  EXPECT_FALSE(evt::AndersonDarlingGumbel(xs, fit).NotRejected());
}

TEST(MeanExcessTest, ExponentialTailHasFlatSlope) {
  prng::Xoshiro128pp rng(12);
  std::vector<double> xs(30000);
  for (auto& x : xs) {
    x = -10.0 * std::log(1.0 - std::max(rng.UniformUnit(), 1e-12));
  }
  const auto points = evt::MeanExcessFunction(xs);
  ASSERT_GE(points.size(), 5u);
  EXPECT_NEAR(evt::MeanExcessSlope(points), 0.0, 0.1);
}

TEST(MeanExcessTest, BoundedTailHasNegativeSlope) {
  prng::Xoshiro128pp rng(13);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng.UniformUnit();  // uniform: xi = -1
  const auto points = evt::MeanExcessFunction(xs);
  EXPECT_LT(evt::MeanExcessSlope(points), -0.2);
}

TEST(MeanExcessTest, HeavyTailHasPositiveSlope) {
  prng::Xoshiro128pp rng(14);
  std::vector<double> xs(30000);
  for (auto& x : xs) {
    // Pareto with xi = 0.5.
    x = std::pow(1.0 - std::min(rng.UniformUnit(), 1.0 - 1e-12), -0.5);
  }
  const auto points = evt::MeanExcessFunction(xs);
  EXPECT_GT(evt::MeanExcessSlope(points), 0.1);
}

TEST(MeanExcessTest, ThresholdsAscendAndCountsDescend) {
  const auto xs = GumbelSample(0.0, 1.0, 5000, 15);
  const auto points = evt::MeanExcessFunction(xs, 10);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].threshold, points[i - 1].threshold);
    EXPECT_LE(points[i].exceedances, points[i - 1].exceedances);
  }
}

}  // namespace
}  // namespace spta
