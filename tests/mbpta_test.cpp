// Tests for the MBPTA pipeline (i.i.d. gate, estimation, convergence,
// per-path envelope) and the MBTA industrial baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "evt/gumbel.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/iid_gate.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "mbta/mbta.hpp"
#include "prng/xoshiro.hpp"

namespace spta::mbpta {
namespace {

std::vector<double> GumbelSample(double mu, double beta, std::size_t n,
                                 std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  evt::GumbelDist d{mu, beta};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

TEST(IidGateTest, PassesOnIidData) {
  const auto xs = GumbelSample(1000.0, 30.0, 3000, 1);
  const auto r = RunIidGate(xs);
  EXPECT_TRUE(r.Passed());
  EXPECT_GE(r.independence.p_value, 0.05);
  EXPECT_GE(r.identical_distribution.p_value, 0.05);
}

TEST(IidGateTest, FailsOnCorrelatedData) {
  prng::Xoshiro128pp rng(2);
  std::vector<double> xs(2000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.6 * prev + rng.Normal();
    x = 1000.0 + 30.0 * prev;
  }
  EXPECT_FALSE(RunIidGate(xs).Passed());
}

TEST(IidGateTest, FailsOnDriftingDistribution) {
  auto xs = GumbelSample(1000.0, 30.0, 2000, 3);
  for (std::size_t i = xs.size() / 2; i < xs.size(); ++i) xs[i] += 40.0;
  const auto r = RunIidGate(xs);
  EXPECT_FALSE(r.Passed());
  EXPECT_LT(r.identical_distribution.p_value, 0.05);
}

TEST(AnalyzeSampleTest, ProducesUsableModelOnGoodData) {
  const auto xs = GumbelSample(1000.0, 30.0, 3000, 4);
  // Explicit block size 30 -> 100 maxima: enough for the GEV shape
  // cross-check and the chi-square GOF to be meaningful.
  MbptaOptions opts;
  opts.block_size = 30;
  const auto r = AnalyzeSample(xs, opts);
  EXPECT_TRUE(r.usable);
  EXPECT_EQ(r.sample_size, 3000u);
  EXPECT_EQ(r.block_size, 30u);
  ASSERT_TRUE(r.curve.has_value());
  // The fitted per-run tail should resemble the generating distribution.
  const evt::GumbelDist generating{1000.0, 30.0};
  EXPECT_NEAR(r.PwcetAt(1e-3), generating.Quantile(0.999), 25.0);
  EXPECT_TRUE(r.gev_check.IsEffectivelyGumbel(0.2)) << r.gev_check.xi;
  ASSERT_TRUE(r.gof.has_value());
}

TEST(AnalyzeSampleTest, AutomaticBlockSizeFromMinBlocks) {
  const auto xs = GumbelSample(1000.0, 30.0, 3000, 4);
  const auto r = AnalyzeSample(xs);
  EXPECT_EQ(r.block_size, 100u);  // 3000 / min_blocks(30)
}

TEST(AnalyzeSampleTest, FitQualityMetricsPopulated) {
  const auto xs = GumbelSample(1000.0, 30.0, 3000, 4);
  MbptaOptions opts;
  opts.block_size = 30;
  const auto r = AnalyzeSample(xs, opts);
  ASSERT_TRUE(r.curve.has_value());
  EXPECT_GT(r.ppcc, 0.98);
  EXPECT_GT(r.crps, 0.0);
  ASSERT_TRUE(r.ad.has_value());
  EXPECT_TRUE(r.ad->NotRejected());
}

TEST(AnalyzeSampleTest, PwcetMonotoneAndAboveObservations) {
  const auto xs = GumbelSample(500.0, 20.0, 3000, 4);
  const auto r = AnalyzeSample(xs);
  ASSERT_TRUE(r.usable);
  const double q3 = r.PwcetAt(1e-3);
  const double q9 = r.PwcetAt(1e-9);
  const double q15 = r.PwcetAt(1e-15);
  EXPECT_LT(q3, q9);
  EXPECT_LT(q9, q15);
  const double max_obs = *std::max_element(xs.begin(), xs.end());
  EXPECT_GT(q9, max_obs * 0.98);
}

TEST(AnalyzeSampleTest, IidFailureMarksUnusableButKeepsFit) {
  auto xs = GumbelSample(1000.0, 30.0, 2000, 6);
  for (std::size_t i = xs.size() / 2; i < xs.size(); ++i) xs[i] += 50.0;
  const auto r = AnalyzeSample(xs);
  EXPECT_FALSE(r.usable);
  EXPECT_TRUE(r.curve.has_value());  // diagnostics still available
  MbptaOptions lenient;
  lenient.require_iid = false;
  EXPECT_TRUE(AnalyzeSample(xs, lenient).usable);
}

TEST(AnalyzeSampleTest, ConstantSampleHasNoCurve) {
  const std::vector<double> xs(500, 1234.0);
  const auto r = AnalyzeSample(xs);
  EXPECT_FALSE(r.curve.has_value());
  EXPECT_FALSE(r.usable);
  EXPECT_TRUE(r.iid.Passed());  // constant is trivially iid
}

TEST(AnalyzeSampleTest, ExplicitBlockSizeRespected) {
  const auto xs = GumbelSample(100.0, 5.0, 1200, 7);
  MbptaOptions opts;
  opts.block_size = 40;
  const auto r = AnalyzeSample(xs, opts);
  EXPECT_EQ(r.block_size, 40u);
}

TEST(ConvergenceTest, StabilizesOnStationaryData) {
  const auto xs = GumbelSample(1000.0, 25.0, 3000, 8);
  const auto r = CheckConvergence(xs);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.runs_required, 0u);
  EXPECT_LE(r.runs_required, 3000u);
  ASSERT_FALSE(r.points.empty());
  // Later deltas must be small.
  EXPECT_LE(r.points.back().rel_delta, 0.02);
}

TEST(ConvergenceTest, PointsTrackPrefixSizes) {
  const auto xs = GumbelSample(1000.0, 25.0, 1500, 9);
  ConvergenceOptions opts;
  opts.initial_runs = 300;
  opts.step_runs = 300;
  const auto r = CheckConvergence(xs, opts);
  ASSERT_EQ(r.points.size(), 5u);
  EXPECT_EQ(r.points[0].runs, 300u);
  EXPECT_EQ(r.points[4].runs, 1500u);
}

TEST(PerPathTest, EnvelopeDominatesEveryPath) {
  std::vector<PathObservation> obs;
  // Path 0: fast; path 1: slow.
  for (const auto& [path, mu] :
       std::vector<std::pair<std::uint64_t, double>>{{0, 500.0},
                                                     {1, 800.0}}) {
    const auto xs = GumbelSample(mu, 15.0, 1200, 10 + path);
    for (double x : xs) obs.push_back({path, x});
  }
  const auto r = AnalyzePerPath(obs);
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.analyzed_count(), 2u);
  for (const auto& p : r.paths) {
    ASSERT_TRUE(p.analyzed);
    EXPECT_GE(r.EnvelopeAt(1e-9),
              p.result.curve->QuantileForExceedance(1e-9) - 1e-9);
  }
  // The slow path dominates.
  EXPECT_GT(r.EnvelopeAt(1e-9), 800.0);
}

TEST(PerPathTest, SmallPathSkippedButHwmCounts) {
  std::vector<PathObservation> obs;
  const auto big = GumbelSample(500.0, 10.0, 1000, 12);
  for (double x : big) obs.push_back({0, x});
  // A rare path with few samples but a huge outlier.
  for (int i = 0; i < 10; ++i) obs.push_back({1, 5000.0 + i});
  const auto r = AnalyzePerPath(obs);
  EXPECT_EQ(r.analyzed_count(), 1u);
  // The envelope must still respect the rare path's high watermark.
  EXPECT_GE(r.EnvelopeAt(1e-12), 5009.0);
}

TEST(PerPathTest, GroupsByPathId) {
  std::vector<PathObservation> obs;
  for (int i = 0; i < 300; ++i) {
    obs.push_back({static_cast<std::uint64_t>(i % 3),
                   100.0 + static_cast<double>(i % 7)});
  }
  const auto r = AnalyzePerPath(obs);
  EXPECT_EQ(r.paths.size(), 3u);
  EXPECT_EQ(r.total_samples, 300u);
  for (const auto& p : r.paths) EXPECT_EQ(p.samples, 100u);
}

TEST(ReportTest, SingleSampleReportContainsKeyFields) {
  const auto xs = GumbelSample(1000.0, 30.0, 3000, 13);
  const auto r = AnalyzeSample(xs);
  const std::string report = RenderReport(r, "unit-test");
  EXPECT_NE(report.find("unit-test"), std::string::npos);
  EXPECT_NE(report.find("Ljung-Box"), std::string::npos);
  EXPECT_NE(report.find("KS two-sample"), std::string::npos);
  EXPECT_NE(report.find("Gumbel tail"), std::string::npos);
  EXPECT_NE(report.find("1e-12"), std::string::npos);
  EXPECT_NE(report.find("usable"), std::string::npos);
  EXPECT_NE(report.find("PPCC"), std::string::npos);
  EXPECT_NE(report.find("CRPS"), std::string::npos);
}

TEST(ReportTest, PerPathReportListsPaths) {
  std::vector<PathObservation> obs;
  const auto xs = GumbelSample(700.0, 12.0, 800, 14);
  for (double x : xs) obs.push_back({3, x});
  const auto r = AnalyzePerPath(obs);
  const std::string report = RenderReport(r);
  EXPECT_NE(report.find("path"), std::string::npos);
  EXPECT_NE(report.find("envelope"), std::string::npos);
}

TEST(ReportTest, DefaultCutoffsSpanPaperRange) {
  const auto cutoffs = DefaultCutoffs();
  ASSERT_EQ(cutoffs.size(), 5u);
  EXPECT_DOUBLE_EQ(cutoffs.front(), 1e-3);
  EXPECT_DOUBLE_EQ(cutoffs.back(), 1e-15);
}

}  // namespace
}  // namespace spta::mbpta

namespace spta::mbta {
namespace {

TEST(MbtaTest, EstimateAppliesMargin) {
  const std::vector<double> times = {90.0, 100.0, 95.0};
  const auto e = Estimate(times, 0.5);
  EXPECT_DOUBLE_EQ(e.high_watermark, 100.0);
  EXPECT_DOUBLE_EQ(e.wcet_estimate, 150.0);
  EXPECT_EQ(e.sample_size, 3u);
}

TEST(MbtaTest, ZeroMarginIsHighWatermark) {
  const std::vector<double> times = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(Estimate(times, 0.0).wcet_estimate, 5.0);
}

TEST(MbtaTest, MarginSweepMonotone) {
  const std::vector<double> times = {10.0, 20.0};
  const std::vector<double> margins = {0.0, 0.2, 0.5, 1.0};
  const auto sweep = MarginSweep(times, margins);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].wcet_estimate, sweep[i - 1].wcet_estimate);
  }
}

TEST(MbtaTest, ExceedanceFractionCountsOverruns) {
  const std::vector<double> analysis = {100.0};
  const auto e = Estimate(analysis, 0.1);  // bound = 110
  const std::vector<double> validation = {100.0, 105.0, 111.0, 200.0};
  EXPECT_DOUBLE_EQ(ExceedanceFraction(e, validation), 0.5);
}

}  // namespace
}  // namespace spta::mbta
