// Observability subsystem battery (src/obs): the lock-free tracer under
// real ThreadPool concurrency, the Chrome/Perfetto export schema, the
// per-run counter surface against the simulator's own stats, and the
// Prometheus text renderer. Labeled `obs` — this is also the suite to run
// under -DSPTA_SANITIZE=thread (README has the recipe): the tracer's
// correctness claim is precisely "no locks, no lost or torn events up to
// capacity", which only TSan + contention can falsify.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "common/histogram.hpp"
#include "common/thread_pool.hpp"
#include "obs/counters.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace spta {
namespace {

/// Resets the process-wide tracer around each test so suites don't leak
/// events into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
  void TearDown() override {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  { SPTA_OBS_SPAN("test", "ignored"); }
  SPTA_OBS_INSTANT("test", "also_ignored");
  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(TracerTest, RecordsSpansAndInstants) {
  obs::Tracer::Instance().Enable();
  {
    SPTA_OBS_SPAN_ARG("test", "outer", "run", 7);
    SPTA_OBS_INSTANT("test", "marker");
  }
  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, 1u);
}

TEST_F(TracerTest, ClearForgetsEvents) {
  obs::Tracer::Instance().Enable();
  { SPTA_OBS_SPAN("test", "span"); }
  ASSERT_EQ(obs::Tracer::Instance().GetStats().recorded, 1u);
  obs::Tracer::Instance().Clear();
  EXPECT_EQ(obs::Tracer::Instance().GetStats().recorded, 0u);
  // The recording thread re-registers transparently after a Clear.
  { SPTA_OBS_SPAN("test", "after_clear"); }
  EXPECT_EQ(obs::Tracer::Instance().GetStats().recorded, 1u);
}

// The concurrency contract: N pool workers hammering the tracer lose
// nothing until their per-thread buffers fill, and every overflow is
// counted — recorded + dropped always equals emitted exactly.
TEST_F(TracerTest, ThreadPoolAccountsForEveryEvent) {
  constexpr std::size_t kCapacity = 256;  // small: force overflow
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kEventsPerTask = 50;
  obs::Tracer::Instance().Enable(kCapacity);

  ThreadPool pool(4);
  std::atomic<std::uint64_t> emitted{0};
  ParallelFor(pool, kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kEventsPerTask; ++i) {
      SPTA_OBS_SPAN_ARG("test", "work", "task", task);
      emitted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded + stats.dropped, emitted.load());
  EXPECT_EQ(emitted.load(), kTasks * kEventsPerTask);
  // 4 workers x 256 capacity < 3200 events: overflow must have happened
  // and been counted, and no buffer may hold more than its capacity.
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LE(stats.recorded, stats.threads * kCapacity);
  EXPECT_GE(stats.threads, 1u);
}

// Exporting while producers are still recording reads only the published
// prefix — no torn events, always a parseable document.
TEST_F(TracerTest, ExportRacesProducersSafely) {
  obs::Tracer::Instance().Enable();
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  pool.Submit([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SPTA_OBS_SPAN("test", "racer");
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::ostringstream out;
    EXPECT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
    EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
  }
  stop.store(true);
  pool.Wait();
}

// Perfetto/chrome://tracing schema smoke: the export is one JSON object
// with a traceEvents array whose entries carry name/cat/ph/ts/pid/tid.
// (Deep JSON validity is exercised end-to-end by loading spta_cli
// --trace-out output in Perfetto; here we pin the required fields.)
TEST_F(TracerTest, ChromeTraceCarriesRequiredFields) {
  obs::Tracer::Instance().Enable();
  {
    SPTA_OBS_SPAN_ARG("cat_a", "span_a", "arg", 42);
  }
  SPTA_OBS_INSTANT("cat_b", "instant_b");
  std::ostringstream out;
  ASSERT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
  const std::string json = out.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Both events present, with every required trace_event field.
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat_a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"instant_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Instants carry the Perfetto scope field.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  for (const char* field : {"\"ts\":", "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces/brackets — cheap structural sanity for the whole doc.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------- counters

// RunCounters must be a faithful flattening of the simulator's own stats:
// run a real (small) TVCA campaign and cross-check every field, then the
// aggregate sums.
TEST(ObsCounters, MatchesSimulatorStats) {
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 8;
  cc.master_seed = 123;
  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto samples = analysis::RunTvcaCampaign(platform, app, cc);
  ASSERT_EQ(samples.size(), cc.runs);

  obs::CounterAggregate aggregate;
  std::uint64_t il1_misses = 0, dl1_misses = 0, cycles = 0;
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const auto& d = samples[r].detail;
    const auto c = obs::RunCounters::From(r, samples[r].path_id, d);
    EXPECT_EQ(c.run, r);
    EXPECT_EQ(c.path_id, samples[r].path_id);
    EXPECT_EQ(c.cycles, d.cycles);
    EXPECT_EQ(c.instructions, d.instructions);
    EXPECT_EQ(c.il1_accesses, d.il1.accesses);
    EXPECT_EQ(c.il1_misses, d.il1.misses);
    EXPECT_EQ(c.dl1_accesses, d.dl1.accesses);
    EXPECT_EQ(c.dl1_misses, d.dl1.misses);
    EXPECT_EQ(c.itlb_misses, d.itlb.misses);
    EXPECT_EQ(c.dtlb_misses, d.dtlb.misses);
    EXPECT_EQ(c.fpu_ops, d.fpu.operations);
    EXPECT_EQ(c.fpu_cycles, d.fpu.total_cycles);
    EXPECT_EQ(c.prng_words, d.prng.words);
    EXPECT_EQ(c.prng_rejections, d.prng.rejections);
    EXPECT_EQ(c.sb_stores, d.store_buffer.stores);
    EXPECT_EQ(c.sb_high_water, d.store_buffer.high_water);
    // A randomized run MUST have drawn PRNG words (that is the platform).
    EXPECT_GT(c.prng_words, 0u);
    aggregate.Add(c);
    il1_misses += d.il1.misses;
    dl1_misses += d.dl1.misses;
    cycles += d.cycles;
  }
  EXPECT_EQ(aggregate.runs, cc.runs);
  EXPECT_EQ(aggregate.il1_misses, il1_misses);
  EXPECT_EQ(aggregate.dl1_misses, dl1_misses);
  EXPECT_EQ(aggregate.cycles, cycles);
  EXPECT_GE(aggregate.cycles_max, aggregate.cycles_min);
  EXPECT_GT(aggregate.cycles_min, 0u);
}

TEST(ObsCounters, CsvRowsMatchHeaderArity) {
  std::ostringstream out;
  obs::WriteCountersCsvHeader(out);
  obs::RunCounters c;
  c.run = 3;
  c.path_id = 9;
  c.cycles = 1000;
  obs::WriteCountersCsvRow(out, c);

  std::istringstream in(out.str());
  std::string comment, header, row;
  ASSERT_TRUE(std::getline(in, comment));
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(comment.front(), '#');
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_EQ(row.substr(0, 7), "3,9,100");
}

TEST(ObsCounters, AggregateJsonIsFlatAndComplete) {
  obs::CounterAggregate a;
  obs::RunCounters c;
  c.cycles = 5;
  c.il1_misses = 2;
  a.Add(c);
  const std::string json = obs::RenderAggregateJson(a);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("\"runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"il1_misses\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cycles_min\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"sb_high_water_max\": 0"), std::string::npos);
}

// -------------------------------------------------------------- prometheus

TEST(PromText, CountersAndGauges) {
  obs::PromText prom;
  prom.Declare("spta_widgets_total", "counter", "Widgets made.");
  prom.Sample("spta_widgets_total", 42.0);
  prom.Declare("spta_depth", "gauge", "Current depth.");
  prom.Sample("spta_depth", "kind=\"deep\"", 3.5);
  EXPECT_EQ(prom.str(),
            "# HELP spta_widgets_total Widgets made.\n"
            "# TYPE spta_widgets_total counter\n"
            "spta_widgets_total 42\n"
            "# HELP spta_depth Current depth.\n"
            "# TYPE spta_depth gauge\n"
            "spta_depth{kind=\"deep\"} 3.5\n");
}

TEST(PromText, HistogramBucketsAreCumulativeWithInf) {
  Histogram h(0.0, 4.0, 4);  // buckets [0,1) [1,2) [2,3) [3,4)
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(9.0);  // overflow: clamped into the last bin by Histogram::Add
  obs::PromText prom;
  prom.Declare("lat", "histogram", "test");
  prom.HistogramSeries("lat", "", h, 1.0, 12.6);
  const std::string text = prom.str();
  // Cumulative counts: 1, 3, 3, and the overflow observation must NOT be
  // claimed by the le="4" bucket (it exceeds the edge)...
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 3\n"), std::string::npos);
  // ...but re-appears in +Inf and _count.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 12.6\n"), std::string::npos);
}

TEST(PromText, HistogramLabelsMergeBeforeLe) {
  Histogram h = MakeLatencyHistogram();
  h.Add(10.0);
  obs::PromText prom;
  prom.Declare("lat", "histogram", "test");
  prom.HistogramSeries("lat", "cache=\"hit\"", h, 1e-6, 0.5);
  const std::string text = prom.str();
  EXPECT_NE(text.find("lat_bucket{cache=\"hit\",le=\""), std::string::npos);
  EXPECT_NE(text.find("lat_count{cache=\"hit\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{cache=\"hit\"} 0.5\n"), std::string::npos);
}

// The shared latency-bin spec (satellite of the histogram dedup): service
// metrics and obs consumers must agree on these edges, so pin them.
TEST(LatencyBins, SharedSpecIsPinned) {
  EXPECT_EQ(kLatencyBinLoMicros, 0.0);
  EXPECT_EQ(kLatencyBinHiMicros, 200000.0);
  EXPECT_EQ(kLatencyBinCount, 40u);
  const Histogram h = MakeLatencyHistogram();
  EXPECT_EQ(h.bin_count(), kLatencyBinCount);
  EXPECT_EQ(h.bin_lo(0), kLatencyBinLoMicros);
  EXPECT_EQ(h.bin_hi(h.bin_count() - 1), kLatencyBinHiMicros);
}

}  // namespace
}  // namespace spta
