// Observability subsystem battery (src/obs): the lock-free tracer under
// real ThreadPool concurrency, the Chrome/Perfetto export schema, the
// per-run counter surface against the simulator's own stats, and the
// Prometheus text renderer. Labeled `obs` — this is also the suite to run
// under -DSPTA_SANITIZE=thread (README has the recipe): the tracer's
// correctness claim is precisely "no locks, no lost or torn events up to
// capacity", which only TSan + contention can falsify.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/mman.h>
#include <unistd.h>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "common/histogram.hpp"
#include "common/jsonlog.hpp"
#include "common/thread_pool.hpp"
#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_merge.hpp"
#include "sim/platform.hpp"

namespace spta {
namespace {

/// Resets the process-wide tracer around each test so suites don't leak
/// events into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
  void TearDown() override {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  { SPTA_OBS_SPAN("test", "ignored"); }
  SPTA_OBS_INSTANT("test", "also_ignored");
  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(TracerTest, RecordsSpansAndInstants) {
  obs::Tracer::Instance().Enable();
  {
    SPTA_OBS_SPAN_ARG("test", "outer", "run", 7);
    SPTA_OBS_INSTANT("test", "marker");
  }
  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, 1u);
}

TEST_F(TracerTest, ClearForgetsEvents) {
  obs::Tracer::Instance().Enable();
  { SPTA_OBS_SPAN("test", "span"); }
  ASSERT_EQ(obs::Tracer::Instance().GetStats().recorded, 1u);
  obs::Tracer::Instance().Clear();
  EXPECT_EQ(obs::Tracer::Instance().GetStats().recorded, 0u);
  // The recording thread re-registers transparently after a Clear.
  { SPTA_OBS_SPAN("test", "after_clear"); }
  EXPECT_EQ(obs::Tracer::Instance().GetStats().recorded, 1u);
}

// The concurrency contract: N pool workers hammering the tracer lose
// nothing until their per-thread buffers fill, and every overflow is
// counted — recorded + dropped always equals emitted exactly.
TEST_F(TracerTest, ThreadPoolAccountsForEveryEvent) {
  constexpr std::size_t kCapacity = 256;  // small: force overflow
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kEventsPerTask = 50;
  obs::Tracer::Instance().Enable(kCapacity);

  ThreadPool pool(4);
  std::atomic<std::uint64_t> emitted{0};
  ParallelFor(pool, kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kEventsPerTask; ++i) {
      SPTA_OBS_SPAN_ARG("test", "work", "task", task);
      emitted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto stats = obs::Tracer::Instance().GetStats();
  EXPECT_EQ(stats.recorded + stats.dropped, emitted.load());
  EXPECT_EQ(emitted.load(), kTasks * kEventsPerTask);
  // 4 workers x 256 capacity < 3200 events: overflow must have happened
  // and been counted, and no buffer may hold more than its capacity.
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LE(stats.recorded, stats.threads * kCapacity);
  EXPECT_GE(stats.threads, 1u);
}

// Exporting while producers are still recording reads only the published
// prefix — no torn events, always a parseable document.
TEST_F(TracerTest, ExportRacesProducersSafely) {
  obs::Tracer::Instance().Enable();
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  pool.Submit([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SPTA_OBS_SPAN("test", "racer");
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::ostringstream out;
    EXPECT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
    EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
  }
  stop.store(true);
  pool.Wait();
}

// Perfetto/chrome://tracing schema smoke: the export is one JSON object
// with a traceEvents array whose entries carry name/cat/ph/ts/pid/tid.
// (Deep JSON validity is exercised end-to-end by loading spta_cli
// --trace-out output in Perfetto; here we pin the required fields.)
TEST_F(TracerTest, ChromeTraceCarriesRequiredFields) {
  obs::Tracer::Instance().Enable();
  {
    SPTA_OBS_SPAN_ARG("cat_a", "span_a", "arg", 42);
  }
  SPTA_OBS_INSTANT("cat_b", "instant_b");
  std::ostringstream out;
  ASSERT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
  const std::string json = out.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Both events present, with every required trace_event field.
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat_a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"instant_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Instants carry the Perfetto scope field.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  for (const char* field : {"\"ts\":", "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces/brackets — cheap structural sanity for the whole doc.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ----------------------------------------------------------- trace context

TEST(TraceContext, EncodeParseRoundTrip) {
  obs::TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefULL;
  ctx.span_id = 0xfedcba9876543210ULL;
  const std::string token = obs::EncodeTraceContext(ctx);
  EXPECT_EQ(token, "0123456789abcdef-fedcba9876543210");
  const obs::TraceContext parsed = obs::ParseTraceContext(token);
  EXPECT_EQ(parsed.trace_id, ctx.trace_id);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  // A root context (span 0) survives the wire too.
  ctx.span_id = 0;
  const obs::TraceContext root = obs::ParseTraceContext(
      obs::EncodeTraceContext(ctx));
  EXPECT_EQ(root.trace_id, ctx.trace_id);
  EXPECT_EQ(root.span_id, 0u);
}

TEST(TraceContext, InvalidEncodesEmpty) {
  EXPECT_EQ(obs::EncodeTraceContext(obs::TraceContext{}), "");
}

// The lenient-parse contract: every deviation yields an absent context,
// never an error — malformed wire tokens must not break the protocol.
TEST(TraceContext, ParseRejectsGarbageAsAbsent) {
  const char* kGarbage[] = {
      "",
      "-",
      "0123456789abcdef",                    // missing span half
      "0123456789abcdef-",                   // empty span half
      "-fedcba9876543210",                   // empty trace half
      "0123456789abcdef_fedcba9876543210",   // wrong separator
      "0123456789abcdeg-fedcba9876543210",   // non-hex digit
      "0123456789abcdef-fedcba987654321",    // short span half
      "0123456789abcdef-fedcba98765432100",  // long span half
      "00123456789abcdef-fedcba9876543210",  // long trace half
      "0123456789abcdef-fedcba9876543210x",  // trailing garbage
      "0000000000000000-fedcba9876543210",   // zero trace id
      "trace=0123456789abcdef-fedcba9876543210",  // prefix not stripped
  };
  for (const char* raw : kGarbage) {
    const obs::TraceContext parsed = obs::ParseTraceContext(raw);
    EXPECT_FALSE(parsed.valid()) << "'" << raw << "' must parse as absent";
  }
}

TEST(TraceContext, MintedContextsAreDistinctAndValid) {
  const obs::TraceContext a = obs::MintTraceContext();
  const obs::TraceContext b = obs::MintTraceContext();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, 0u) << "a minted root has no parent span";
  EXPECT_NE(obs::MintSpanId(), 0u);
}

TEST(TraceContext, ScopedInstallRestoresPrevious) {
  obs::TraceContext outer;
  outer.trace_id = 0x11;
  outer.span_id = 0x22;
  {
    obs::ScopedTraceContext install_outer(outer);
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 0x11u);
    {
      obs::TraceContext inner;
      inner.trace_id = 0x33;
      obs::ScopedTraceContext install_inner(inner);
      EXPECT_EQ(obs::CurrentTraceContext().trace_id, 0x33u);
    }
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 0x11u);
  }
  EXPECT_FALSE(obs::CurrentTraceContext().valid());
}

/// Extracts the 16-hex value of `key` from the args of the event named
/// `name` in a Chrome trace export ("" when absent).
std::string EventHexField(const std::string& json, const std::string& name,
                          const std::string& key) {
  const std::size_t at = json.find("\"name\":\"" + name + "\"");
  if (at == std::string::npos) return "";
  const std::size_t eol = json.find('\n', at);
  const std::string line = json.substr(at, eol - at);
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t value = line.find(needle);
  if (value == std::string::npos) return "";
  return line.substr(value + needle.size(), 16);
}

// The distributed tree contract: spans recorded under a wire context
// carry its trace id, nest parent→child through the thread-local
// context, and leaf instants link to the innermost open span.
TEST_F(TracerTest, SpansUnderContextFormOneLinkedTree) {
  obs::Tracer::Instance().Enable();
  obs::TraceContext wire;
  wire.trace_id = 0xabcULL;
  wire.span_id = 0x123ULL;  // The remote parent (e.g. the client's span).
  {
    obs::ScopedTraceContext install(wire);
    obs::ScopedSpan outer("test", "outer");
    obs::ScopedSpan inner("test", "inner");
    SPTA_OBS_INSTANT("test", "leaf");
  }
  std::ostringstream out;
  ASSERT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
  const std::string json = out.str();

  EXPECT_EQ(EventHexField(json, "outer", "trace_id"), "0000000000000abc");
  EXPECT_EQ(EventHexField(json, "inner", "trace_id"), "0000000000000abc");
  EXPECT_EQ(EventHexField(json, "leaf", "trace_id"), "0000000000000abc");
  // outer's parent is the wire span; inner's parent is outer; the leaf
  // instant's parent is inner. Every edge resolves within the export.
  EXPECT_EQ(EventHexField(json, "outer", "parent_span_id"),
            "0000000000000123");
  EXPECT_EQ(EventHexField(json, "inner", "parent_span_id"),
            EventHexField(json, "outer", "span_id"));
  EXPECT_EQ(EventHexField(json, "leaf", "parent_span_id"),
            EventHexField(json, "inner", "span_id"));
  EXPECT_NE(EventHexField(json, "outer", "span_id"),
            EventHexField(json, "inner", "span_id"));
}

// Without a context, the export stays byte-identical to the pre-tracing
// schema: no trace/span keys at all (pinned because downstream parsers
// and the A/B identity gate rely on it).
TEST_F(TracerTest, UntracedExportCarriesNoIds) {
  obs::Tracer::Instance().Enable();
  { obs::ScopedSpan span("test", "plain"); }
  std::ostringstream out;
  ASSERT_TRUE(obs::Tracer::Instance().WriteChromeTrace(out));
  EXPECT_EQ(out.str().find("trace_id"), std::string::npos);
  EXPECT_EQ(out.str().find("span_id"), std::string::npos);
}

// --------------------------------------------------------- flight recorder

/// Creates a ring, attaches a writer, and returns the fd (caller closes).
int MakeAttachedRing(obs::FlightRecorder* recorder, std::size_t slots) {
  std::string error;
  const int fd = obs::FlightRecorder::CreateRingFd(slots, &error);
  EXPECT_GE(fd, 0) << error;
  EXPECT_TRUE(recorder->AttachWriter(fd, &error)) << error;
  return fd;
}

obs::TraceEvent MakeEvent(std::uint64_t i) {
  obs::TraceEvent event;
  event.category = "test";
  event.name = "flight";
  event.arg_name = "i";
  event.arg_value = i;
  event.ts_ns = 1000 + i;
  event.dur_ns = 10;
  event.trace_id = 0xabc;
  event.span_id = 0x100 + i;
  event.parent_id = 0x99;
  return event;
}

TEST(FlightRecorder, WriteHarvestRoundTrip) {
  obs::FlightRecorder recorder;
  const int fd = MakeAttachedRing(&recorder, 8);
  for (std::uint64_t i = 0; i < 5; ++i) recorder.RecordEvent(MakeEvent(i), 7);

  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  EXPECT_TRUE(harvest.valid);
  EXPECT_EQ(harvest.writer_pid, static_cast<std::uint64_t>(::getpid()));
  EXPECT_EQ(harvest.claimed, 5u);
  EXPECT_EQ(harvest.torn, 0u);
  ASSERT_EQ(harvest.records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto& r = harvest.records[i];
    EXPECT_STREQ(r.category, "test");
    EXPECT_STREQ(r.name, "flight");
    EXPECT_EQ(r.arg_value, i) << "records must come back oldest-first";
    EXPECT_EQ(r.ts_ns, 1000 + i);
    EXPECT_EQ(r.trace_id, 0xabcu);
    EXPECT_EQ(r.span_id, 0x100 + i);
    EXPECT_EQ(r.tid, 7u);
  }
  ::close(fd);
}

TEST(FlightRecorder, RingWrapsKeepingMostRecent) {
  obs::FlightRecorder recorder;
  const int fd = MakeAttachedRing(&recorder, 4);
  for (std::uint64_t i = 0; i < 11; ++i) recorder.RecordEvent(MakeEvent(i), 0);

  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  EXPECT_TRUE(harvest.valid);
  EXPECT_EQ(harvest.claimed, 11u);
  ASSERT_EQ(harvest.records.size(), 4u);
  // The ring holds the last 4 claims (7..10), oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(harvest.records[i].arg_value, 7 + i);
  }
  ::close(fd);
}

// The pinned torn-write contract: corrupting one slot the way a SIGKILL
// mid-write would (payload bytes behind a stale checksum) loses exactly
// that record — the harvest skips it, counts it, keeps the rest, and the
// supervisor never aborts.
TEST(FlightRecorder, HarvestSkipsAndCountsTornSlot) {
  obs::FlightRecorder recorder;
  constexpr std::size_t kSlots = 8;
  const int fd = MakeAttachedRing(&recorder, kSlots);
  for (std::uint64_t i = 0; i < 6; ++i) recorder.RecordEvent(MakeEvent(i), 0);

  // Seeded corruption: scribble over slot 2's payload, leaving its
  // length/checksum stale — exactly the torn shape a mid-write kill
  // leaves behind.
  const std::size_t bytes = obs::FlightRecorder::RingBytes(kSlots);
  auto* base = static_cast<unsigned char*>(
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0));
  ASSERT_NE(base, MAP_FAILED);
  unsigned char* slot = base + obs::FlightRecorder::kHeaderSize +
                        2 * obs::FlightRecorder::kSlotSize;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 8; i < obs::FlightRecorder::kSlotSize; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    slot[i] = static_cast<unsigned char>(seed >> 56);
  }
  ::munmap(base, bytes);

  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  EXPECT_TRUE(harvest.valid);
  EXPECT_EQ(harvest.claimed, 6u);
  EXPECT_EQ(harvest.torn, 1u);
  ASSERT_EQ(harvest.records.size(), 5u);
  for (const auto& r : harvest.records) {
    EXPECT_NE(r.arg_value, 2u) << "the torn record must not surface";
  }
  ::close(fd);
}

TEST(FlightRecorder, GarbageHeaderHarvestsInvalidWithoutCrashing) {
  std::string error;
  const int fd = obs::FlightRecorder::CreateRingFd(4, &error);
  ASSERT_GE(fd, 0) << error;
  const std::size_t bytes = obs::FlightRecorder::RingBytes(4);
  auto* base = static_cast<unsigned char*>(
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0));
  ASSERT_NE(base, MAP_FAILED);
  for (std::size_t i = 0; i < obs::FlightRecorder::kHeaderSize; ++i) {
    base[i] = static_cast<unsigned char>(0xa5 + i);
  }
  ::munmap(base, bytes);

  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  EXPECT_FALSE(harvest.valid);
  EXPECT_TRUE(harvest.records.empty());
  // The Chrome dump of an invalid harvest is still well-formed JSON.
  const std::string json = obs::FlightRecorder::HarvestToChromeJson(harvest);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"valid\":false"), std::string::npos);
  ::close(fd);
}

TEST(FlightRecorder, FreshRingHarvestsValidAndEmpty) {
  // A child killed before AttachWriter leaves the creation-stamped
  // header: the harvest must parse it as a valid, empty ring.
  std::string error;
  const int fd = obs::FlightRecorder::CreateRingFd(4, &error);
  ASSERT_GE(fd, 0) << error;
  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  EXPECT_TRUE(harvest.valid);
  EXPECT_EQ(harvest.claimed, 0u);
  EXPECT_TRUE(harvest.records.empty());
  ::close(fd);
}

TEST(FlightRecorder, HarvestJsonCarriesIdsAndSummary) {
  obs::FlightRecorder recorder;
  const int fd = MakeAttachedRing(&recorder, 8);
  recorder.RecordEvent(MakeEvent(1), 3);
  recorder.RecordMetric("queue_depth", 42);
  const auto harvest = obs::FlightRecorder::HarvestFd(fd);
  const std::string json = obs::FlightRecorder::HarvestToChromeJson(harvest);
  EXPECT_NE(json.find("\"name\":\"flight\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000abc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"flightRecorder\""), std::string::npos);
  EXPECT_NE(json.find("\"torn\":0"), std::string::npos);
  // It merges like any tracer export.
  EXPECT_FALSE(obs::ExtractTraceEvents(json).empty());
  ::close(fd);
}

// ------------------------------------------------------------- trace merge

TEST(TraceMerge, SplicesDocumentsIntoOneTrace) {
  const std::string doc_a =
      "{\"traceEvents\":[\n{\"name\":\"a\",\"ph\":\"X\"}\n],"
      "\"displayTimeUnit\":\"ms\"}\n";
  const std::string doc_b =
      "{\"traceEvents\":[\n{\"name\":\"b\",\"ph\":\"X\"},\n"
      "{\"name\":\"c\",\"ph\":\"i\"}\n],\"displayTimeUnit\":\"ms\"}\n";
  const std::string merged = obs::MergeChromeTraces({doc_a, doc_b});
  EXPECT_NE(merged.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"b\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"c\""), std::string::npos);
  EXPECT_EQ(merged.find("\"traceEvents\""), 1u);
  // Exactly one events array: the merge is itself mergeable input.
  EXPECT_EQ(obs::ExtractTraceEvents(merged).empty(), false);
  EXPECT_EQ(std::count(merged.begin(), merged.end(), '['),
            std::count(merged.begin(), merged.end(), ']'));
}

TEST(TraceMerge, ExtractToleratesGarbageAndTrickyStrings) {
  EXPECT_EQ(obs::ExtractTraceEvents(""), "");
  EXPECT_EQ(obs::ExtractTraceEvents("not json at all"), "");
  EXPECT_EQ(obs::ExtractTraceEvents("{\"traceEvents\":"), "");
  EXPECT_EQ(obs::ExtractTraceEvents("{\"traceEvents\":[unterminated"), "");
  // A ']' inside a string value must not truncate the splice.
  const std::string tricky =
      "{\"traceEvents\":[{\"name\":\"we]ird[\",\"ph\":\"X\"}],"
      "\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(obs::ExtractTraceEvents(tricky),
            "{\"name\":\"we]ird[\",\"ph\":\"X\"}");
  // An escaped quote inside a string keeps the scanner in string state.
  const std::string escaped =
      "{\"traceEvents\":[{\"name\":\"q\\\"]\",\"ph\":\"X\"}]}";
  EXPECT_EQ(obs::ExtractTraceEvents(escaped),
            "{\"name\":\"q\\\"]\",\"ph\":\"X\"}");
  // Empty array ⇒ empty splice (the document contributes nothing).
  EXPECT_EQ(obs::ExtractTraceEvents("{\"traceEvents\":[]}"), "");
}

TEST(TraceMerge, MergedDocumentOfNothingIsStillWellFormed) {
  const std::string merged = obs::MergeChromeTraces({});
  EXPECT_EQ(merged, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

// ----------------------------------------------------------- json logging

TEST(JsonLog, LineCarriesEnvelopeAndFields) {
  const std::string line = JsonLogLine("spta_fleet", "spawned")
                               .Int("child_pid", 4242)
                               .Str("note", "a\"b\\c\n")
                               .Finish();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"pid\":"), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"spta_fleet\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"spawned\""), std::string::npos);
  EXPECT_NE(line.find("\"child_pid\":4242"), std::string::npos);
  // Quotes, backslashes and control bytes are escaped — one record is
  // always exactly one line.
  EXPECT_NE(line.find("\"note\":\"a\\\"b\\\\c\\n\""), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 0);
}

// ---------------------------------------------------------------- counters

// RunCounters must be a faithful flattening of the simulator's own stats:
// run a real (small) TVCA campaign and cross-check every field, then the
// aggregate sums.
TEST(ObsCounters, MatchesSimulatorStats) {
  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = 8;
  cc.master_seed = 123;
  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto samples = analysis::RunTvcaCampaign(platform, app, cc);
  ASSERT_EQ(samples.size(), cc.runs);

  obs::CounterAggregate aggregate;
  std::uint64_t il1_misses = 0, dl1_misses = 0, cycles = 0;
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const auto& d = samples[r].detail;
    const auto c = obs::RunCounters::From(r, samples[r].path_id, d);
    EXPECT_EQ(c.run, r);
    EXPECT_EQ(c.path_id, samples[r].path_id);
    EXPECT_EQ(c.cycles, d.cycles);
    EXPECT_EQ(c.instructions, d.instructions);
    EXPECT_EQ(c.il1_accesses, d.il1.accesses);
    EXPECT_EQ(c.il1_misses, d.il1.misses);
    EXPECT_EQ(c.dl1_accesses, d.dl1.accesses);
    EXPECT_EQ(c.dl1_misses, d.dl1.misses);
    EXPECT_EQ(c.itlb_misses, d.itlb.misses);
    EXPECT_EQ(c.dtlb_misses, d.dtlb.misses);
    EXPECT_EQ(c.fpu_ops, d.fpu.operations);
    EXPECT_EQ(c.fpu_cycles, d.fpu.total_cycles);
    EXPECT_EQ(c.prng_words, d.prng.words);
    EXPECT_EQ(c.prng_rejections, d.prng.rejections);
    EXPECT_EQ(c.sb_stores, d.store_buffer.stores);
    EXPECT_EQ(c.sb_high_water, d.store_buffer.high_water);
    // A randomized run MUST have drawn PRNG words (that is the platform).
    EXPECT_GT(c.prng_words, 0u);
    aggregate.Add(c);
    il1_misses += d.il1.misses;
    dl1_misses += d.dl1.misses;
    cycles += d.cycles;
  }
  EXPECT_EQ(aggregate.runs, cc.runs);
  EXPECT_EQ(aggregate.il1_misses, il1_misses);
  EXPECT_EQ(aggregate.dl1_misses, dl1_misses);
  EXPECT_EQ(aggregate.cycles, cycles);
  EXPECT_GE(aggregate.cycles_max, aggregate.cycles_min);
  EXPECT_GT(aggregate.cycles_min, 0u);
}

TEST(ObsCounters, CsvRowsMatchHeaderArity) {
  std::ostringstream out;
  obs::WriteCountersCsvHeader(out);
  obs::RunCounters c;
  c.run = 3;
  c.path_id = 9;
  c.cycles = 1000;
  obs::WriteCountersCsvRow(out, c);

  std::istringstream in(out.str());
  std::string comment, header, row;
  ASSERT_TRUE(std::getline(in, comment));
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(comment.front(), '#');
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_EQ(row.substr(0, 7), "3,9,100");
}

TEST(ObsCounters, AggregateJsonIsFlatAndComplete) {
  obs::CounterAggregate a;
  obs::RunCounters c;
  c.cycles = 5;
  c.il1_misses = 2;
  a.Add(c);
  const std::string json = obs::RenderAggregateJson(a);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("\"runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"il1_misses\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cycles_min\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"sb_high_water_max\": 0"), std::string::npos);
}

// -------------------------------------------------------------- prometheus

TEST(PromText, CountersAndGauges) {
  obs::PromText prom;
  prom.Declare("spta_widgets_total", "counter", "Widgets made.");
  prom.Sample("spta_widgets_total", 42.0);
  prom.Declare("spta_depth", "gauge", "Current depth.");
  prom.Sample("spta_depth", "kind=\"deep\"", 3.5);
  EXPECT_EQ(prom.str(),
            "# HELP spta_widgets_total Widgets made.\n"
            "# TYPE spta_widgets_total counter\n"
            "spta_widgets_total 42\n"
            "# HELP spta_depth Current depth.\n"
            "# TYPE spta_depth gauge\n"
            "spta_depth{kind=\"deep\"} 3.5\n");
}

TEST(PromText, HistogramBucketsAreCumulativeWithInf) {
  Histogram h(0.0, 4.0, 4);  // buckets [0,1) [1,2) [2,3) [3,4)
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(9.0);  // overflow: clamped into the last bin by Histogram::Add
  obs::PromText prom;
  prom.Declare("lat", "histogram", "test");
  prom.HistogramSeries("lat", "", h, 1.0, 12.6);
  const std::string text = prom.str();
  // Cumulative counts: 1, 3, 3, and the overflow observation must NOT be
  // claimed by the le="4" bucket (it exceeds the edge)...
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 3\n"), std::string::npos);
  // ...but re-appears in +Inf and _count.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 12.6\n"), std::string::npos);
}

TEST(PromText, HistogramLabelsMergeBeforeLe) {
  Histogram h = MakeLatencyHistogram();
  h.Add(10.0);
  obs::PromText prom;
  prom.Declare("lat", "histogram", "test");
  prom.HistogramSeries("lat", "cache=\"hit\"", h, 1e-6, 0.5);
  const std::string text = prom.str();
  EXPECT_NE(text.find("lat_bucket{cache=\"hit\",le=\""), std::string::npos);
  EXPECT_NE(text.find("lat_count{cache=\"hit\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{cache=\"hit\"} 0.5\n"), std::string::npos);
}

// Exemplars link a histogram series to the last distributed trace that
// fed it: an OpenMetrics-style comment Prometheus-agnostic scrapers skip
// and trace-aware ones join on. trace id 0 (no traced request yet) emits
// nothing, keeping untraced expositions byte-identical.
TEST(PromText, ExemplarCarriesTraceIdAndZeroIsSilent) {
  obs::PromText prom;
  prom.Exemplar(0, 1.5);
  EXPECT_EQ(prom.str(), "");
  prom.Exemplar(0xabcULL, 0.25);
  EXPECT_EQ(prom.str(), "# {trace_id=\"0000000000000abc\"} 0.25\n");
}

// The shared latency-bin spec (satellite of the histogram dedup): service
// metrics and obs consumers must agree on these edges, so pin them.
TEST(LatencyBins, SharedSpecIsPinned) {
  EXPECT_EQ(kLatencyBinLoMicros, 0.0);
  EXPECT_EQ(kLatencyBinHiMicros, 200000.0);
  EXPECT_EQ(kLatencyBinCount, 40u);
  const Histogram h = MakeLatencyHistogram();
  EXPECT_EQ(h.bin_count(), kLatencyBinCount);
  EXPECT_EQ(h.bin_lo(0), kLatencyBinLoMicros);
  EXPECT_EQ(h.bin_hi(h.bin_count() - 1), kLatencyBinHiMicros);
}

}  // namespace
}  // namespace spta
