// Thread-safety battery for the parallel campaign runner and its pool.
//
// The load-bearing claim is the determinism contract: the parallel runner
// produces a sample vector BIT-IDENTICAL to the serial runner's for every
// job count, because each run owns a fresh sim::Platform and derives its
// seeds purely from (campaign seed, run index). These tests assert that
// contract on the TVCA workload and on a synthetic kernel, check the
// per-path partitions, pin the audited platform properties it leans on,
// and stress the ThreadPool primitive itself. Run them under
// -DSPTA_SANITIZE=thread to get the data-race proof (see README).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "apps/tvca.hpp"
#include "common/thread_pool.hpp"
#include "sim/platform.hpp"
#include "trace/synthetic.hpp"

namespace spta {
namespace {

// Small TVCA sizing so a multi-hundred-run sweep stays fast; jitter
// sources (cache-sized footprint, FP ops, mode branches) are preserved.
apps::TvcaConfig SmallTvca() {
  apps::TvcaConfig c;
  c.sensor_channels = 4;
  c.samples_per_frame = 8;
  c.fir_taps = 6;
  c.state_dim = 8;
  c.integrator_steps = 6;
  c.control_iterations = 1;
  c.straightline_instructions = 200;
  c.dispatch_overhead = 32;
  return c;
}

void ExpectSameSamples(const std::vector<analysis::RunSample>& a,
                       const std::vector<analysis::RunSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    // Full-detail comparison: end-to-end cycles plus every per-resource
    // statistic must agree, not just the headline number.
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_EQ(a[i].path_id, b[i].path_id);
    EXPECT_EQ(a[i].detail.cycles, b[i].detail.cycles);
    EXPECT_EQ(a[i].detail.instructions, b[i].detail.instructions);
    EXPECT_EQ(a[i].detail.il1.accesses, b[i].detail.il1.accesses);
    EXPECT_EQ(a[i].detail.il1.misses, b[i].detail.il1.misses);
    EXPECT_EQ(a[i].detail.dl1.accesses, b[i].detail.dl1.accesses);
    EXPECT_EQ(a[i].detail.dl1.misses, b[i].detail.dl1.misses);
    EXPECT_EQ(a[i].detail.itlb.misses, b[i].detail.itlb.misses);
    EXPECT_EQ(a[i].detail.dtlb.misses, b[i].detail.dtlb.misses);
    EXPECT_EQ(a[i].detail.fpu.operations, b[i].detail.fpu.operations);
    EXPECT_EQ(a[i].detail.fpu.total_cycles, b[i].detail.fpu.total_cycles);
    EXPECT_EQ(a[i].detail.store_buffer.stores,
              b[i].detail.store_buffer.stores);
    EXPECT_EQ(a[i].detail.bus.transactions, b[i].detail.bus.transactions);
    EXPECT_EQ(a[i].detail.dram.accesses, b[i].detail.dram.accesses);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity on the TVCA workload, fixed scenario suite, for every job
// count (1 = pool-of-one, 2/4 = even fan-out, 7 = odd count on purpose so
// chunk boundaries never align with the run count).
class TvcaJobSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TvcaJobSweep, BitIdenticalToSerialRunner) {
  const apps::TvcaApp app(SmallTvca());
  analysis::CampaignConfig cc;
  cc.runs = 90;
  cc.distinct_scenarios = 6;

  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto serial = analysis::RunTvcaCampaign(platform, app, cc);
  const auto parallel = analysis::RunTvcaCampaignParallel(
      sim::RandLeon3Config(), app, cc, GetParam());
  ExpectSameSamples(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Jobs, TvcaJobSweep,
                         ::testing::Values(1u, 2u, 4u, 7u));

TEST(ParallelCampaignTest, FreshInputCampaignBitIdentical) {
  // distinct_scenarios == 0: every run draws fresh inputs, so the workers
  // build their own frames; traces must still match the serial runner's.
  const apps::TvcaApp app(SmallTvca());
  analysis::CampaignConfig cc;
  cc.runs = 40;
  cc.distinct_scenarios = 0;

  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto serial = analysis::RunTvcaCampaign(platform, app, cc);
  const auto parallel = analysis::RunTvcaCampaignParallel(
      sim::RandLeon3Config(), app, cc, 4);
  ExpectSameSamples(serial, parallel);
}

TEST(ParallelCampaignTest, JobCountsAgreeWithEachOther) {
  const apps::TvcaApp app(SmallTvca());
  analysis::CampaignConfig cc;
  cc.runs = 60;
  cc.distinct_scenarios = 4;
  cc.master_seed = 99;

  const auto reference = analysis::RunTvcaCampaignParallel(
      sim::RandLeon3Config(), app, cc, 1);
  for (std::size_t jobs : {2u, 4u, 7u}) {
    SCOPED_TRACE(jobs);
    const auto other = analysis::RunTvcaCampaignParallel(
        sim::RandLeon3Config(), app, cc, jobs);
    ExpectSameSamples(reference, other);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity on a synthetic kernel (fixed-trace campaign).
class SyntheticJobSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyntheticJobSweep, FixedTraceBitIdenticalToSerial) {
  trace::BlendSpec spec;
  spec.count = 6000;
  spec.fp_pm = 120;
  const trace::Trace t = trace::BlendTrace(spec, 5);

  sim::Platform platform(sim::RandLeon3Config(), 1);
  const auto serial = analysis::RunFixedTraceCampaign(platform, t, 64, 2024);
  const auto parallel = analysis::RunFixedTraceCampaignParallel(
      sim::RandLeon3Config(), t, 64, 2024, GetParam());
  ExpectSameSamples(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Jobs, SyntheticJobSweep,
                         ::testing::Values(1u, 2u, 4u, 7u));

// ---------------------------------------------------------------------------
// Per-path sample partitions: grouping observations by path id must give
// the same per-path subsequences under serial and parallel collection.
TEST(ParallelCampaignTest, PerPathPartitionsMatchSerial) {
  const apps::TvcaApp app(SmallTvca());
  analysis::CampaignConfig cc;
  cc.runs = 120;
  cc.distinct_scenarios = 12;  // several distinct paths in the suite

  sim::Platform platform(sim::RandLeon3Config(), cc.master_seed);
  const auto serial_obs =
      analysis::ToPathObservations(analysis::RunTvcaCampaign(platform, app, cc));
  const auto parallel_obs = analysis::ToPathObservations(
      analysis::RunTvcaCampaignParallel(sim::RandLeon3Config(), app, cc, 4));

  auto partition = [](const std::vector<mbpta::PathObservation>& obs) {
    std::map<std::uint32_t, std::vector<double>> by_path;
    for (const auto& o : obs) by_path[o.path_id].push_back(o.time);
    return by_path;
  };
  const auto serial_parts = partition(serial_obs);
  const auto parallel_parts = partition(parallel_obs);
  ASSERT_GT(serial_parts.size(), 1u);  // the suite exercises >1 path
  EXPECT_EQ(serial_parts, parallel_parts);
}

// ---------------------------------------------------------------------------
// The audited platform properties the contract leans on.
TEST(ParallelCampaignTest, RunResultIndependentOfConstructionSeed) {
  // Platform::Run performs the full reset protocol, so the result is a
  // pure function of (config, trace, run seed) — the construction-time
  // master seed and platform history must not leak into it.
  trace::BlendSpec spec;
  spec.count = 4000;
  const trace::Trace t = trace::BlendTrace(spec, 3);

  sim::Platform a(sim::RandLeon3Config(), 1);
  sim::Platform b(sim::RandLeon3Config(), 0xabcdef);
  (void)b.Run(t, 999);  // dirty b's history before the compared run
  for (Seed run_seed : {Seed{0}, Seed{7}, Seed{20170327}}) {
    SCOPED_TRACE(run_seed);
    EXPECT_EQ(a.Run(t, run_seed).cycles, b.Run(t, run_seed).cycles);
  }
}

TEST(ParallelCampaignTest, TvcaFrameBuildingIsPureAndShareable) {
  // TvcaApp is immutable after construction; concurrent BuildFrame calls
  // on one shared instance must agree with a serial build.
  const apps::TvcaApp app(SmallTvca());
  std::vector<apps::TvcaFrame> serial;
  for (std::uint64_t s = 0; s < 16; ++s) serial.push_back(app.BuildFrame(s));

  std::vector<apps::TvcaFrame> concurrent(16);
  ThreadPool pool(4);
  ParallelFor(pool, 16, [&](std::size_t s) {
    concurrent[s] = app.BuildFrame(s);
  });
  for (std::size_t s = 0; s < 16; ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(serial[s].path_id, concurrent[s].path_id);
    ASSERT_EQ(serial[s].trace.records.size(),
              concurrent[s].trace.records.size());
    EXPECT_EQ(serial[s].trace.path_signature,
              concurrent[s].trace.path_signature);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool battery.
TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  EXPECT_GE(analysis::DefaultJobs(), 1u);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&done] { done.fetch_add(1); });
    // No Wait(): the destructor must still run everything before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(7);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(pool, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateCounts) {
  ThreadPool pool(4);
  int zero_calls = 0;
  ParallelFor(pool, 0, [&](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  ParallelFor(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    one_calls.fetch_add(1);
  });
  EXPECT_EQ(one_calls.load(), 1);

  // More workers than iterations: no over-claiming.
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(pool, 3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(ParallelFor(pool, 100,
                           [](std::size_t i) {
                             if (i == 42) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace spta
