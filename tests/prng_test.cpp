// Unit + statistical tests for the PRNG stack: the shift registers, the
// combined hardware generator, the software engines, and the FIPS-style
// bitstream self-tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "prng/hw_prng.hpp"
#include "prng/lfsr.hpp"
#include "prng/self_test.hpp"
#include "prng/xoshiro.hpp"

namespace spta::prng {
namespace {

TEST(Lfsr43Test, NeverReachesZeroAndNoShortCycle) {
  Lfsr43 lfsr(0xdeadbeef);
  const std::uint64_t initial = lfsr.state();
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t s = lfsr.Step();
    ASSERT_NE(s, 0u);
    if (i > 0) {
      ASSERT_NE(s, initial) << "cycle shorter than " << i;
    }
  }
}

TEST(Lfsr43Test, ZeroSeedRemapped) {
  Lfsr43 lfsr(0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr43Test, StateStaysWithin43Bits) {
  Lfsr43 lfsr(~0ULL);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(lfsr.Step(), 1ULL << 43);
  }
}

TEST(Casr37Test, NeverReachesZeroAndNoShortCycle) {
  Casr37 casr(0x12345);
  const std::uint64_t initial = casr.state();
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t s = casr.Step();
    ASSERT_NE(s, 0u);
    ASSERT_LT(s, 1ULL << 37);
    if (i > 0) ASSERT_NE(s, initial);
  }
}

TEST(Casr37Test, DiffersFromLfsrSequence) {
  // The two registers must not be degenerate copies of each other.
  Lfsr43 lfsr(42);
  Casr37 casr(42);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if ((lfsr.Step() & 0xffff) == (casr.Step() & 0xffff)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(HwPrngTest, DeterministicPerSeed) {
  HwPrng a(7);
  HwPrng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(HwPrngTest, DifferentSeedsDiverge) {
  HwPrng a(7);
  HwPrng b(8);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(HwPrngTest, PassesAllBitstreamTests) {
  HwPrng gen(0x1234abcd);
  EXPECT_TRUE(PassesAllBitTests([&] { return gen.Next(); }, 20000));
}

TEST(HwPrngTest, UniformBelowRespectsBound) {
  HwPrng gen(99);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.UniformBelow(bound), bound);
    }
  }
}

TEST(HwPrngTest, UniformBelowIsRoughlyUniform) {
  HwPrng gen(5);
  constexpr std::uint32_t kBound = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[gen.UniformBelow(kBound)];
  const double expected = static_cast<double>(kDraws) / kBound;
  for (auto c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(HwPrngTest, UniformUnitInRange) {
  HwPrng gen(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.UniformUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

TEST(Xoshiro128ppTest, PassesAllBitstreamTests) {
  Xoshiro128pp gen(0xfeedface);
  EXPECT_TRUE(PassesAllBitTests([&] { return gen.Next(); }, 20000));
}

TEST(Xoshiro128ppTest, UniformBelowUnbiasedSmallBound) {
  Xoshiro128pp gen(17);
  constexpr std::uint32_t kBound = 3;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 90000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.UniformBelow(kBound)];
  for (auto c : counts) {
    EXPECT_NEAR(c, kDraws / 3.0, 5.0 * std::sqrt(kDraws / 3.0));
  }
}

TEST(Xoshiro128ppTest, NormalHasUnitMoments) {
  Xoshiro128pp gen(23);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = gen.Normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(Xoshiro128ppTest, UniformRealRange) {
  Xoshiro128pp gen(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = gen.UniformReal(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(SelfTest, MonobitDetectsAllOnes) {
  std::vector<std::uint32_t> words(1000, 0xffffffffu);
  EXPECT_FALSE(MonobitTest(words).passed);
}

TEST(SelfTest, RunsDetectsAlternatingPattern) {
  // 0101... has twice as many runs as expected.
  std::vector<std::uint32_t> words(1000, 0x55555555u);
  EXPECT_FALSE(RunsTest(words).passed);
}

TEST(SelfTest, PokerDetectsRepeatedNibble) {
  std::vector<std::uint32_t> words(1000, 0x77777777u);
  EXPECT_FALSE(PokerTest(words).passed);
}

TEST(SelfTest, AllPassOnGoodGenerator) {
  Xoshiro128pp gen(1);
  std::vector<std::uint32_t> words(20000);
  for (auto& w : words) w = gen.Next();
  EXPECT_TRUE(MonobitTest(words).passed);
  EXPECT_TRUE(PokerTest(words).passed);
  EXPECT_TRUE(RunsTest(words).passed);
}

// The platform PRNG must remain sound for *every* per-run seed derivation
// pattern the campaign uses.
class HwPrngSeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwPrngSeedSweepTest, BitstreamQualityAcrossSeeds) {
  HwPrng gen(GetParam());
  EXPECT_TRUE(PassesAllBitTests([&] { return gen.Next(); }, 5000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwPrngSeedSweepTest,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL,
                                           0xffffffffffffffffULL,
                                           0x8000000000000000ULL,
                                           20170327ULL, 987654321ULL));

}  // namespace
}  // namespace spta::prng
