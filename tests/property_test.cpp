// Property-based suites: invariants that must hold across swept parameter
// spaces — platform configurations, workload shapes, probability grids and
// seeds. These are the "for all X" claims the MBPTA argument leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/campaign.hpp"
#include "evt/block_maxima.hpp"
#include "evt/gumbel.hpp"
#include "evt/pwcet.hpp"
#include "mbpta/mbpta.hpp"
#include "prng/xoshiro.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

namespace spta {
namespace {

// ---------------------------------------------------------------------------
// Property: for ANY trace and ANY seed, a run on the analysis-phase RAND
// platform takes at least as long as on the operation-phase platform
// (identical except the FPU is value-dependent). This is the paper's
// upper-bounding argument for the FPU hardware change.
class FpuBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FpuBoundSweep, AnalysisPhaseUpperBoundsOperation) {
  trace::BlendSpec spec;
  spec.count = 8000;
  spec.fp_pm = 200;  // FP heavy to stress the property
  const trace::Trace t = trace::BlendTrace(spec, GetParam());
  sim::Platform analysis_p(sim::RandLeon3Config(), 1);
  sim::Platform operation_p(sim::RandLeon3OperationConfig(), 1);
  for (Seed s = 0; s < 3; ++s) {
    EXPECT_GE(analysis_p.Run(t, s).cycles, operation_p.Run(t, s).cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, FpuBoundSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Property: block maxima are monotone in block size — maxima of bigger
// blocks stochastically dominate — and never below the per-block sample.
class BlockSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSizeSweep, MaximaDominateSampleMean) {
  prng::Xoshiro128pp rng(GetParam());
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.Normal();
  const auto maxima = evt::BlockMaxima(xs, GetParam());
  EXPECT_EQ(maxima.size(), xs.size() / GetParam());
  EXPECT_GE(stats::Mean(maxima), stats::Mean(xs));
  // Each maximum is an element of its block.
  for (std::size_t b = 0; b < maxima.size(); ++b) {
    const auto begin = xs.begin() + static_cast<long>(b * GetParam());
    EXPECT_NE(std::find(begin, begin + static_cast<long>(GetParam()),
                        maxima[b]),
              begin + static_cast<long>(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(5, 10, 25, 50, 100));

// ---------------------------------------------------------------------------
// Property: the pWCET curve from ANY fitted sample is monotone decreasing
// in exceedance probability and consistent under inversion.
class PwcetFitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PwcetFitSweep, MonotoneAndInvertible) {
  prng::Xoshiro128pp rng(GetParam());
  std::vector<double> xs(2000);
  const evt::GumbelDist gen{1000.0 + 10.0 * static_cast<double>(GetParam()),
                            5.0 + static_cast<double>(GetParam())};
  for (auto& x : xs) x = gen.Quantile(std::max(rng.UniformUnit(), 1e-12));
  const auto curve = evt::PwcetCurve::FitFromSample(xs, 50);
  double prev = -1e300;
  for (int e = 2; e <= 15; ++e) {
    const double p = std::pow(10.0, -e);
    const double v = curve.QuantileForExceedance(p);
    EXPECT_GT(v, prev);
    EXPECT_NEAR(curve.ExceedanceAt(v), p, p * 1e-5);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Fits, PwcetFitSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// Property: on the DET platform the seed is immaterial for EVERY workload
// shape (its policies are deterministic), while caches still function
// (misses < accesses for cacheable loops).
class DetInvarianceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetInvarianceSweep, SeedImmaterialOnDet) {
  trace::BlendSpec spec;
  spec.count = 5000;
  spec.data_bytes = 8192 << (GetParam() % 4);
  const trace::Trace t = trace::BlendTrace(spec, GetParam());
  sim::Platform det(sim::DetLeon3Config(), 123);
  std::set<Cycles> times;
  for (Seed s = 0; s < 4; ++s) times.insert(det.Run(t, s).cycles);
  EXPECT_EQ(times.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DetInvarianceSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Property: cache miss counts on a looping workload are bounded by the
// trivial bounds (cold misses <= misses <= accesses) for every platform
// preset and loop footprint.
struct LoopCase {
  std::size_t footprint_kb;
  bool randomized;
};

class LoopBoundSweep : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopBoundSweep, MissBoundsHold) {
  const auto [kb, randomized] = GetParam();
  const trace::Trace t =
      trace::LoopingTrace(0x40100000, kb * 1024, 32, /*iterations=*/4);
  sim::Platform p(randomized ? sim::RandLeon3Config()
                             : sim::DetLeon3Config(),
                  1);
  const auto res = p.Run(t, 5);
  const std::uint64_t lines = kb * 1024 / 32;
  EXPECT_GE(res.dl1.misses, lines);  // at least the cold misses
  EXPECT_LE(res.dl1.misses, res.dl1.accesses);
  if (kb * 1024 <= 8 * 1024) {
    // Working set half the cache: after warm-up everything hits (random
    // modulo cannot self-conflict on a contiguous region; allow hash slack).
    EXPECT_LE(res.dl1.misses, lines + 8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Footprints, LoopBoundSweep,
    ::testing::Values(LoopCase{4, false}, LoopCase{4, true},
                      LoopCase{8, false}, LoopCase{8, true},
                      LoopCase{24, false}, LoopCase{24, true},
                      LoopCase{48, false}, LoopCase{48, true}));

// ---------------------------------------------------------------------------
// Property: MBPTA analysis of ANY well-behaved unimodal sample yields a
// pWCET at 1e-12 that is at least the sample maximum (conservativeness at
// certification probabilities).
class ConservativenessSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConservativenessSweep, PwcetAtLeastHighWatermark) {
  prng::Xoshiro128pp rng(GetParam() * 7919 + 3);
  std::vector<double> xs(1500);
  for (auto& x : xs) {
    // Lognormal-ish execution times: realistic right-skewed sample.
    x = 10000.0 * std::exp(0.05 * rng.Normal());
  }
  mbpta::MbptaOptions opts;
  opts.require_iid = false;
  const auto r = mbpta::AnalyzeSample(xs, opts);
  ASSERT_TRUE(r.curve.has_value());
  EXPECT_GE(r.PwcetAt(1e-12), stats::Max(xs) * 0.995);
}

INSTANTIATE_TEST_SUITE_P(Samples, ConservativenessSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Property: per-run reseeding makes RAND execution times exchangeable —
// shuffling the collection order must not change the analysis outcome
// materially (the sample really is i.i.d. across runs).
TEST(ExchangeabilityTest, ShuffledSampleGivesSamePwcet) {
  trace::BlendSpec spec;
  spec.count = 20000;
  spec.data_bytes = 40 * 1024;
  const trace::Trace t = trace::BlendTrace(spec, 11);
  sim::Platform p(sim::RandLeon3Config(), 1);
  std::vector<double> times;
  for (Seed s = 0; s < 400; ++s) {
    times.push_back(static_cast<double>(p.Run(t, s).cycles));
  }
  mbpta::MbptaOptions opts;
  opts.require_iid = false;
  const auto before = mbpta::AnalyzeSample(times, opts);
  std::vector<double> shuffled = times;
  prng::Xoshiro128pp rng(5);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformBelow(
                                   static_cast<std::uint32_t>(i))]);
  }
  const auto after = mbpta::AnalyzeSample(shuffled, opts);
  ASSERT_TRUE(before.curve && after.curve);
  EXPECT_NEAR(before.PwcetAt(1e-9), after.PwcetAt(1e-9),
              0.02 * before.PwcetAt(1e-9));
}

// ---------------------------------------------------------------------------
// Property: the campaign's per-run seed derivation — the contract the
// parallel runner's determinism rests on — is collision-free over 10k run
// indices, a pure function of (campaign seed, run index), and keeps the
// platform-PRNG stream disjoint from the workload-input stream.
class SeedDerivationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedDerivationSweep, RunSeedsCollisionFreeStableAndDisjoint) {
  analysis::CampaignConfig cfg;
  cfg.master_seed = GetParam();
  constexpr std::size_t kRuns = 10000;

  std::set<Seed> run_seeds;
  for (std::size_t r = 0; r < kRuns; ++r) {
    const Seed s = analysis::TvcaRunSeed(cfg, r);
    ASSERT_EQ(s, analysis::TvcaRunSeed(cfg, r)) << "unstable at run " << r;
    run_seeds.insert(s);
  }
  EXPECT_EQ(run_seeds.size(), kRuns);  // no platform-seed collision

  std::set<Seed> fixed_seeds;
  for (std::size_t r = 0; r < kRuns; ++r) {
    fixed_seeds.insert(analysis::FixedTraceRunSeed(cfg.master_seed, r));
  }
  EXPECT_EQ(fixed_seeds.size(), kRuns);

  // Fresh-input campaigns draw one scenario seed per run; none may alias a
  // platform seed (inputs and platform randomization stay independent).
  cfg.distinct_scenarios = 0;
  for (std::size_t r = 0; r < kRuns; ++r) {
    ASSERT_EQ(run_seeds.count(analysis::TvcaScenarioSeed(cfg, r)), 0u)
        << "scenario/run seed alias at run " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(MasterSeeds, SeedDerivationSweep,
                         ::testing::Values(0ULL, 1ULL, 20170327ULL,
                                           0xdeadbeefcafeULL));

TEST(SeedDerivationProperty, DistinctCampaignSeedsGiveDisjointStreams) {
  analysis::CampaignConfig a;
  analysis::CampaignConfig b;
  a.master_seed = 20170327;
  b.master_seed = 20170328;  // adjacent seeds: the hardest case for a mixer
  std::set<Seed> sa;
  for (std::size_t r = 0; r < 10000; ++r) {
    sa.insert(analysis::TvcaRunSeed(a, r));
  }
  for (std::size_t r = 0; r < 10000; ++r) {
    ASSERT_EQ(sa.count(analysis::TvcaRunSeed(b, r)), 0u)
        << "campaigns share a platform seed at run " << r;
  }
}

}  // namespace
}  // namespace spta
