// Malformed-frame robustness battery for the spta1 wire protocol.
//
// The frame readers sit on the untrusted boundary of spta_serve: anything a
// client (or a port scanner) writes at the socket flows through ReadRequest
// before any server logic runs. The contract under attack input is narrow
// and absolute — return kMalformed (with a diagnostic) or kEof, never
// crash, never hang, never abort the process. This battery throws
// truncated headers, oversized and overflowing length fields, garbage
// bytes, embedded NULs and a seeded random fuzz loop at both readers; it
// runs under the repo's sanitizer configs (-DSPTA_SANITIZE=address) where
// any out-of-bounds read in the parsing path becomes a hard failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "prng/xoshiro.hpp"
#include "service/protocol.hpp"

namespace spta::service {
namespace {

/// Feeds `wire` to ReadRequest and returns the status; the assertion that
/// it returns at all (no crash/abort) is the point.
ReadStatus RequestStatus(const std::string& wire, std::string* error) {
  std::istringstream in(wire);
  Request request;
  return ReadRequest(in, &request, error);
}

ReadStatus ResponseStatus(const std::string& wire, std::string* error) {
  std::istringstream in(wire);
  Response response;
  return ReadResponse(in, &response, error);
}

void ExpectRejectedOrEof(const std::string& wire, const char* what) {
  std::string error;
  const ReadStatus status = RequestStatus(wire, &error);
  EXPECT_TRUE(status == ReadStatus::kMalformed || status == ReadStatus::kEof)
      << what << ": status " << static_cast<int>(status);
  if (status == ReadStatus::kMalformed) {
    EXPECT_FALSE(error.empty()) << what << ": kMalformed needs a diagnostic";
  }
}

TEST(ProtocolRobustnessTest, EmptyAndWhitespaceStreams) {
  for (const char* wire : {"", "\n", "\n\n\n", "   ", " \t \n"}) {
    ExpectRejectedOrEof(wire, "empty/whitespace stream");
  }
}

TEST(ProtocolRobustnessTest, TruncatedHeaders) {
  for (const char* wire :
       {"s", "spta", "spta1", "spta1 ", "spta1 PING", "spta1 PING ",
        "spta1 PING 4", "spta1 PING\n", "spta1 \n", "spta1\n"}) {
    ExpectRejectedOrEof(wire, "truncated header");
  }
}

TEST(ProtocolRobustnessTest, WrongMagic) {
  for (const char* wire :
       {"spta2 PING 0\n", "SPTA1 PING 0\n", "spta10 PING 0\n",
        "http/1.1 GET 0\n", "GET / HTTP/1.1\n\n", "xspta1 PING 0\n"}) {
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "magic: " << wire;
  }
  // NUL-prefixed magic (needs explicit length — a literal would truncate).
  std::string error;
  EXPECT_EQ(RequestStatus(std::string("\0spta1 PING 0\n", 14), &error),
            ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, UnknownVerbs) {
  for (const char* wire :
       {"spta1 FROB 0\n", "spta1 ping 0\n", "spta1 ANALYZE! 0\n",
        "spta1 0 0\n", "spta1 == 0\n"}) {
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "verb: " << wire;
  }
  // Responses only accept OK/ERR; request verbs must be rejected there.
  std::string error;
  EXPECT_EQ(ResponseStatus("spta1 PING 0\n", &error), ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, BadLengthFields) {
  for (const char* wire :
       {"spta1 PING -1\n", "spta1 PING abc\n", "spta1 PING 4x\n",
        "spta1 PING 0x10\n", "spta1 PING \n", "spta1 PING 1 2\n",
        "spta1 PING 99999999999999999999999999\n",     // > uint64
        "spta1 PING 18446744073709551616\n",           // 2^64
        "spta1 PING 18446744073709551615\n",           // UINT64_MAX
        "spta1 PING 67108865\n"}) {                    // kMaxFrameBytes + 1
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "length: " << wire;
  }
}

TEST(ProtocolRobustnessTest, OversizedLengthDoesNotAllocate) {
  // A hostile length just under the cap with no body must fail on the
  // truncated body, not crash — and a length over the cap must be refused
  // before any allocation attempt (64 MiB cap; a multi-exabyte length
  // would otherwise be a one-line denial of service).
  ExpectRejectedOrEof("spta1 APPEND 67108864\nshort body", "body truncated");
  std::string error;
  EXPECT_EQ(RequestStatus("spta1 APPEND 9223372036854775807\n", &error),
            ReadStatus::kMalformed);
  EXPECT_EQ(RequestStatus("spta1 APPEND 4000000000\n", &error),
            ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, TruncatedBodies) {
  ExpectRejectedOrEof("spta1 PING 10\n", "announced 10, got 0");
  ExpectRejectedOrEof("spta1 PING 10\nabc", "announced 10, got 3");
  ExpectRejectedOrEof("spta1 ANALYZE 100\nrequire_iid=0\n1 2 3",
                      "announced 100, got fewer");
}

TEST(ProtocolRobustnessTest, GarbageAndBinaryBytes) {
  std::string wire = "spta1 PING 8\n";
  wire += std::string("\x00\xff\x7f\n\x01\x02\x03\x04", 8);
  std::string error;
  Request request;
  std::istringstream in(wire);
  // Binary bytes in the body are legal (8-bit clean framing): the frame
  // must parse, with the NUL preserved in args-line-or-payload handling,
  // and must not trip the sanitizer.
  EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk) << error;
  EXPECT_EQ(request.kind, RequestKind::kPing);

  // Pure binary garbage where a header should be.
  std::string junk(64, '\0');
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<char>(0xf0 + (i % 16));
  }
  ExpectRejectedOrEof(junk, "binary junk header");
}

TEST(ProtocolRobustnessTest, MalformedArgsLineNeverThrows) {
  // Args::Parse silently skips bad tokens; hostile arg lines must never
  // reach a throw/abort even when the frame itself is well-formed.
  for (const char* args_line :
       {"= == === ====", "key=", "=value", "a=b=c=d", " leading  doubled ",
        "k\x01=v", "9999999999999999999999=x"}) {
    const std::string body = std::string(args_line) + "\n";
    std::ostringstream wire;
    wire << "spta1 STATUS " << body.size() << "\n" << body;
    std::string error;
    Request request;
    std::istringstream in(wire.str());
    EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk)
        << "args line: " << args_line;
  }
}

TEST(ProtocolRobustnessTest, BackToBackFramesAfterRejection) {
  // One malformed frame must not poison the reader for the next stream:
  // readers are per-connection, so a fresh stream with a valid frame must
  // still parse after arbitrarily bad prior input was handled.
  ExpectRejectedOrEof("spta1 BOGUS 0\n", "bad verb");
  std::istringstream in("spta1 PING 1\n\n");
  Request request;
  std::string error;
  EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk) << error;
  EXPECT_EQ(request.kind, RequestKind::kPing);
}

TEST(ProtocolRobustnessTest, SeededFuzzNeverCrashes) {
  // Random mutations of a valid frame: flip bytes, truncate, splice. The
  // only assertion is the implicit one — every input returns a status
  // (and kMalformed carries a diagnostic) without crashing, for both
  // readers, under the sanitizer builds.
  const std::string valid = "spta1 ANALYZE 26\nrequire_iid=0\n1000\n2000\n";
  prng::Xoshiro128pp rng(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string wire = valid;
    const std::uint32_t mutations = 1 + rng.UniformBelow(8);
    for (std::uint32_t m = 0; m < mutations; ++m) {
      switch (rng.UniformBelow(4)) {
        case 0:  // flip a byte
          if (!wire.empty()) {
            wire[rng.UniformBelow(static_cast<std::uint32_t>(wire.size()))] =
                static_cast<char>(rng.Next() & 0xff);
          }
          break;
        case 1:  // truncate
          wire.resize(rng.UniformBelow(
              static_cast<std::uint32_t>(wire.size() + 1)));
          break;
        case 2:  // duplicate a chunk
          wire += wire.substr(
              rng.UniformBelow(static_cast<std::uint32_t>(wire.size() + 1)));
          break;
        default:  // insert random bytes
          for (int i = 0; i < 8; ++i) {
            wire.insert(wire.begin() +
                            rng.UniformBelow(
                                static_cast<std::uint32_t>(wire.size() + 1)),
                        static_cast<char>(rng.Next() & 0xff));
          }
          break;
      }
    }
    std::string error;
    const ReadStatus req_status = RequestStatus(wire, &error);
    if (req_status == ReadStatus::kMalformed) {
      EXPECT_FALSE(error.empty()) << "iter " << iter;
    }
    error.clear();
    (void)ResponseStatus(wire, &error);
  }
}

}  // namespace
}  // namespace spta::service
