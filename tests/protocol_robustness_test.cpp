// Malformed-frame robustness battery for the spta1 wire protocol.
//
// The frame readers sit on the untrusted boundary of spta_serve: anything a
// client (or a port scanner) writes at the socket flows through ReadRequest
// before any server logic runs. The contract under attack input is narrow
// and absolute — return kMalformed (with a diagnostic) or kEof, never
// crash, never hang, never abort the process. This battery throws
// truncated headers, oversized and overflowing length fields, garbage
// bytes, embedded NULs and a seeded random fuzz loop at both readers; it
// runs under the repo's sanitizer configs (-DSPTA_SANITIZE=address) where
// any out-of-bounds read in the parsing path becomes a hard failure.
//
// The second half of the battery targets the incremental FrameReassembler
// (frame_reader.hpp) that the epoll event loop uses instead of blocking
// istream reads: every golden frame is split at every byte boundary and
// re-delivered across simulated wakeups, slow-loris connections trickle
// one byte at a time while other connections make progress, and a seeded
// chunked fuzz re-checks reader equivalence (same frames, same
// accept/reject outcome as the blocking reader) over hostile streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "prng/xoshiro.hpp"
#include "service/frame_reader.hpp"
#include "service/protocol.hpp"

namespace spta::service {
namespace {

/// Feeds `wire` to ReadRequest and returns the status; the assertion that
/// it returns at all (no crash/abort) is the point.
ReadStatus RequestStatus(const std::string& wire, std::string* error) {
  std::istringstream in(wire);
  Request request;
  return ReadRequest(in, &request, error);
}

ReadStatus ResponseStatus(const std::string& wire, std::string* error) {
  std::istringstream in(wire);
  Response response;
  return ReadResponse(in, &response, error);
}

void ExpectRejectedOrEof(const std::string& wire, const char* what) {
  std::string error;
  const ReadStatus status = RequestStatus(wire, &error);
  EXPECT_TRUE(status == ReadStatus::kMalformed || status == ReadStatus::kEof)
      << what << ": status " << static_cast<int>(status);
  if (status == ReadStatus::kMalformed) {
    EXPECT_FALSE(error.empty()) << what << ": kMalformed needs a diagnostic";
  }
}

TEST(ProtocolRobustnessTest, EmptyAndWhitespaceStreams) {
  for (const char* wire : {"", "\n", "\n\n\n", "   ", " \t \n"}) {
    ExpectRejectedOrEof(wire, "empty/whitespace stream");
  }
}

TEST(ProtocolRobustnessTest, TruncatedHeaders) {
  for (const char* wire :
       {"s", "spta", "spta1", "spta1 ", "spta1 PING", "spta1 PING ",
        "spta1 PING 4", "spta1 PING\n", "spta1 \n", "spta1\n"}) {
    ExpectRejectedOrEof(wire, "truncated header");
  }
}

TEST(ProtocolRobustnessTest, WrongMagic) {
  for (const char* wire :
       {"spta2 PING 0\n", "SPTA1 PING 0\n", "spta10 PING 0\n",
        "http/1.1 GET 0\n", "GET / HTTP/1.1\n\n", "xspta1 PING 0\n"}) {
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "magic: " << wire;
  }
  // NUL-prefixed magic (needs explicit length — a literal would truncate).
  std::string error;
  EXPECT_EQ(RequestStatus(std::string("\0spta1 PING 0\n", 14), &error),
            ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, UnknownVerbs) {
  for (const char* wire :
       {"spta1 FROB 0\n", "spta1 ping 0\n", "spta1 ANALYZE! 0\n",
        "spta1 0 0\n", "spta1 == 0\n"}) {
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "verb: " << wire;
  }
  // Responses only accept OK/ERR; request verbs must be rejected there.
  std::string error;
  EXPECT_EQ(ResponseStatus("spta1 PING 0\n", &error), ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, BadLengthFields) {
  for (const char* wire :
       {"spta1 PING -1\n", "spta1 PING abc\n", "spta1 PING 4x\n",
        "spta1 PING 0x10\n", "spta1 PING \n", "spta1 PING 1 2\n",
        "spta1 PING 99999999999999999999999999\n",     // > uint64
        "spta1 PING 18446744073709551616\n",           // 2^64
        "spta1 PING 18446744073709551615\n",           // UINT64_MAX
        "spta1 PING 67108865\n"}) {                    // kMaxFrameBytes + 1
    std::string error;
    EXPECT_EQ(RequestStatus(wire, &error), ReadStatus::kMalformed)
        << "length: " << wire;
  }
}

TEST(ProtocolRobustnessTest, OversizedLengthDoesNotAllocate) {
  // A hostile length just under the cap with no body must fail on the
  // truncated body, not crash — and a length over the cap must be refused
  // before any allocation attempt (64 MiB cap; a multi-exabyte length
  // would otherwise be a one-line denial of service).
  ExpectRejectedOrEof("spta1 APPEND 67108864\nshort body", "body truncated");
  std::string error;
  EXPECT_EQ(RequestStatus("spta1 APPEND 9223372036854775807\n", &error),
            ReadStatus::kMalformed);
  EXPECT_EQ(RequestStatus("spta1 APPEND 4000000000\n", &error),
            ReadStatus::kMalformed);
}

TEST(ProtocolRobustnessTest, TruncatedBodies) {
  ExpectRejectedOrEof("spta1 PING 10\n", "announced 10, got 0");
  ExpectRejectedOrEof("spta1 PING 10\nabc", "announced 10, got 3");
  ExpectRejectedOrEof("spta1 ANALYZE 100\nrequire_iid=0\n1 2 3",
                      "announced 100, got fewer");
}

TEST(ProtocolRobustnessTest, GarbageAndBinaryBytes) {
  std::string wire = "spta1 PING 8\n";
  wire += std::string("\x00\xff\x7f\n\x01\x02\x03\x04", 8);
  std::string error;
  Request request;
  std::istringstream in(wire);
  // Binary bytes in the body are legal (8-bit clean framing): the frame
  // must parse, with the NUL preserved in args-line-or-payload handling,
  // and must not trip the sanitizer.
  EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk) << error;
  EXPECT_EQ(request.kind, RequestKind::kPing);

  // Pure binary garbage where a header should be.
  std::string junk(64, '\0');
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<char>(0xf0 + (i % 16));
  }
  ExpectRejectedOrEof(junk, "binary junk header");
}

TEST(ProtocolRobustnessTest, MalformedArgsLineNeverThrows) {
  // Args::Parse silently skips bad tokens; hostile arg lines must never
  // reach a throw/abort even when the frame itself is well-formed.
  for (const char* args_line :
       {"= == === ====", "key=", "=value", "a=b=c=d", " leading  doubled ",
        "k\x01=v", "9999999999999999999999=x"}) {
    const std::string body = std::string(args_line) + "\n";
    std::ostringstream wire;
    wire << "spta1 STATUS " << body.size() << "\n" << body;
    std::string error;
    Request request;
    std::istringstream in(wire.str());
    EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk)
        << "args line: " << args_line;
  }
}

TEST(ProtocolRobustnessTest, BackToBackFramesAfterRejection) {
  // One malformed frame must not poison the reader for the next stream:
  // readers are per-connection, so a fresh stream with a valid frame must
  // still parse after arbitrarily bad prior input was handled.
  ExpectRejectedOrEof("spta1 BOGUS 0\n", "bad verb");
  std::istringstream in("spta1 PING 1\n\n");
  Request request;
  std::string error;
  EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk) << error;
  EXPECT_EQ(request.kind, RequestKind::kPing);
}

TEST(ProtocolRobustnessTest, SeededFuzzNeverCrashes) {
  // Random mutations of a valid frame: flip bytes, truncate, splice. The
  // only assertion is the implicit one — every input returns a status
  // (and kMalformed carries a diagnostic) without crashing, for both
  // readers, under the sanitizer builds.
  const std::string valid = "spta1 ANALYZE 26\nrequire_iid=0\n1000\n2000\n";
  prng::Xoshiro128pp rng(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string wire = valid;
    const std::uint32_t mutations = 1 + rng.UniformBelow(8);
    for (std::uint32_t m = 0; m < mutations; ++m) {
      switch (rng.UniformBelow(4)) {
        case 0:  // flip a byte
          if (!wire.empty()) {
            wire[rng.UniformBelow(static_cast<std::uint32_t>(wire.size()))] =
                static_cast<char>(rng.Next() & 0xff);
          }
          break;
        case 1:  // truncate
          wire.resize(rng.UniformBelow(
              static_cast<std::uint32_t>(wire.size() + 1)));
          break;
        case 2:  // duplicate a chunk
          wire += wire.substr(
              rng.UniformBelow(static_cast<std::uint32_t>(wire.size() + 1)));
          break;
        default:  // insert random bytes
          for (int i = 0; i < 8; ++i) {
            wire.insert(wire.begin() +
                            rng.UniformBelow(
                                static_cast<std::uint32_t>(wire.size() + 1)),
                        static_cast<char>(rng.Next() & 0xff));
          }
          break;
      }
    }
    std::string error;
    const ReadStatus req_status = RequestStatus(wire, &error);
    if (req_status == ReadStatus::kMalformed) {
      EXPECT_FALSE(error.empty()) << "iter " << iter;
    }
    error.clear();
    (void)ResponseStatus(wire, &error);
  }
}

// --- Optional trace= header token ----------------------------------------

/// Parses `wire` and returns the request (asserting kOk) so trace-token
/// tests can inspect what the lenient parser extracted.
Request ParsedRequest(const std::string& wire) {
  std::istringstream in(wire);
  Request request;
  std::string error;
  EXPECT_EQ(ReadRequest(in, &request, &error), ReadStatus::kOk) << error;
  return request;
}

TEST(ProtocolRobustnessTest, ValidTraceTokenParsesAndRoundTrips) {
  Request request;
  request.kind = RequestKind::kPing;
  request.trace.trace_id = 0x0123456789abcdefULL;
  request.trace.span_id = 0x00000000000000aaULL;
  std::ostringstream out;
  ASSERT_TRUE(WriteRequest(out, request));
  const std::string wire = out.str();
  // The token is the documented optional fourth header field.
  EXPECT_NE(wire.find(" trace=0123456789abcdef-00000000000000aa\n"),
            std::string::npos);
  const Request parsed = ParsedRequest(wire);
  EXPECT_EQ(parsed.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(parsed.trace.span_id, request.trace.span_id);
}

TEST(ProtocolRobustnessTest, UntracedRequestsStayByteIdentical) {
  // The absent-token wire format is the pre-tracing format, byte for
  // byte — old servers and clients interoperate, checksums/digests over
  // frames are unchanged.
  Request request;
  request.kind = RequestKind::kPing;
  std::ostringstream out;
  ASSERT_TRUE(WriteRequest(out, request));
  EXPECT_EQ(out.str(), "spta1 PING 1\n\n");
  // AppendRequestFrame (the digest/memo path) never emits the token,
  // even for a traced request.
  request.trace.trace_id = 0xdead;
  std::string frame;
  AppendRequestFrame(request, &frame);
  EXPECT_EQ(frame, "spta1 PING 1\n\n");
}

TEST(ProtocolRobustnessTest, MalformedTraceTokensNeverRejectTheFrame) {
  // Lenient by contract: junk in the optional field parses as absent —
  // the frame is still accepted with identical verb/args/payload.
  const char* kJunkTokens[] = {
      "trace=",
      "trace=zzz",
      "trace=0123456789abcdef",                     // missing span half
      "trace=0123456789abcdef-",                    // empty span half
      "trace=0123456789abcdef_00000000000000aa",    // wrong separator
      "trace=0123456789abcdeg-00000000000000aa",    // non-hex
      "trace=0123456789abcdef-00000000000000aag",   // trailing garbage
      "trace=0000000000000000-00000000000000aa",    // zero trace id
      "trace=0123456789abcdef-00000000000000aa-ff", // extra segment
      "trace",                                      // bare word
      "tracer=0123456789abcdef-00000000000000aa",   // near-miss key
      "trace=0123456789abcdef-00000000000000aa" // oversized (x4 below)
      "0123456789abcdef0123456789abcdef0123456789abcdef",
  };
  for (const char* junk : kJunkTokens) {
    const std::string wire = std::string("spta1 PING 1 ") + junk + "\n\n";
    const Request parsed = ParsedRequest(wire);
    EXPECT_FALSE(parsed.trace.valid()) << junk;
    EXPECT_EQ(parsed.kind, RequestKind::kPing) << junk;
  }
}

TEST(ProtocolRobustnessTest, FirstValidTraceTokenWinsOverJunk) {
  // Junk tokens are skipped, not allowed to shadow a good copy; once a
  // valid token parsed, later ones are ignored.
  const Request parsed = ParsedRequest(
      "spta1 PING 1 trace=bogus "
      "trace=0123456789abcdef-00000000000000aa "
      "trace=ffffffffffffffff-ffffffffffffffff\n\n");
  EXPECT_EQ(parsed.trace.trace_id, 0x0123456789abcdefULL);
  EXPECT_EQ(parsed.trace.span_id, 0x00000000000000aaULL);
}

TEST(ProtocolRobustnessTest, SeededTraceTokenFuzzNeverCrashes) {
  // Mutations concentrated on the trace token region: the lenient parser
  // must never crash, and whenever the frame still parses, a mangled
  // token must yield either absent or *some* context — never an error.
  const std::string valid =
      "spta1 ANALYZE 26 trace=0123456789abcdef-00000000000000aa\n"
      "require_iid=0\n1000\n2000\n";
  prng::Xoshiro128pp rng(20260809);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string wire = valid;
    const std::size_t token_at = wire.find("trace=");
    const std::uint32_t mutations = 1 + rng.UniformBelow(4);
    for (std::uint32_t m = 0; m < mutations; ++m) {
      const std::uint32_t span = 40;  // token + a little slack
      const std::size_t at =
          token_at + rng.UniformBelow(span) % (wire.size() - token_at);
      switch (rng.UniformBelow(3)) {
        case 0:
          wire[at] = static_cast<char>(rng.Next() & 0xff);
          break;
        case 1:
          wire.erase(at, 1 + rng.UniformBelow(4));
          break;
        default:
          wire.insert(at, 1 + rng.UniformBelow(4),
                      static_cast<char>(rng.Next() & 0x7f));
          break;
      }
    }
    std::string error;
    (void)RequestStatus(wire, &error);  // must return, never crash
  }
}

// --- Incremental reassembly: split delivery, slow loris, fuzz ------------

/// What a reader extracted from a stream: the re-encoded frames it
/// accepted, and whether the stream ended cleanly or malformed. Error
/// TEXT is deliberately not part of the comparison (the reassembler's
/// header cap is allowed to diagnose differently).
struct StreamOutcome {
  std::vector<std::string> frames;  ///< AppendRequestFrame re-encodings.
  bool malformed = false;

  bool operator==(const StreamOutcome& other) const {
    return frames == other.frames && malformed == other.malformed;
  }
};

StreamOutcome BlockingOutcome(const std::string& wire) {
  StreamOutcome outcome;
  std::istringstream in(wire);
  for (;;) {
    Request request;
    std::string error;
    const ReadStatus status = ReadRequest(in, &request, &error);
    if (status == ReadStatus::kOk) {
      std::string frame;
      AppendRequestFrame(request, &frame);
      outcome.frames.push_back(std::move(frame));
      continue;
    }
    outcome.malformed = (status == ReadStatus::kMalformed);
    return outcome;
  }
}

/// Runs the reassembler over `wire` delivered in the given chunks (sizes
/// need not cover the wire; the tail is delivered as one final slice),
/// then applies EOF via Finish — exactly the event loop's read pattern.
StreamOutcome IncrementalOutcome(const std::string& wire,
                                 const std::vector<std::size_t>& chunks) {
  StreamOutcome outcome;
  FrameReassembler reassembler;
  std::size_t offset = 0;
  auto drain = [&](bool finishing) {
    for (;;) {
      std::string type;
      std::string body;
      std::string error;
      const FrameReassembler::Result result =
          finishing ? reassembler.Finish(&type, &body, &error)
                    : reassembler.Next(&type, &body, &error);
      if (result == FrameReassembler::Result::kNeedMore) return;
      if (result == FrameReassembler::Result::kMalformed) {
        outcome.malformed = true;
        return;
      }
      Request request;
      if (!BuildRequest(type, body, &request, &error)) {
        outcome.malformed = true;
        return;
      }
      std::string frame;
      AppendRequestFrame(request, &frame);
      outcome.frames.push_back(std::move(frame));
      if (finishing) return;  // at most one EOF-completed frame
    }
  };
  for (const std::size_t chunk : chunks) {
    if (outcome.malformed || offset >= wire.size()) break;
    const std::size_t take = std::min(chunk, wire.size() - offset);
    reassembler.Feed(std::string_view(wire).substr(offset, take));
    offset += take;
    drain(false);
  }
  if (!outcome.malformed && offset < wire.size()) {
    reassembler.Feed(std::string_view(wire).substr(offset));
    drain(false);
  }
  if (!outcome.malformed) drain(true);
  return outcome;
}

/// One golden frame per verb (session verbs with args, ANALYZE with an
/// args line + payload, INGEST with a binary-ish payload).
std::vector<std::string> GoldenFrames() {
  std::vector<std::string> frames;
  auto add = [&](RequestKind kind, std::vector<std::pair<std::string,
                                                         std::string>> args,
                 std::string payload) {
    Request request;
    request.kind = kind;
    for (auto& [k, v] : args) request.args.Set(k, v);
    request.payload = std::move(payload);
    std::string frame;
    AppendRequestFrame(request, &frame);
    frames.push_back(std::move(frame));
  };
  add(RequestKind::kPing, {}, "");
  add(RequestKind::kOpen, {{"session", "golden"}}, "");
  add(RequestKind::kAppend, {{"session", "golden"}}, "1000\n2000\n3000\n");
  add(RequestKind::kStatus, {{"session", "golden"}}, "");
  add(RequestKind::kAnalyze, {{"session", "golden"}, {"require_iid", "0"}},
      "");
  add(RequestKind::kAnalyze, {{"prob", "1e-12"}}, "1000\n2000\n3000\n4000\n");
  add(RequestKind::kIngest, {{"kernel", "k1"}},
      std::string("BIN\x00\x01\x7f\xff payload\n", 17));
  add(RequestKind::kClose, {{"session", "golden"}}, "");
  add(RequestKind::kMetrics, {}, "");
  add(RequestKind::kMetricsProm, {}, "");
  add(RequestKind::kShutdown, {}, "");
  return frames;
}

TEST(FrameReassemblerTest, EveryVerbSplitAtEveryByteBoundary) {
  // TCP hands the event loop arbitrary prefixes: every golden frame,
  // split at every byte boundary across two "wakeups", must reassemble
  // to exactly what the blocking reader parses from the whole wire.
  for (const std::string& wire : GoldenFrames()) {
    const StreamOutcome expected = BlockingOutcome(wire);
    ASSERT_EQ(expected.frames.size(), 1u);
    ASSERT_FALSE(expected.malformed);
    for (std::size_t split = 0; split <= wire.size(); ++split) {
      const StreamOutcome got = IncrementalOutcome(wire, {split});
      EXPECT_EQ(got, expected)
          << "frame " << wire.substr(0, wire.find('\n')) << " split at "
          << split;
    }
  }
}

TEST(FrameReassemblerTest, TraceTokenSurvivesEverySplitBoundary) {
  // The optional trace= token must reassemble identically no matter
  // where TCP cuts the header — including mid-token.
  Request request;
  request.kind = RequestKind::kAnalyze;
  request.args.Set("require_iid", "0");
  request.payload = "1000\n2000\n";
  request.trace.trace_id = 0x0123456789abcdefULL;
  request.trace.span_id = 0x00000000000000aaULL;
  std::string wire;
  AppendRequestFrameWithTrace(request, &wire);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameReassembler reassembler;
    reassembler.Feed(std::string_view(wire).substr(0, split));
    std::string type, body, error;
    FrameReassembler::Result result = reassembler.Next(&type, &body, &error);
    if (split < wire.size()) {
      reassembler.Feed(std::string_view(wire).substr(split));
      result = reassembler.Next(&type, &body, &error);
    }
    ASSERT_EQ(result, FrameReassembler::Result::kFrame)
        << "split " << split << ": " << error;
    EXPECT_EQ(reassembler.last_trace().trace_id, request.trace.trace_id)
        << "split " << split;
    EXPECT_EQ(reassembler.last_trace().span_id, request.trace.span_id)
        << "split " << split;
  }
  // An untraced frame following a traced one resets last_trace: contexts
  // never leak across frames on a reused connection.
  FrameReassembler reassembler;
  std::string untraced;
  AppendRequestFrame(request, &untraced);
  reassembler.Feed(wire);
  reassembler.Feed(untraced);
  std::string type, body, error;
  ASSERT_EQ(reassembler.Next(&type, &body, &error),
            FrameReassembler::Result::kFrame);
  EXPECT_TRUE(reassembler.last_trace().valid());
  ASSERT_EQ(reassembler.Next(&type, &body, &error),
            FrameReassembler::Result::kFrame);
  EXPECT_FALSE(reassembler.last_trace().valid());
}

TEST(FrameReassemblerTest, GluedStreamSplitAtEveryByteBoundary) {
  // All golden frames glued into one stream, delivered as two slices cut
  // at every boundary: same frame sequence out, regardless of the cut.
  std::string wire;
  for (const std::string& frame : GoldenFrames()) wire += frame;
  const StreamOutcome expected = BlockingOutcome(wire);
  ASSERT_EQ(expected.frames.size(), GoldenFrames().size());
  ASSERT_FALSE(expected.malformed);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    const StreamOutcome got = IncrementalOutcome(wire, {split});
    EXPECT_EQ(got, expected) << "glued stream split at " << split;
  }
}

TEST(FrameReassemblerTest, SlowLorisInterleavedConnectionsAllComplete) {
  // Sixteen connections each trickling one byte per wakeup, round-robin —
  // the slow-loris shape. Each reassembler must make independent
  // progress: every connection completes its own frame, none blocks or
  // corrupts a neighbor's stream.
  const auto goldens = GoldenFrames();
  constexpr std::size_t kConns = 16;
  std::vector<FrameReassembler> conns(kConns);
  std::vector<std::string> wires(kConns);
  std::vector<std::vector<std::string>> got(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    wires[c] = goldens[c % goldens.size()];
  }
  std::vector<std::size_t> offsets(kConns, 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < kConns; ++c) {
      if (offsets[c] >= wires[c].size()) continue;
      progress = true;
      conns[c].Feed(std::string_view(&wires[c][offsets[c]], 1));
      ++offsets[c];
      std::string type;
      std::string body;
      std::string error;
      const auto result = conns[c].Next(&type, &body, &error);
      ASSERT_NE(result, FrameReassembler::Result::kMalformed)
          << "conn " << c << ": " << error;
      if (result == FrameReassembler::Result::kFrame) {
        Request request;
        ASSERT_TRUE(BuildRequest(type, body, &request, &error)) << error;
        std::string frame;
        AppendRequestFrame(request, &frame);
        got[c].push_back(std::move(frame));
      }
    }
  }
  for (std::size_t c = 0; c < kConns; ++c) {
    ASSERT_EQ(got[c].size(), 1u) << "conn " << c;
    EXPECT_EQ(got[c][0], wires[c]) << "conn " << c;
    EXPECT_EQ(conns[c].buffered_bytes(), 0u) << "conn " << c;
  }
}

TEST(FrameReassemblerTest, HeaderCapCutsOffHeaderlessStream) {
  // The one deliberate divergence from the blocking reader: a stream that
  // never produces a newline must be cut off at max_header_bytes instead
  // of buffering forever.
  FrameReassembler::Limits limits;
  limits.max_header_bytes = 64;
  FrameReassembler reassembler(limits);
  std::string type;
  std::string body;
  std::string error;
  reassembler.Feed(std::string(63, 'a'));
  EXPECT_EQ(reassembler.Next(&type, &body, &error),
            FrameReassembler::Result::kNeedMore);
  reassembler.Feed(std::string(64, 'a'));
  EXPECT_EQ(reassembler.Next(&type, &body, &error),
            FrameReassembler::Result::kMalformed);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(reassembler.poisoned());
  // Sticky: the connection is dead even if a valid frame arrives later.
  reassembler.Feed("spta1 PING 0\n");
  EXPECT_EQ(reassembler.Next(&type, &body, &error),
            FrameReassembler::Result::kMalformed);
}

TEST(FrameReassemblerTest, FinishAppliesBlockingEofSemantics) {
  std::string type;
  std::string body;
  std::string error;
  {
    // A final zero-length-body header with no trailing newline: getline
    // treats EOF as the terminator, so Finish completes the frame.
    FrameReassembler reassembler;
    reassembler.Feed("spta1 PING 0");
    EXPECT_EQ(reassembler.Next(&type, &body, &error),
              FrameReassembler::Result::kNeedMore);
    EXPECT_EQ(reassembler.Finish(&type, &body, &error),
              FrameReassembler::Result::kFrame);
    EXPECT_EQ(type, "PING");
    EXPECT_TRUE(body.empty());
  }
  {
    // Clean EOF between frames: kNeedMore, not an error.
    FrameReassembler reassembler;
    EXPECT_EQ(reassembler.Finish(&type, &body, &error),
              FrameReassembler::Result::kNeedMore);
  }
  {
    // EOF mid-body: truncated frame, malformed — same as the blocking
    // reader's announced-N-got-fewer rejection.
    FrameReassembler reassembler;
    reassembler.Feed("spta1 APPEND 10\nabc");
    EXPECT_EQ(reassembler.Next(&type, &body, &error),
              FrameReassembler::Result::kNeedMore);
    EXPECT_EQ(reassembler.Finish(&type, &body, &error),
              FrameReassembler::Result::kMalformed);
    EXPECT_FALSE(error.empty());
  }
}

TEST(FrameReassemblerTest, SeededChunkedFuzzMatchesBlockingReader) {
  // Hostile streams (mutated golden frames, garbage, splices) delivered
  // in random chunk sizes: the incremental reader must extract the SAME
  // frames and reach the SAME accept/reject outcome as the blocking
  // reader fed the whole wire — under the sanitizer builds this is also
  // the memory-safety fuzz for the reassembly path.
  const auto goldens = GoldenFrames();
  prng::Xoshiro128pp rng(20260809);
  for (int iter = 0; iter < 1500; ++iter) {
    // Compose a stream of 1-3 golden frames...
    std::string wire;
    const std::uint32_t count = 1 + rng.UniformBelow(3);
    for (std::uint32_t i = 0; i < count; ++i) {
      wire += goldens[rng.UniformBelow(
          static_cast<std::uint32_t>(goldens.size()))];
    }
    // ...then mutate it half the time (flip/truncate/insert).
    if (rng.UniformBelow(2) == 0) {
      const std::uint32_t mutations = 1 + rng.UniformBelow(4);
      for (std::uint32_t m = 0; m < mutations && !wire.empty(); ++m) {
        switch (rng.UniformBelow(3)) {
          case 0:
            wire[rng.UniformBelow(static_cast<std::uint32_t>(wire.size()))] =
                static_cast<char>(rng.Next() & 0xff);
            break;
          case 1:
            wire.resize(rng.UniformBelow(
                static_cast<std::uint32_t>(wire.size() + 1)));
            break;
          default:
            wire.insert(
                wire.begin() + rng.UniformBelow(static_cast<std::uint32_t>(
                                   wire.size() + 1)),
                static_cast<char>(rng.Next() & 0xff));
            break;
        }
      }
    }
    // Random chunking: 1..17-byte slices simulate arbitrary wakeups.
    std::vector<std::size_t> chunks;
    std::size_t covered = 0;
    while (covered < wire.size()) {
      const std::size_t chunk = 1 + rng.UniformBelow(17);
      chunks.push_back(chunk);
      covered += chunk;
    }
    const StreamOutcome expected = BlockingOutcome(wire);
    const StreamOutcome got = IncrementalOutcome(wire, chunks);
    EXPECT_EQ(got, expected) << "iter " << iter;
  }
}

}  // namespace
}  // namespace spta::service
