// The sharded-fleet battery (ISSUE 8): service-equivalence and chaos tests
// pinning the epoll TCP event loop, digest routing, the persistent
// warm-start cache and the zero-loss drain.
//
//   * Served-vs-classic bit-identity: every verb's response through the
//     fleet (ServeScript AND the real epoll/TCP path) equals the classic
//     thread-per-connection ServeStream response byte for byte, after
//     stripping only the volatile analyze_us timing field. The fleet
//     surfaces for METRICS/METRICS_PROM are intentionally wider (fleet_*
//     aggregation) and are pinned separately.
//   * Routing determinism: same digest → same shard → same bytes, fixed
//     rehash on shard death.
//   * Chaos: kill a shard mid-campaign; every accepted request is still
//     answered (zero loss), survivors keep serving.
//   * Warm-start goldens: a restarted fleet serves bit-identical bytes
//     from the persistent cache; corrupted/truncated entry files are
//     rejected and recomputed, never served.
//   * Burst accept: the historical hard-coded listen backlog of 16 drops
//     connections under a connection storm; the (now flagged) default of
//     128 does not.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "mbpta/mbpta.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "service/client.hpp"
#include "service/frame_reader.hpp"
#include "service/persistent_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/sharded_server.hpp"

namespace spta {
namespace {

// Same synthetic-sample shape as service_test: uniform-ish jitter the EVT
// pipeline accepts.
std::vector<mbpta::PathObservation> SyntheticSample(std::size_t n,
                                                    std::uint64_t seed,
                                                    double base = 10000.0,
                                                    double spread = 500.0) {
  std::vector<mbpta::PathObservation> obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    obs[i].time =
        base + spread * (static_cast<double>(bits >> 11) * 0x1.0p-53);
    obs[i].path_id = 0;
  }
  return obs;
}

service::Request MakeRequest(service::RequestKind kind) {
  service::Request request;
  request.kind = kind;
  return request;
}

service::Request AnalyzeInlineRequest(
    const std::vector<mbpta::PathObservation>& obs,
    service::Args args = {}) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args = std::move(args);
  request.payload = service::EncodeSamplePayload(obs);
  return request;
}

std::string EncodeScript(const std::vector<service::Request>& script) {
  std::string bytes;
  for (const auto& request : script) {
    service::AppendRequestFrame(request, &bytes);
  }
  return bytes;
}

std::vector<service::Response> DecodeResponses(const std::string& bytes) {
  std::stringstream stream(bytes);
  std::vector<service::Response> responses;
  service::Response response;
  std::string error;
  while (service::ReadResponse(stream, &response, &error) ==
         service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return responses;
}

std::vector<service::Response> RunClassic(
    service::Server& server, const std::vector<service::Request>& script) {
  std::stringstream in(EncodeScript(script));
  std::stringstream out;
  server.ServeStream(in, out);
  return DecodeResponses(out.str());
}

std::vector<service::Response> RunFleetScript(
    service::ShardedServer& fleet,
    const std::vector<service::Request>& script) {
  std::string out;
  fleet.ServeScript(EncodeScript(script), &out);
  return DecodeResponses(out);
}

/// Pipelines the whole script over one real TCP connection against a
/// started fleet and reaps the ordered responses.
std::vector<service::Response> RunFleetTcp(
    service::ShardedServer& fleet,
    const std::vector<service::Request>& script) {
  std::string error;
  auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 20000.0);
  EXPECT_NE(connection, nullptr) << error;
  if (!connection) return {};
  connection->out().write(EncodeScript(script).data(),
                          static_cast<std::streamsize>(
                              EncodeScript(script).size()));
  connection->out().flush();
  std::vector<service::Response> responses;
  service::Response response;
  while (responses.size() < script.size() &&
         service::ReadResponse(connection->in(), &response, &error) ==
             service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return responses;
}

/// Strips the only legitimately volatile field (wall-clock timing) so the
/// rest of the response can be compared bit for bit.
std::string NormalizedFrame(service::Response response) {
  response.args.Erase("analyze_us");
  std::string frame;
  service::AppendResponseFrame(response, &frame);
  return frame;
}

/// The all-verb equivalence script: PING, OPEN, APPEND, STATUS, session
/// ANALYZE (miss), repeat session ANALYZE (hit), inline ANALYZE, bad verb
/// args (ERR equivalence), CLOSE, post-CLOSE STATUS (ERR), SHUTDOWN.
std::vector<service::Request> EquivalenceScript() {
  const auto sample = SyntheticSample(400, 11);
  std::vector<service::Request> script;
  script.push_back(MakeRequest(service::RequestKind::kPing));
  service::Request open = MakeRequest(service::RequestKind::kOpen);
  open.args.Set("session", "equiv");
  script.push_back(open);
  service::Request append = MakeRequest(service::RequestKind::kAppend);
  append.args.Set("session", "equiv");
  append.payload = service::EncodeSamplePayload(sample);
  script.push_back(append);
  service::Request status = MakeRequest(service::RequestKind::kStatus);
  status.args.Set("session", "equiv");
  script.push_back(status);
  service::Request analyze = MakeRequest(service::RequestKind::kAnalyze);
  analyze.args.Set("session", "equiv");
  script.push_back(analyze);
  script.push_back(analyze);  // warm repeat: cache/memo hit on both sides
  script.push_back(AnalyzeInlineRequest(SyntheticSample(300, 23)));
  service::Request bad_status = MakeRequest(service::RequestKind::kStatus);
  bad_status.args.Set("session", "never-opened");
  script.push_back(bad_status);  // ERR equivalence
  service::Request close = MakeRequest(service::RequestKind::kClose);
  close.args.Set("session", "equiv");
  script.push_back(close);
  script.push_back(status);  // ERR: session is gone
  script.push_back(MakeRequest(service::RequestKind::kShutdown));
  return script;
}

// --- Served-vs-classic bit-identity ---------------------------------------

TEST(FleetEquivalenceTest, ScriptModeMatchesClassicServerBitForBit) {
  const auto script = EquivalenceScript();
  service::Server classic;
  const auto expected = RunClassic(classic, script);
  ASSERT_EQ(expected.size(), script.size());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    service::ShardedServerOptions options;
    options.shards = shards;
    service::ShardedServer fleet(options);
    const auto got = RunFleetScript(fleet, script);
    ASSERT_EQ(got.size(), script.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < script.size(); ++i) {
      EXPECT_EQ(NormalizedFrame(got[i]), NormalizedFrame(expected[i]))
          << "shards=" << shards << " response " << i;
    }
  }
}

TEST(FleetEquivalenceTest, TcpPathMatchesClassicServerBitForBit) {
  const auto script = EquivalenceScript();
  service::Server classic;
  const auto expected = RunClassic(classic, script);
  ASSERT_EQ(expected.size(), script.size());

  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);
  const auto got = RunFleetTcp(fleet, script);
  EXPECT_EQ(fleet.Wait(), 0);
  ASSERT_EQ(got.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(NormalizedFrame(got[i]), NormalizedFrame(expected[i]))
        << "response " << i;
  }
  EXPECT_TRUE(fleet.shutdown_requested());
}

// The warm repeat must ALSO be identical in its cache disposition: both
// sides serve the second session ANALYZE as a hit, and the served pwcet
// equals the batch pipeline's bit for bit.
TEST(FleetEquivalenceTest, WarmHitMatchesBatchQuantileBitForBit) {
  const auto sample = SyntheticSample(500, 31);
  std::vector<double> times;
  for (const auto& o : sample) times.push_back(o.time);
  const auto batch = mbpta::AnalyzeSample(times, mbpta::MbptaOptions{});
  ASSERT_TRUE(batch.curve.has_value());
  const double batch_pwcet = batch.curve->QuantileForExceedance(1e-12);

  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  std::vector<service::Request> script;
  service::Request open = MakeRequest(service::RequestKind::kOpen);
  open.args.Set("session", "batch");
  script.push_back(open);
  service::Request append = MakeRequest(service::RequestKind::kAppend);
  append.args.Set("session", "batch");
  append.payload = service::EncodeSamplePayload(sample);
  script.push_back(append);
  service::Request analyze = MakeRequest(service::RequestKind::kAnalyze);
  analyze.args.Set("session", "batch");
  script.push_back(analyze);
  script.push_back(analyze);
  const auto responses = RunFleetScript(fleet, script);
  ASSERT_EQ(responses.size(), 4u);
  ASSERT_TRUE(responses[2].ok) << responses[2].payload;
  ASSERT_TRUE(responses[3].ok) << responses[3].payload;
  EXPECT_EQ(responses[2].args.GetString("cache"), "miss");
  EXPECT_EQ(responses[3].args.GetString("cache"), "hit");
  for (const std::size_t i : {std::size_t{2}, std::size_t{3}}) {
    const double served =
        std::strtod(responses[i].args.GetString("pwcet").c_str(), nullptr);
    EXPECT_EQ(served, batch_pwcet) << "response " << i;  // bit-for-bit
  }
  // The hit came from the loop-side memo (shard counters prove the path).
  std::uint64_t memo_hits = 0;
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    memo_hits += fleet.shard_memo_hits(i);
  }
  EXPECT_EQ(memo_hits, 1u);
}

// The fleet METRICS surface: classic per-server counters summed across
// shards plus the fleet_* keys, payload sectioned per shard.
TEST(FleetEquivalenceTest, FleetMetricsAggregateAcrossShards) {
  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  std::vector<service::Request> script;
  for (int i = 0; i < 6; ++i) {
    script.push_back(AnalyzeInlineRequest(SyntheticSample(300, 100 + i)));
  }
  script.push_back(MakeRequest(service::RequestKind::kMetrics));
  script.push_back(MakeRequest(service::RequestKind::kMetricsProm));
  const auto responses = RunFleetScript(fleet, script);
  ASSERT_EQ(responses.size(), script.size());
  const auto& metrics = responses[6];
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.args.GetUint("fleet_shards", 0), 2u);
  EXPECT_EQ(metrics.args.GetUint("fleet_alive", 0), 2u);
  EXPECT_EQ(metrics.args.GetUint("requests_total", 0), 6u);
  EXPECT_EQ(metrics.args.GetUint("analyses_total", 0), 6u);
  EXPECT_NE(metrics.payload.find("== shard 0 =="), std::string::npos);
  EXPECT_NE(metrics.payload.find("== shard 1 =="), std::string::npos);
  const auto& prom = responses[7];
  ASSERT_TRUE(prom.ok);
  EXPECT_EQ(prom.args.GetString("format"), "prometheus-0.0.4");
  EXPECT_NE(prom.payload.find("spta_fleet_shards 2"), std::string::npos);
  EXPECT_NE(prom.payload.find("spta_fleet_routed_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.payload.find("spta_fleet_shard_alive{shard=\"1\"} 1"),
            std::string::npos);
}

// --- Routing determinism --------------------------------------------------

TEST(FleetRoutingTest, SameDigestSameShardSameBytes) {
  service::ShardedServerOptions options;
  options.shards = 4;
  service::ShardedServer fleet(options);

  const auto request = AnalyzeInlineRequest(SyntheticSample(300, 5));
  std::string body;
  {
    std::string frame;
    service::AppendRequestFrame(request, &frame);
    // Body = everything after the header line.
    body = frame.substr(frame.find('\n') + 1);
  }
  const std::uint64_t route =
      service::ShardedServer::RouteDigest(request, body);
  const std::size_t expected_shard = fleet.ShardFor(route);
  ASSERT_LT(expected_shard, fleet.shard_count());
  // ShardFor is pure: the same digest maps to the same shard every time.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fleet.ShardFor(route), expected_shard);
  }

  // Serve the identical request repeatedly: every execution lands on that
  // one shard and every response is byte-identical (the first run is the
  // cache miss, later ones the cached hit — content must not differ
  // beyond that disposition flag).
  std::vector<std::string> frames;
  for (int i = 0; i < 4; ++i) {
    auto responses = RunFleetScript(fleet, {request});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].args.GetString("cache"), i == 0 ? "miss" : "hit");
    responses[0].args.Erase("cache");
    frames.push_back(NormalizedFrame(responses[0]));
  }
  for (const auto& frame : frames) EXPECT_EQ(frame, frames[0]);
  EXPECT_EQ(fleet.shard_routed_total(expected_shard), 4u);
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    if (i != expected_shard) {
      EXPECT_EQ(fleet.shard_routed_total(i), 0u);
    }
  }
}

TEST(FleetRoutingTest, SessionsStickToOneShardAndSpreadAcrossFleet) {
  service::ShardedServerOptions options;
  options.shards = 3;
  service::ShardedServer fleet(options);
  const auto sample = SyntheticSample(300, 9);
  // 12 sessions: each one's whole life must execute on one shard, and
  // with this many distinct names every shard must see traffic.
  for (int s = 0; s < 12; ++s) {
    const std::string name = "route-" + std::to_string(s);
    std::vector<service::Request> script;
    service::Request open = MakeRequest(service::RequestKind::kOpen);
    open.args.Set("session", name);
    script.push_back(open);
    service::Request append = MakeRequest(service::RequestKind::kAppend);
    append.args.Set("session", name);
    append.payload = service::EncodeSamplePayload(sample);
    script.push_back(append);
    service::Request close = MakeRequest(service::RequestKind::kClose);
    close.args.Set("session", name);
    script.push_back(close);
    const std::size_t shard = fleet.ShardFor(HashBytes(name).lo);
    const std::uint64_t before = fleet.shard_routed_total(shard);
    const auto responses = RunFleetScript(fleet, script);
    ASSERT_EQ(responses.size(), 3u);
    for (const auto& r : responses) EXPECT_TRUE(r.ok) << r.payload;
    EXPECT_EQ(fleet.shard_routed_total(shard), before + 3)
        << "session " << name << " leaked off shard " << shard;
  }
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    EXPECT_GT(fleet.shard_routed_total(i), 0u) << "shard " << i << " idle";
  }
}

TEST(FleetRoutingTest, DeadShardRehashIsDeterministicOverSurvivors) {
  service::ShardedServerOptions options;
  options.shards = 4;
  service::ShardedServer fleet(options);
  const std::uint64_t route = HashBytes(std::string("victim-key")).lo;
  const std::size_t primary = fleet.ShardFor(route);
  fleet.KillShardForTest(primary);
  const std::size_t fallback = fleet.ShardFor(route);
  ASSERT_NE(fallback, primary);
  ASSERT_LT(fallback, fleet.shard_count());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(fleet.ShardFor(route), fallback);
  // Kill everything: no shard can be chosen.
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    fleet.KillShardForTest(i);
  }
  EXPECT_EQ(fleet.ShardFor(route), SIZE_MAX);
}

// --- Chaos: shard death mid-campaign --------------------------------------

// Pipelines a campaign over TCP, kills a shard while requests are in
// flight, and verifies ZERO accepted-request loss: every frame written
// gets exactly one response (OK from a survivor or ERR unavailable), in
// order, and the drain still acks.
TEST(FleetChaosTest, KillShardMidCampaignLosesNothing) {
  service::ShardedServerOptions options;
  options.shards = 3;
  options.server.enable_debug_hooks = true;  // debug_sleep_ms
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);

  std::string error;
  auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 30000.0);
  ASSERT_NE(connection, nullptr) << error;

  // 30 distinct slow analyses (debug_sleep_ms keeps shards busy so the
  // kill lands mid-campaign), pipelined without reading.
  std::vector<service::Request> script;
  for (int i = 0; i < 30; ++i) {
    service::Args slow;
    slow.SetDouble("debug_sleep_ms", 5.0);
    script.push_back(
        AnalyzeInlineRequest(SyntheticSample(260, 1000 + i), slow));
  }
  script.push_back(MakeRequest(service::RequestKind::kShutdown));
  const std::string bytes = EncodeScript(script);
  connection->out().write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size()));
  connection->out().flush();

  // Kill a shard while the campaign is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fleet.KillShardForTest(1);

  std::vector<service::Response> responses;
  service::Response response;
  while (responses.size() < script.size() &&
         service::ReadResponse(connection->in(), &response, &error) ==
             service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  EXPECT_EQ(fleet.Wait(), 0);

  // Zero loss: every request (including SHUTDOWN) got its response.
  ASSERT_EQ(responses.size(), script.size());
  int ok_count = 0;
  int unavailable = 0;
  for (std::size_t i = 0; i + 1 < responses.size(); ++i) {
    if (responses[i].ok) {
      ++ok_count;
      EXPECT_TRUE(responses[i].args.Has("pwcet")) << i;
    } else {
      EXPECT_EQ(responses[i].args.GetString("code"), "unavailable") << i;
      ++unavailable;
    }
  }
  EXPECT_EQ(ok_count + unavailable, 30);
  EXPECT_GT(ok_count, 0);  // survivors kept serving
  const auto& ack = responses.back();
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.args.GetUint("drained", 0), 1u);
  EXPECT_FALSE(fleet.shard_alive(1));
}

// After a kill, NEW traffic for the dead shard's digests is answered by
// the deterministic fallback shard — the fleet stays fully available.
TEST(FleetChaosTest, SurvivorsServeDeadShardsTraffic) {
  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  const auto request = AnalyzeInlineRequest(SyntheticSample(280, 77));
  std::string frame;
  service::AppendRequestFrame(request, &frame);
  const std::string body = frame.substr(frame.find('\n') + 1);
  const std::size_t primary =
      fleet.ShardFor(service::ShardedServer::RouteDigest(request, body));
  fleet.KillShardForTest(primary);
  const auto responses = RunFleetScript(fleet, {request});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok) << responses[0].payload;
  EXPECT_TRUE(responses[0].args.Has("pwcet"));
  EXPECT_EQ(fleet.shard_routed_total(1 - primary), 1u);
}

// --- Persistent warm-start cache ------------------------------------------

class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/spta_fleet_cache_XXXXXX";
    dir_ = ::mkdtemp(templ);
  }
  ~TempDir() {
    if (dir_.empty()) return;
    // Best-effort cleanup of entry files then the directory.
    const std::string cmd = "rm -rf '" + dir_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

TEST(FleetWarmStartTest, RestartServesIdenticalBytesFromDisk) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  const auto request = AnalyzeInlineRequest(SyntheticSample(350, 41));

  std::string cold_frame;
  {
    service::ShardedServerOptions options;
    options.shards = 2;
    options.server.cache_dir = dir.path();
    service::ShardedServer fleet(options);
    const auto responses = RunFleetScript(fleet, {request});
    ASSERT_EQ(responses.size(), 1u);
    ASSERT_TRUE(responses[0].ok) << responses[0].payload;
    EXPECT_EQ(responses[0].args.GetString("cache"), "miss");
    cold_frame = NormalizedFrame(responses[0]);
    ASSERT_NE(fleet.persistent_cache(), nullptr);
    EXPECT_EQ(fleet.persistent_cache()->stats().stored, 1u);
  }

  // "Restart": a brand-new fleet over the same directory must serve the
  // same request as a cache HIT with byte-identical content.
  service::ShardedServerOptions options;
  options.shards = 2;
  options.server.cache_dir = dir.path();
  service::ShardedServer fleet(options);
  ASSERT_NE(fleet.persistent_cache(), nullptr);
  EXPECT_EQ(fleet.persistent_cache()->stats().loaded, 1u);
  EXPECT_EQ(fleet.persistent_cache()->stats().rejected, 0u);
  const auto responses = RunFleetScript(fleet, {request});
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].ok) << responses[0].payload;
  EXPECT_EQ(responses[0].args.GetString("cache"), "hit");
  // Identical bytes modulo the cache disposition + timing fields.
  service::Response cold;
  {
    std::stringstream stream(cold_frame);
    std::string error;
    ASSERT_EQ(service::ReadResponse(stream, &cold, &error),
              service::ReadStatus::kOk);
  }
  service::Response warm = responses[0];
  cold.args.Erase("cache");
  warm.args.Erase("cache");
  EXPECT_EQ(NormalizedFrame(warm), NormalizedFrame(cold));
}

TEST(FleetWarmStartTest, CorruptedEntriesRejectedAndRecomputedNeverServed) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  const auto request = AnalyzeInlineRequest(SyntheticSample(320, 43));
  std::string genuine_frame;
  std::string entry_path;
  {
    service::ShardedServerOptions options;
    options.server.cache_dir = dir.path();
    service::ShardedServer fleet(options);
    const auto responses = RunFleetScript(fleet, {request});
    ASSERT_EQ(responses.size(), 1u);
    ASSERT_TRUE(responses[0].ok);
    genuine_frame = NormalizedFrame(responses[0]);
  }

  // Corrupt the stored entry four different ways; each must be rejected
  // at load, recomputed on request, and the poisoned bytes never served.
  struct Corruption {
    const char* name;
    void (*mutate)(std::string*);
  } corruptions[] = {
      {"body-flip", [](std::string* c) { (*c)[c->size() - 3] ^= 0x40; }},
      {"truncated", [](std::string* c) { c->resize(c->size() / 2); }},
      {"padded", [](std::string* c) { c->append("extra"); }},
      {"garbage", [](std::string* c) { c->assign("sptacX nonsense\n"); }},
  };
  // Locate the single entry file.
  std::string entry_name;
  {
    service::PersistentResultCache probe(dir.path());
    probe.LoadAll([&](std::uint64_t key, std::uint64_t, std::string) {
      entry_name = service::PersistentResultCache::EntryFileName(key);
    });
  }
  ASSERT_FALSE(entry_name.empty());
  entry_path = dir.path() + "/" + entry_name;
  std::string pristine;
  {
    std::ifstream in(entry_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  ASSERT_FALSE(pristine.empty());

  for (const auto& corruption : corruptions) {
    std::string damaged = pristine;
    corruption.mutate(&damaged);
    {
      std::ofstream out(entry_path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(),
                static_cast<std::streamsize>(damaged.size()));
    }
    service::ShardedServerOptions options;
    options.server.cache_dir = dir.path();
    service::ShardedServer fleet(options);
    ASSERT_NE(fleet.persistent_cache(), nullptr);
    EXPECT_EQ(fleet.persistent_cache()->stats().loaded, 0u)
        << corruption.name;
    EXPECT_EQ(fleet.persistent_cache()->stats().rejected, 1u)
        << corruption.name;
    const auto responses = RunFleetScript(fleet, {request});
    ASSERT_EQ(responses.size(), 1u) << corruption.name;
    ASSERT_TRUE(responses[0].ok) << corruption.name;
    // Recomputed (the rejected entry never warms the cache) and correct.
    EXPECT_EQ(responses[0].args.GetString("cache"), "miss")
        << corruption.name;
    EXPECT_EQ(NormalizedFrame(responses[0]), genuine_frame)
        << corruption.name;
  }
}

TEST(FleetWarmStartTest, EntryEncodingRoundTripsAndChecksums) {
  const std::string body = "usable=1 pwcet=123.5\nreport text\n";
  const std::string encoded =
      service::PersistentResultCache::EncodeEntry(7, 11, body);
  std::uint64_t key = 0;
  std::uint64_t verifier = 0;
  std::string decoded;
  ASSERT_TRUE(service::PersistentResultCache::DecodeEntry(
      encoded, &key, &verifier, &decoded));
  EXPECT_EQ(key, 7u);
  EXPECT_EQ(verifier, 11u);
  EXPECT_EQ(decoded, body);
  // Any single-byte flip in the body must be caught by the digest.
  std::string flipped = encoded;
  flipped[flipped.size() - 2] ^= 1;
  EXPECT_FALSE(service::PersistentResultCache::DecodeEntry(
      flipped, &key, &verifier, &decoded));
}

// --- Burst accept (the backlog-16 regression) -----------------------------

// Fires `kStorm` non-blocking connects at a listener whose accept loop is
// NOT running, so completion depends purely on the kernel accept queue:
// the historical hard-coded backlog of 16 strands most of the storm in
// SYN_SENT, the flagged default of 128 completes every one.
std::size_t CompletedConnects(std::uint16_t port, int storm_size) {
  std::vector<int> fds;
  std::vector<pollfd> polls;
  for (int i = 0; i < storm_size; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    fds.push_back(fd);
    polls.push_back({fd, POLLOUT, 0});
  }
  // Give the kernel a beat; completed handshakes report writable with no
  // pending error.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::poll(polls.data(), polls.size(), 0);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((polls[i].revents & POLLOUT) != 0) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      ::getsockopt(fds[i], SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr == 0) ++completed;
    }
    ::close(fds[i]);
  }
  return completed;
}

TEST(FleetBurstAcceptTest, DefaultBacklogSurvivesConnectionStorm) {
  constexpr int kStorm = 64;
  service::ShardedServerOptions options;
  options.listen_backlog = 128;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  // Deliberately NOT started: nothing accepts, the queue takes the hit.
  EXPECT_EQ(CompletedConnects(fleet.bound_port(), kStorm),
            static_cast<std::size_t>(kStorm));
}

TEST(FleetBurstAcceptTest, HistoricalBacklog16DropsStormConnections) {
  constexpr int kStorm = 64;
  service::ShardedServerOptions options;
  options.listen_backlog = 16;  // the old hard-coded value
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  const std::size_t completed =
      CompletedConnects(fleet.bound_port(), kStorm);
  // The kernel queues ~backlog+1 handshakes; the rest of the storm is
  // left stranded. Leave slack for kernel rounding, but the loss must be
  // unambiguous — this is the regression that motivated the flag.
  EXPECT_LT(completed, static_cast<std::size_t>(kStorm));
  EXPECT_LE(completed, 32u);
}

// The flag reaches the classic server too (it was server.cpp's listen()
// call that was hard-coded).
TEST(FleetBurstAcceptTest, ServerOptionsCarryTheBacklogFlag) {
  service::ServerOptions options;
  EXPECT_EQ(options.listen_backlog, 128);  // new default, not 16
  options.listen_backlog = 7;
  service::Server server(options);
  EXPECT_EQ(server.options().listen_backlog, 7);
}

// --- HEALTH (fleet liveness/readiness) ------------------------------------

TEST(FleetHealthTest, ScriptHealthReportsFleetAndEveryShard) {
  service::ShardedServerOptions options;
  options.shards = 3;
  service::ShardedServer fleet(options);
  const auto responses =
      RunFleetScript(fleet, {MakeRequest(service::RequestKind::kHealth)});
  ASSERT_EQ(responses.size(), 1u);
  const auto& health = responses[0];
  ASSERT_TRUE(health.ok) << health.payload;
  EXPECT_EQ(health.args.GetString("status"), "ok");
  EXPECT_EQ(health.args.GetString("role"), "fleet");
  EXPECT_EQ(health.args.GetUint("fleet_shards", 0), 3u);
  EXPECT_EQ(health.args.GetUint("fleet_alive", 0), 3u);
  EXPECT_EQ(health.args.GetUint("fleet_breaker_open", 99), 0u);
  EXPECT_EQ(health.args.GetUint("fleet_stalled", 99), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(
        health.payload.find("== shard " + std::to_string(i) + " =="),
        std::string::npos)
        << health.payload;
  }
  EXPECT_NE(health.payload.find("alive=1 breaker=closed"),
            std::string::npos)
      << health.payload;
}

TEST(FleetHealthTest, TcpHealthAnsweredOnEventLoop) {
  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);
  const auto responses =
      RunFleetTcp(fleet, {MakeRequest(service::RequestKind::kHealth),
                          MakeRequest(service::RequestKind::kShutdown)});
  EXPECT_EQ(fleet.Wait(), 0);
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok) << responses[0].payload;
  EXPECT_EQ(responses[0].args.GetString("role"), "fleet");
  EXPECT_EQ(responses[0].args.GetString("status"), "ok");
}

// The readiness golden of the whole watchdog story: a shard that HAS work
// and is making NO progress reports stalled=1 and degrades fleet HEALTH —
// while the event loop keeps answering (liveness and readiness split).
TEST(FleetHealthTest, WedgedShardReportsDegradedAndStalled) {
  service::ShardedServerOptions options;
  options.shards = 1;
  options.server.enable_debug_hooks = true;
  options.health_stall_after_ms = 50.0;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);

  // Wedge the only shard: one long ANALYZE executing, one queued behind.
  std::string error;
  auto busy = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 30000.0);
  ASSERT_NE(busy, nullptr) << error;
  service::Args slow;
  slow.SetDouble("debug_sleep_ms", 600.0);
  std::vector<service::Request> wedge;
  wedge.push_back(AnalyzeInlineRequest(SyntheticSample(260, 601), slow));
  wedge.push_back(AnalyzeInlineRequest(SyntheticSample(260, 602)));
  const std::string bytes = EncodeScript(wedge);
  busy->out().write(bytes.data(),
                    static_cast<std::streamsize>(bytes.size()));
  busy->out().flush();

  // Past the stall threshold (no completion yet), probe on a SECOND
  // connection: the loop must answer even though the shard is buried.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto probe = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 30000.0);
  ASSERT_NE(probe, nullptr) << error;
  service::Client prober(probe->in(), probe->out());
  const auto health = prober.Health();
  ASSERT_TRUE(health.ok) << health.payload;
  EXPECT_EQ(health.args.GetString("status"), "degraded");
  EXPECT_EQ(health.args.GetUint("fleet_stalled", 0), 1u);
  EXPECT_NE(health.payload.find("stalled=1"), std::string::npos)
      << health.payload;

  // Reap the wedged work, then verify readiness recovers.
  service::Response response;
  for (std::size_t i = 0; i < wedge.size(); ++i) {
    ASSERT_EQ(service::ReadResponse(busy->in(), &response, &error),
              service::ReadStatus::kOk);
    EXPECT_TRUE(response.ok) << response.payload;
  }
  const auto recovered = prober.Health();
  ASSERT_TRUE(recovered.ok) << recovered.payload;
  EXPECT_EQ(recovered.args.GetString("status"), "ok");
  EXPECT_TRUE(prober.Shutdown().ok);
  EXPECT_EQ(fleet.Wait(), 0);
}

// --- Admission control (deadline-aware load shedding) ---------------------

TEST(FleetAdmissionTest, UnmeetableDeadlineIsShedWithRetryHint) {
  service::ShardedServerOptions options;
  options.shards = 1;
  options.server.enable_debug_hooks = true;
  service::ShardedServer fleet(options);

  // Feed the cost model: one ~30ms analysis teaches the shard's EWMA.
  service::Args slow;
  slow.SetDouble("debug_sleep_ms", 30.0);
  auto teach = RunFleetScript(
      fleet, {AnalyzeInlineRequest(SyntheticSample(260, 701), slow)});
  ASSERT_EQ(teach.size(), 1u);
  ASSERT_TRUE(teach[0].ok) << teach[0].payload;

  // A 1ms deadline cannot be met when the estimated cost is ~30ms: the
  // request must be SHED at admission (ERR busy + retry_after_ms), not
  // executed into a doomed ERR deadline.
  service::Args tight;
  tight.SetDouble("deadline_ms", 1.0);
  const auto shed = RunFleetScript(
      fleet, {AnalyzeInlineRequest(SyntheticSample(260, 702), tight)});
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_FALSE(shed[0].ok);
  EXPECT_EQ(shed[0].args.GetString("code"), "busy");
  EXPECT_EQ(shed[0].args.GetString("shed"), "deadline");
  EXPECT_GE(shed[0].args.GetUint("retry_after_ms", 0), 1u);
  EXPECT_EQ(fleet.shed_deadline_total(), 1u);

  // Shed requests are back-pressure, not failures: the ANALYZE failure
  // counters must not move (the teach request is the only ANALYZE seen).
  const auto metrics =
      RunFleetScript(fleet, {MakeRequest(service::RequestKind::kMetrics)});
  ASSERT_EQ(metrics.size(), 1u);
  ASSERT_TRUE(metrics[0].ok);
  EXPECT_EQ(metrics[0].args.GetUint("fleet_shed_deadline", 0), 1u);
  EXPECT_EQ(metrics[0].args.GetUint("errors_total", 99), 0u);
  EXPECT_EQ(metrics[0].args.GetUint("deadline_misses", 99), 0u);
}

TEST(FleetAdmissionTest, NoCostModelMeansAdmit) {
  // With no completed work the EWMA is empty — the fleet must admit (and
  // learn), never guess-shed.
  service::ShardedServerOptions options;
  options.shards = 1;
  options.server.enable_debug_hooks = true;
  service::ShardedServer fleet(options);
  service::Args tight;
  tight.SetDouble("deadline_ms", 10000.0);
  const auto responses = RunFleetScript(
      fleet, {AnalyzeInlineRequest(SyntheticSample(260, 703), tight)});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok) << responses[0].payload;
  EXPECT_EQ(fleet.shed_deadline_total(), 0u);
}

// --- Circuit breakers ------------------------------------------------------

TEST(FleetBreakerTest, OpensOnConsecutiveDeadlineFailuresThenRecovers) {
  service::ShardedServerOptions options;
  options.shards = 1;
  options.server.enable_debug_hooks = true;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 500.0;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);

  std::string error;
  auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 30000.0);
  ASSERT_NE(connection, nullptr) << error;

  // One slow request, two doomed ones queued behind it: their 1ms
  // deadlines expire in the queue, so the shard returns ERR deadline
  // twice in a row — that is the breaker's failure signal.
  service::Args slow;
  slow.SetDouble("debug_sleep_ms", 100.0);
  service::Args doomed;
  doomed.SetDouble("deadline_ms", 1.0);
  std::vector<service::Request> script;
  script.push_back(AnalyzeInlineRequest(SyntheticSample(260, 801), slow));
  script.push_back(AnalyzeInlineRequest(SyntheticSample(260, 802), doomed));
  script.push_back(AnalyzeInlineRequest(SyntheticSample(260, 803), doomed));
  const std::string bytes = EncodeScript(script);
  connection->out().write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size()));
  connection->out().flush();
  service::Response response;
  ASSERT_EQ(service::ReadResponse(connection->in(), &response, &error),
            service::ReadStatus::kOk);
  EXPECT_TRUE(response.ok) << response.payload;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(service::ReadResponse(connection->in(), &response, &error),
              service::ReadStatus::kOk);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.args.GetString("code"), "deadline") << i;
  }
  EXPECT_EQ(fleet.shard_breaker_state(0), 1);  // open
  EXPECT_EQ(fleet.breaker_opens_total(), 1u);

  // While open (cooldown not elapsed), the only shard is unroutable:
  // fail-fast ERR unavailable, no queueing behind a sick shard.
  std::vector<service::Request> rejected;
  rejected.push_back(AnalyzeInlineRequest(SyntheticSample(260, 804)));
  const std::string rejected_bytes = EncodeScript(rejected);
  connection->out().write(
      rejected_bytes.data(),
      static_cast<std::streamsize>(rejected_bytes.size()));
  connection->out().flush();
  ASSERT_EQ(service::ReadResponse(connection->in(), &response, &error),
            service::ReadStatus::kOk);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.args.GetString("code"), "unavailable");

  // After the cooldown, the next request is the half-open probe; its
  // success must close the breaker and readmit the shard.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::vector<service::Request> probe;
  probe.push_back(AnalyzeInlineRequest(SyntheticSample(260, 805)));
  probe.push_back(MakeRequest(service::RequestKind::kShutdown));
  const std::string probe_bytes = EncodeScript(probe);
  connection->out().write(
      probe_bytes.data(),
      static_cast<std::streamsize>(probe_bytes.size()));
  connection->out().flush();
  ASSERT_EQ(service::ReadResponse(connection->in(), &response, &error),
            service::ReadStatus::kOk);
  EXPECT_TRUE(response.ok) << response.payload;
  ASSERT_EQ(service::ReadResponse(connection->in(), &response, &error),
            service::ReadStatus::kOk);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(fleet.Wait(), 0);
  EXPECT_EQ(fleet.shard_breaker_state(0), 0);  // closed again
  EXPECT_EQ(fleet.breaker_opens_total(), 1u);
}

TEST(FleetBreakerTest, ClientErrorsNeverOpenTheBreaker) {
  service::ShardedServerOptions options;
  options.shards = 1;
  options.breaker_failure_threshold = 2;
  service::ShardedServer fleet(options);
  // A storm of client-caused errors (unknown session): shard health is
  // fine, the breaker must stay closed.
  std::vector<service::Request> script;
  for (int i = 0; i < 10; ++i) {
    service::Request status = MakeRequest(service::RequestKind::kStatus);
    status.args.Set("session", "no-such-session");
    script.push_back(status);
  }
  const auto responses = RunFleetScript(fleet, script);
  ASSERT_EQ(responses.size(), script.size());
  for (const auto& response : responses) EXPECT_FALSE(response.ok);
  EXPECT_EQ(fleet.shard_breaker_state(0), 0);
  EXPECT_EQ(fleet.breaker_opens_total(), 0u);
}

// --- Bounded persistent cache ---------------------------------------------

TEST(PersistentCacheBoundsTest, MaxBytesEvictsOldestEntriesByUnlink) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string body(100, 'x');
  const std::uint64_t entry_bytes =
      service::PersistentResultCache::EncodeEntry(1, 1, body).size();
  service::PersistentResultCache::Limits limits;
  limits.max_bytes = 2 * entry_bytes;  // room for exactly two entries
  service::PersistentResultCache cache(dir.path(), limits);
  EXPECT_TRUE(cache.Put(1, 11, body));
  EXPECT_TRUE(cache.Put(2, 22, body));
  EXPECT_TRUE(cache.Put(3, 33, body));  // evicts key 1 (oldest write)
  const auto stats = cache.stats();
  EXPECT_EQ(stats.stored, 3u);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.evicted_bytes, entry_bytes);
  EXPECT_EQ(stats.degraded, 0u);
  struct stat st{};
  const std::string oldest =
      dir.path() + "/" + service::PersistentResultCache::EntryFileName(1);
  EXPECT_NE(::stat(oldest.c_str(), &st), 0);  // unlinked
  const std::string newest =
      dir.path() + "/" + service::PersistentResultCache::EntryFileName(3);
  EXPECT_EQ(::stat(newest.c_str(), &st), 0);  // still there
}

TEST(PersistentCacheBoundsTest, SimulatedEnospcDegradesToMemoryOnly) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string body(100, 'y');
  const std::uint64_t entry_bytes =
      service::PersistentResultCache::EncodeEntry(1, 1, body).size();
  service::PersistentResultCache::Limits limits;
  limits.quota_bytes = entry_bytes;  // device fits exactly one entry
  service::PersistentResultCache cache(dir.path(), limits);
  EXPECT_TRUE(cache.Put(1, 11, body));
  // Second entry: quota exceeded → evict-one-retry frees entry 1 and the
  // write lands. The device is full but the cache self-heals by LRU.
  EXPECT_TRUE(cache.Put(2, 22, body));
  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_FALSE(cache.degraded());
  // An entry LARGER than the whole device cannot be made to fit: typed
  // ENOSPC failure, sticky memory-only degrade, no abort, no corruption.
  const std::string huge(3 * body.size(), 'z');
  EXPECT_FALSE(cache.Put(3, 33, huge));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.enospc_failures, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_TRUE(cache.degraded());
  // Degraded is sticky: later writes fail fast without touching disk.
  EXPECT_FALSE(cache.Put(4, 44, body));
  EXPECT_EQ(cache.stats().enospc_failures, 1u);  // no second syscall storm
}

TEST(PersistentCacheBoundsTest, LoadAllSkipsOversizedEntriesUnread) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  service::PersistentResultCache writer(dir.path());
  EXPECT_TRUE(writer.Put(1, 11, "small"));
  EXPECT_TRUE(writer.Put(2, 22, std::string(4096, 'b')));  // over the cap
  service::PersistentResultCache::Limits limits;
  limits.load_max_entry_bytes = 1024;
  service::PersistentResultCache reader(dir.path(), limits);
  std::size_t fed = 0;
  reader.LoadAll([&](std::uint64_t, std::uint64_t, std::string) { ++fed; });
  EXPECT_EQ(fed, 1u);
  const auto stats = reader.stats();
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.load_skipped_oversize, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(PersistentCacheBoundsTest, LoadAllCapsEntryCountOnHugeDirs) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  service::PersistentResultCache writer(dir.path());
  constexpr std::uint64_t kEntries = 3000;
  for (std::uint64_t key = 0; key < kEntries; ++key) {
    ASSERT_TRUE(writer.Put(key, key, "e"));
  }
  service::PersistentResultCache::Limits limits;
  limits.load_max_entries = 1000;
  service::PersistentResultCache reader(dir.path(), limits);
  std::size_t fed = 0;
  reader.LoadAll([&](std::uint64_t, std::uint64_t, std::string) { ++fed; });
  EXPECT_EQ(fed, 1000u);
  const auto stats = reader.stats();
  EXPECT_EQ(stats.loaded, 1000u);
  EXPECT_EQ(stats.load_skipped_overflow, kEntries - 1000);
  // Deterministic which entries survive: the cap applies in sorted
  // filename order, so a second load feeds the identical subset.
  std::vector<std::uint64_t> first_keys;
  service::PersistentResultCache reader2(dir.path(), limits);
  reader2.LoadAll([&](std::uint64_t key, std::uint64_t, std::string) {
    first_keys.push_back(key);
  });
  EXPECT_EQ(first_keys.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(first_keys.begin(), first_keys.end()));
}

// --- Distributed tracing: one connected span tree per request campaign ----

struct SpanRecord {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

/// Pulls every traced span (one event per line in the Chrome export) with
/// its name and the three propagation ids.
std::vector<SpanRecord> ParseTracedSpans(const std::string& chrome_json) {
  const auto hex_field = [](const std::string& line,
                            const char* key) -> std::uint64_t {
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return 0;
    return std::strtoull(line.c_str() + at + needle.size(), nullptr, 16);
  };
  std::vector<SpanRecord> spans;
  std::istringstream in(chrome_json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"trace_id\":\"") == std::string::npos) continue;
    const std::size_t name_at = line.find("\"name\":\"");
    if (name_at == std::string::npos) continue;
    const std::size_t begin = name_at + 8;
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos) continue;
    SpanRecord span;
    span.name = line.substr(begin, end - begin);
    span.trace_id = hex_field(line, "trace_id");
    span.span_id = hex_field(line, "span_id");
    span.parent_id = hex_field(line, "parent_span_id");
    spans.push_back(std::move(span));
  }
  return spans;
}

/// The tracer is process-wide; scope it to one test so the rest of the
/// battery keeps running (and asserting) untraced behavior.
class ScopedTracer {
 public:
  ScopedTracer() {
    obs::Tracer::Instance().Clear();
    obs::Tracer::Instance().Enable();
  }
  ~ScopedTracer() {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
};

// The end-to-end tracing golden: every verb of a campaign sent under one
// client-side span must surface in the export as a single connected tree —
// client root → fleet route → shard queue_wait/verb → engine internals —
// all sharing the client's trace id, every parent chain terminating at the
// client span. This is the in-process twin of the spta_client → spta_fleet
// smoke (client.cpp stamps the thread context on each outgoing frame; the
// loop and shard re-install it on their side of the wire).
TEST(FleetTracingTest, EveryVerbJoinsOneConnectedTreeRootedAtTheClient) {
  ScopedTracer tracing;
  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  ASSERT_EQ(fleet.ListenTcp("127.0.0.1", 0), 0);
  ASSERT_EQ(fleet.Start(), 0);

  std::string error;
  auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 30000.0);
  ASSERT_NE(connection, nullptr) << error;
  service::Client client(connection->in(), connection->out());

  const obs::TraceContext wire = obs::MintTraceContext();
  std::size_t requests_sent = 0;
  {
    obs::ScopedTraceContext install(wire);
    obs::ScopedSpan campaign("client", "campaign");
    const auto sample = SyntheticSample(320, 57);
    EXPECT_TRUE(client.Ping().ok);
    EXPECT_TRUE(client.Open("traced").ok);
    EXPECT_TRUE(client.Append("traced", sample).ok);
    EXPECT_TRUE(client.Status("traced").ok);
    EXPECT_TRUE(client.AnalyzeSession("traced").ok);
    EXPECT_TRUE(client.Close("traced").ok);
    EXPECT_TRUE(client.Health().ok);
    EXPECT_TRUE(client.Metrics().ok);
    // The TRACE verb itself rides the same distributed trace; its payload
    // is the fleet's live export and must already carry this trace id.
    const auto served = client.Trace();
    ASSERT_TRUE(served.ok) << served.payload;
    EXPECT_EQ(served.args.GetString("format"), "chrome-trace");
    EXPECT_EQ(served.args.GetUint("enabled", 0), 1u);
    bool served_carries_trace = false;
    for (const auto& span : ParseTracedSpans(served.payload)) {
      if (span.trace_id == wire.trace_id) served_carries_trace = true;
    }
    EXPECT_TRUE(served_carries_trace);
    EXPECT_TRUE(client.Shutdown().ok);
    requests_sent = 10;
  }
  EXPECT_EQ(fleet.Wait(), 0);

  std::ostringstream exported;
  ASSERT_TRUE(obs::Tracer::Instance().WriteChromeTrace(exported));
  const auto spans = ParseTracedSpans(exported.str());
  ASSERT_FALSE(spans.empty());

  // One trace id everywhere, ids minted for every span.
  std::map<std::uint64_t, std::uint64_t> parent_of;
  std::uint64_t root_span = 0;
  std::size_t roots = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, wire.trace_id) << span.name;
    EXPECT_NE(span.span_id, 0u) << span.name;
    parent_of[span.span_id] = span.parent_id;
    if (span.parent_id == 0) {
      ++roots;
      root_span = span.span_id;
      EXPECT_EQ(span.name, "campaign");
    }
  }
  // Exactly one root: the client-side campaign span.
  EXPECT_EQ(roots, 1u);

  // Connectivity: every span's parent chain reaches the client root with
  // no dangling parent ids (a broken chain means a hop dropped the
  // context when crossing loop → queue → shard worker).
  for (const auto& span : spans) {
    std::uint64_t cursor = span.span_id;
    std::size_t hops = 0;
    while (cursor != root_span && hops < 64) {
      const auto parent = parent_of.find(cursor);
      ASSERT_NE(parent, parent_of.end())
          << span.name << ": chain breaks at " << std::hex << cursor;
      cursor = parent->second;
      ++hops;
    }
    EXPECT_EQ(cursor, root_span) << span.name;
  }

  // Per-verb coverage: the loop routes every request; the shard executes
  // the session verbs; ANALYZE descends into the engine.
  std::map<std::string, std::size_t> by_name;
  for (const auto& span : spans) ++by_name[span.name];
  EXPECT_EQ(by_name["route"], requests_sent);
  EXPECT_GE(by_name["queue_wait"], 1u);
  for (const char* verb :
       {"PING", "OPEN", "APPEND", "STATUS", "ANALYZE", "CLOSE"}) {
    EXPECT_GE(by_name[verb], 1u) << verb;
  }
  EXPECT_GE(by_name["analyze"], 1u);
}

// The TRACE verb on the classic thread-per-connection server: same verb,
// same export format, served without a fleet in front.
TEST(FleetTracingTest, ClassicServerServesTraceExport) {
  ScopedTracer tracing;
  service::Server classic;
  std::vector<service::Request> script;
  script.push_back(MakeRequest(service::RequestKind::kPing));
  script.push_back(MakeRequest(service::RequestKind::kTrace));
  const auto responses = RunClassic(classic, script);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok);
  const auto& trace = responses[1];
  ASSERT_TRUE(trace.ok) << trace.payload;
  EXPECT_EQ(trace.args.GetString("format"), "chrome-trace");
  EXPECT_GE(trace.args.GetUint("events", 0), 1u);
  EXPECT_NE(trace.payload.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.payload.find("\"name\":\"PING\""), std::string::npos);
}

// Tracing disabled is the default, and it must stay invisible: no spans
// recorded, no ids on the wire (the request frame the fleet sees is the
// pre-tracing byte format), TRACE still answers with an empty export.
TEST(FleetTracingTest, DisabledTracerLeavesNoSpansAndTraceStillAnswers) {
  ASSERT_FALSE(obs::Tracer::Enabled());
  service::ShardedServerOptions options;
  options.shards = 1;
  service::ShardedServer fleet(options);
  std::vector<service::Request> script;
  script.push_back(MakeRequest(service::RequestKind::kPing));
  script.push_back(MakeRequest(service::RequestKind::kTrace));
  const auto responses = RunFleetScript(fleet, script);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok);
  ASSERT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[1].args.GetUint("enabled", 99), 0u);
  EXPECT_TRUE(ParseTracedSpans(responses[1].payload).empty());
}

}  // namespace
}  // namespace spta
