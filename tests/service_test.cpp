// spta_serve subsystem battery: protocol framing, streaming session
// lifecycle in pipe mode, content-addressed result caching with LRU
// eviction, backpressure and deadline rejection, graceful drain, and the
// golden guarantee that a served pWCET quantile is bit-identical to the
// batch pipeline's on the same campaign.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "common/hash.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/mbpta.hpp"
#include "service/client.hpp"
#include "service/convergence_tracker.hpp"
#include "service/engine.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"
#include "service/server.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta {
namespace {

// Deterministic pseudo-random execution times with enough jitter for the
// EVT fit: uniform-ish in [base, base + spread).
std::vector<mbpta::PathObservation> SyntheticSample(std::size_t n,
                                                    std::uint64_t seed,
                                                    double base = 10000.0,
                                                    double spread = 500.0) {
  std::vector<mbpta::PathObservation> obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    obs[i].time =
        base + spread * (static_cast<double>(bits >> 11) * 0x1.0p-53);
    obs[i].path_id = 0;
  }
  return obs;
}

std::vector<double> TimesOf(const std::vector<mbpta::PathObservation>& obs) {
  std::vector<double> times;
  times.reserve(obs.size());
  for (const auto& o : obs) times.push_back(o.time);
  return times;
}

// Runs a scripted request stream through a server and reaps the ordered
// responses (pipe mode: exactly what `spta_serve --pipe` does).
std::vector<service::Response> RunScript(
    service::Server& server, const std::vector<service::Request>& script) {
  std::stringstream request_stream;
  for (const auto& request : script) {
    EXPECT_TRUE(service::WriteRequest(request_stream, request));
  }
  std::stringstream response_stream;
  server.ServeStream(request_stream, response_stream);
  std::vector<service::Response> responses;
  service::Response response;
  std::string error;
  while (service::ReadResponse(response_stream, &response, &error) ==
         service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return responses;
}

service::Request MakeRequest(service::RequestKind kind) {
  service::Request request;
  request.kind = kind;
  return request;
}

service::Request AnalyzeInlineRequest(
    const std::vector<mbpta::PathObservation>& obs, service::Args args = {}) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args = std::move(args);
  request.payload = service::EncodeSamplePayload(obs);
  return request;
}

TEST(ProtocolTest, RequestRoundTripsThroughFrame) {
  service::Request request;
  request.kind = service::RequestKind::kAppend;
  request.args.Set("session", "s1");
  request.args.SetUint("count", 2);
  request.payload = "100.5\n200.25,3\n";

  std::stringstream wire;
  ASSERT_TRUE(service::WriteRequest(wire, request));

  service::Request decoded;
  std::string error;
  ASSERT_EQ(service::ReadRequest(wire, &decoded, &error),
            service::ReadStatus::kOk);
  EXPECT_EQ(decoded.kind, service::RequestKind::kAppend);
  EXPECT_EQ(decoded.args.GetString("session"), "s1");
  EXPECT_EQ(decoded.args.GetUint("count", 0), 2u);
  EXPECT_EQ(decoded.payload, request.payload);

  // And a second frame on the same stream stays framed.
  service::Response response = service::OkResponse();
  response.args.SetDouble("pwcet", 12345.6789);
  ASSERT_TRUE(service::WriteResponse(wire, response));
  service::Response decoded_response;
  ASSERT_EQ(service::ReadResponse(wire, &decoded_response, &error),
            service::ReadStatus::kOk);
  EXPECT_TRUE(decoded_response.ok);
  EXPECT_DOUBLE_EQ(decoded_response.args.GetDouble("pwcet", 0.0), 12345.6789);
}

TEST(ProtocolTest, MalformedFramesAreReportedNotFatal) {
  std::istringstream garbage("not a frame\n");
  service::Request request;
  std::string error;
  EXPECT_EQ(service::ReadRequest(garbage, &request, &error),
            service::ReadStatus::kMalformed);
  EXPECT_NE(error.find("bad frame header"), std::string::npos);

  std::istringstream truncated("spta1 PING 50\nshort");
  EXPECT_EQ(service::ReadRequest(truncated, &request, &error),
            service::ReadStatus::kMalformed);
  EXPECT_NE(error.find("truncated"), std::string::npos);

  std::istringstream eof("");
  EXPECT_EQ(service::ReadRequest(eof, &request, &error),
            service::ReadStatus::kEof);
}

TEST(ProtocolTest, DoubleEncodingRoundTripsBitExactly) {
  const double values[] = {1.0 / 3.0, 1e-12, 123456789.123456789,
                           0x1.fffffffffffffp+1023};
  for (const double v : values) {
    const std::string text = service::EncodeDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(SampleIoTest, TryReadRejectsNonFiniteAndNegative) {
  std::vector<mbpta::PathObservation> out;
  std::string error;

  std::istringstream nan_in("cycles,path_id\n100\nnan\n");
  EXPECT_FALSE(analysis::TryReadSamplesCsv(nan_in, &out, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos);
  EXPECT_TRUE(out.empty());

  std::istringstream inf_in("100\ninf\n");
  EXPECT_FALSE(analysis::TryReadSamplesCsv(inf_in, &out, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos);

  std::istringstream neg_in("100\n-5\n");
  EXPECT_FALSE(analysis::TryReadSamplesCsv(neg_in, &out, &error));
  EXPECT_NE(error.find("negative execution time"), std::string::npos);

  std::istringstream bad_path("100,abc\n");
  EXPECT_FALSE(analysis::TryReadSamplesCsv(bad_path, &out, &error));
  EXPECT_NE(error.find("bad path id"), std::string::npos);

  std::istringstream good("cycles,path_id\n# comment\n100,1\n200\n");
  EXPECT_TRUE(analysis::TryReadSamplesCsv(good, &out, &error));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].path_id, 1u);
  EXPECT_EQ(out[1].time, 200.0);
}

TEST(SampleIoDeathTest, AbortingReaderRejectsNaN) {
  std::istringstream in("100\nnan\n");
  EXPECT_DEATH(analysis::ReadSamplesCsv(in), "non-finite execution time");
}

TEST(ResultCacheTest, LruEvictionAtCapacity) {
  service::ResultCache cache(2);
  cache.Insert(1, 10, "one");
  cache.Insert(2, 20, "two");
  ASSERT_TRUE(cache.Lookup(1, 10).has_value());  // 1 is now most-recent
  cache.Insert(3, 30, "three");                  // evicts 2 (LRU)

  EXPECT_FALSE(cache.Lookup(2, 20).has_value());
  EXPECT_EQ(cache.Lookup(1, 10).value_or(""), "one");
  EXPECT_EQ(cache.Lookup(3, 30).value_or(""), "three");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.HitRatio(), 0.75, 1e-12);
}

TEST(ResultCacheTest, KeyCollisionIsDetectedNotServed) {
  service::ResultCache cache(4);
  cache.Insert(1, 10, "first");

  // Same 64-bit key, different verifier: a colliding request must never
  // receive the other request's cached result.
  EXPECT_FALSE(cache.Lookup(1, 99).has_value());
  EXPECT_FALSE(cache.LookupIfPresent(1, 99).has_value());
  auto stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);  // LookupIfPresent does not account
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Re-insertion under the colliding key replaces the entry (latest
  // wins); the original verifier then misses.
  cache.Insert(1, 99, "second");
  EXPECT_EQ(cache.Lookup(1, 99).value_or(""), "second");
  EXPECT_FALSE(cache.Lookup(1, 10).has_value());
  stats = cache.stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.collisions, 2u);
}

TEST(AnalysisVerifierTest, IndependentOfAnalysisKey) {
  const auto obs = SyntheticSample(64, 1);
  service::AnalysisConfig config;
  EXPECT_NE(service::AnalysisVerifier(obs, config),
            service::AnalysisKey(obs, config));

  auto perturbed = obs;
  perturbed[10].time += 1e-9;
  EXPECT_NE(service::AnalysisVerifier(perturbed, config),
            service::AnalysisVerifier(obs, config));
  EXPECT_EQ(service::AnalysisVerifier(obs, config),
            service::AnalysisVerifier(obs, config));  // deterministic
}

TEST(AnalysisKeyTest, SensitiveToSamplesAndConfig) {
  const auto obs = SyntheticSample(64, 1);
  service::AnalysisConfig config;
  const std::uint64_t base = service::AnalysisKey(obs, config);

  auto perturbed = obs;
  perturbed[10].time += 1e-9;
  EXPECT_NE(service::AnalysisKey(perturbed, config), base);

  auto path_changed = obs;
  path_changed[10].path_id = 7;
  EXPECT_NE(service::AnalysisKey(path_changed, config), base);

  service::AnalysisConfig other = config;
  other.prob = 1e-9;
  EXPECT_NE(service::AnalysisKey(obs, other), base);

  EXPECT_EQ(service::AnalysisKey(obs, config), base);  // deterministic
}

// One hostile request must get an ERR, never abort the shared daemon:
// every SPTA_REQUIRE reachable from client-controlled sample sizes and
// analysis options has to be caught by the engine's validation first.
TEST(ServerPipeTest, HostileAnalyzeParametersGetErrNotAbort) {
  service::Server server{service::ServerOptions{}};

  service::Args tiny;  // 3 samples reach the i.i.d. gate's n >= 4 floor
  tiny.SetUint("min_blocks", 1);
  service::Args lags_too_large;  // default lags=20 vs a 10-sample payload
  lags_too_large.SetUint("min_blocks", 1);
  service::Args lags_zero;
  lags_zero.SetUint("lags", 0);
  service::Args two_blocks;  // 120/60 = 2 complete blocks < 3
  two_blocks.SetUint("block_size", 60);
  service::Args per_path_floor;  // path floor 4 <= default lags 20
  per_path_floor.Set("per_path", "1");
  per_path_floor.SetUint("min_blocks", 4);
  per_path_floor.SetUint("min_path_samples", 4);

  const auto responses = RunScript(
      server, {AnalyzeInlineRequest(SyntheticSample(3, 1), tiny),
               AnalyzeInlineRequest(SyntheticSample(10, 2), lags_too_large),
               AnalyzeInlineRequest(SyntheticSample(120, 3), lags_zero),
               AnalyzeInlineRequest(SyntheticSample(120, 4), two_blocks),
               AnalyzeInlineRequest(SyntheticSample(120, 5), per_path_floor),
               MakeRequest(service::RequestKind::kPing),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(responses.size(), 7u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_NE(responses[0].payload.find("too small"), std::string::npos);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_NE(responses[1].payload.find("lags"), std::string::npos);
  EXPECT_FALSE(responses[2].ok);
  EXPECT_NE(responses[2].payload.find("lags"), std::string::npos);
  EXPECT_FALSE(responses[3].ok);
  EXPECT_NE(responses[3].payload.find("blocks"), std::string::npos);
  EXPECT_FALSE(responses[4].ok);
  EXPECT_NE(responses[4].payload.find("per-path"), std::string::npos);
  // The daemon is still alive and answering after all of the above.
  EXPECT_TRUE(responses[5].ok);
  EXPECT_TRUE(responses[6].ok);
}

TEST(ConvergenceTrackerTest, MatchesBatchCheckConvergenceAnyChunking) {
  const auto obs = SyntheticSample(1100, 42);
  const auto times = TimesOf(obs);
  mbpta::ConvergenceOptions options;
  options.initial_runs = 200;
  options.step_runs = 150;
  const auto batch = mbpta::CheckConvergence(times, options);

  for (const std::size_t chunk : {1100ul, 250ul, 37ul}) {
    service::ConvergenceTracker tracker(options);
    std::vector<double> fed;
    for (std::size_t offset = 0; offset < times.size(); offset += chunk) {
      const std::size_t n = std::min(chunk, times.size() - offset);
      fed.insert(fed.end(), times.begin() + offset,
                 times.begin() + offset + n);
      tracker.Update(fed);
    }
    EXPECT_EQ(tracker.converged(), batch.converged);
    EXPECT_EQ(tracker.runs_required(), batch.runs_required);
    ASSERT_EQ(tracker.points().size(), batch.points.size());
    for (std::size_t i = 0; i < batch.points.size(); ++i) {
      EXPECT_EQ(tracker.points()[i].runs, batch.points[i].runs);
      EXPECT_EQ(tracker.points()[i].pwcet, batch.points[i].pwcet);
      EXPECT_EQ(tracker.points()[i].rel_delta, batch.points[i].rel_delta);
    }
  }
}

TEST(ServerPipeTest, SessionLifecycleEndToEnd) {
  service::ServerOptions options;
  options.workers = 2;
  options.convergence.initial_runs = 200;
  options.convergence.step_runs = 100;
  service::Server server(options);

  const auto obs = SyntheticSample(600, 7);

  std::vector<service::Request> script;
  script.push_back(MakeRequest(service::RequestKind::kPing));
  {
    service::Request open = MakeRequest(service::RequestKind::kOpen);
    open.args.Set("session", "sat1");
    script.push_back(open);
  }
  for (std::size_t offset = 0; offset < obs.size(); offset += 200) {
    service::Request append = MakeRequest(service::RequestKind::kAppend);
    append.args.Set("session", "sat1");
    append.args.SetUint("count", 200);
    append.payload = service::EncodeSamplePayload(
        std::vector<mbpta::PathObservation>(obs.begin() + offset,
                                            obs.begin() + offset + 200));
    script.push_back(append);
  }
  {
    service::Request status = MakeRequest(service::RequestKind::kStatus);
    status.args.Set("session", "sat1");
    script.push_back(status);
  }
  {
    service::Request analyze = MakeRequest(service::RequestKind::kAnalyze);
    analyze.args.Set("session", "sat1");
    analyze.args.Set("require_iid", "0");
    script.push_back(analyze);
  }
  {
    service::Request close = MakeRequest(service::RequestKind::kClose);
    close.args.Set("session", "sat1");
    script.push_back(close);
  }
  script.push_back(MakeRequest(service::RequestKind::kShutdown));

  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), script.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].ok) << "response " << i << ": "
                                 << responses[i].payload;
  }

  // Appends report the growing total; convergence state matches the batch
  // criterion over the same stream.
  EXPECT_EQ(responses[2].args.GetUint("total", 0), 200u);
  EXPECT_EQ(responses[4].args.GetUint("total", 0), 600u);
  const auto batch = mbpta::CheckConvergence(TimesOf(obs),
                                             server.options().convergence);
  EXPECT_EQ(responses[5].args.GetUint("converged", 9) == 1, batch.converged);
  EXPECT_EQ(responses[5].args.GetUint("runs_required", 9),
            batch.runs_required);

  // The analysis response carries the quantile and a cache miss.
  EXPECT_EQ(responses[6].args.GetString("cache"), "miss");
  EXPECT_TRUE(responses[6].args.Has("pwcet"));
  EXPECT_EQ(responses[6].args.GetUint("sample_size", 0), 600u);

  // Close really closed: the session is gone.
  EXPECT_EQ(server.sessions().open_count(), 0u);
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(ServerPipeTest, CacheHitOnIdenticalResubmission) {
  service::Server server{service::ServerOptions{}};
  const auto obs = SyntheticSample(240, 11);

  service::Args options;
  options.Set("require_iid", "0");
  const auto responses = RunScript(
      server, {AnalyzeInlineRequest(obs, options),
               AnalyzeInlineRequest(obs, options),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_TRUE(responses[0].ok) << responses[0].payload;
  ASSERT_TRUE(responses[1].ok) << responses[1].payload;

  EXPECT_EQ(responses[0].args.GetString("cache"), "miss");
  EXPECT_EQ(responses[1].args.GetString("cache"), "hit");
  EXPECT_EQ(responses[0].args.GetString("key"),
            responses[1].args.GetString("key"));
  // The cached answer is byte-identical: same quantile, same report.
  EXPECT_EQ(responses[0].args.GetString("pwcet"),
            responses[1].args.GetString("pwcet"));
  EXPECT_EQ(responses[0].payload, responses[1].payload);

  const auto stats = server.engine().cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServerPipeTest, LruEvictionBoundsTheCache) {
  service::ServerOptions options;
  options.cache_capacity = 2;
  // One worker => analyses insert into the cache in request order, so the
  // eviction sequence is deterministic.
  options.workers = 1;
  service::Server server(options);

  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  std::vector<service::Request> script;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    script.push_back(
        AnalyzeInlineRequest(SyntheticSample(240, seed), no_iid));
  }
  script.push_back(MakeRequest(service::RequestKind::kShutdown));
  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), 4u);

  // Resubmit seed 1 on a fresh stream, after the first drained: seed 3's
  // insertion evicted it (LRU), so it must be a miss and evict seed 2.
  const auto resubmit = RunScript(
      server, {AnalyzeInlineRequest(SyntheticSample(240, 1u), no_iid),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(resubmit.size(), 2u);
  EXPECT_EQ(resubmit[0].args.GetString("cache"), "miss");
  const auto stats = server.engine().cache().stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(ServerPipeTest, BackpressureRejectsWhenQueueFull) {
  service::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.enable_debug_hooks = true;
  service::Server server(options);

  service::Args slow;
  slow.Set("require_iid", "0");
  slow.SetDouble("debug_sleep_ms", 300.0);
  service::Args fast;
  fast.Set("require_iid", "0");

  const auto obs = SyntheticSample(120, 5);
  const auto responses = RunScript(
      server, {AnalyzeInlineRequest(obs, slow),
               AnalyzeInlineRequest(SyntheticSample(120, 6), fast),
               AnalyzeInlineRequest(SyntheticSample(120, 8), fast),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].ok);  // the slot holder completed
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].args.GetString("code"), "busy");
  EXPECT_FALSE(responses[2].ok);
  EXPECT_EQ(responses[2].args.GetString("code"), "busy");
  EXPECT_TRUE(responses[3].ok);  // shutdown ack after drain
  EXPECT_EQ(server.metrics().busy_rejections(), 2u);
}

TEST(ServerPipeTest, ExpiredDeadlineIsRejectedNotExecuted) {
  service::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.enable_debug_hooks = true;
  service::Server server(options);

  service::Args slow;
  slow.Set("require_iid", "0");
  slow.SetDouble("debug_sleep_ms", 200.0);
  service::Args tight;
  tight.Set("require_iid", "0");
  tight.SetDouble("deadline_ms", 1.0);  // expires while queued behind `slow`

  const auto responses = RunScript(
      server, {AnalyzeInlineRequest(SyntheticSample(120, 5), slow),
               AnalyzeInlineRequest(SyntheticSample(120, 6), tight),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].args.GetString("code"), "deadline");
  EXPECT_EQ(server.metrics().deadline_misses(), 1u);
}

TEST(ServerPipeTest, DrainOnShutdownLosesNoAcceptedRequest) {
  service::ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 64;
  service::Server server(options);

  constexpr std::size_t kRequests = 24;
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  std::vector<service::Request> script;
  for (std::size_t i = 0; i < kRequests; ++i) {
    script.push_back(
        AnalyzeInlineRequest(SyntheticSample(150, 100 + i), no_iid));
  }
  script.push_back(MakeRequest(service::RequestKind::kShutdown));

  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), kRequests + 1);
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(responses[i].ok) << responses[i].payload;
    EXPECT_TRUE(responses[i].args.Has("pwcet"));
  }
  EXPECT_TRUE(responses.back().ok);
  EXPECT_EQ(responses.back().args.GetString("drained"), "1");
  EXPECT_EQ(server.metrics().requests_total(), kRequests + 1);
  EXPECT_EQ(server.metrics().errors_total(), 0u);
}

TEST(ServerPipeTest, MetricsSurfaceCountsTraffic) {
  service::Server server{service::ServerOptions{}};
  const auto obs = SyntheticSample(240, 11);
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  const auto traffic = RunScript(
      server, {AnalyzeInlineRequest(obs, no_iid),
               AnalyzeInlineRequest(obs, no_iid),
               MakeRequest(service::RequestKind::kShutdown)});
  ASSERT_EQ(traffic.size(), 3u);
  // METRICS is deliberately instantaneous (no barrier on in-flight work),
  // so read the surface on a second stream after the drain.
  const auto responses =
      RunScript(server, {MakeRequest(service::RequestKind::kMetrics)});
  ASSERT_EQ(responses.size(), 1u);
  const auto& metrics = responses[0];
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.args.GetUint("analyses_total", 0), 2u);
  EXPECT_EQ(metrics.args.GetUint("cache_hits", 0), 1u);
  EXPECT_EQ(metrics.args.GetUint("cache_misses", 0), 1u);
  EXPECT_NEAR(metrics.args.GetDouble("cache_hit_ratio", 0.0), 0.5, 1e-12);
  // The human dump carries the latency histograms.
  EXPECT_NE(metrics.payload.find("cold analyze latency"), std::string::npos);
}

// The Snapshot/Render key order is a wire contract (docs/SERVICE.md):
// scrapers parse these lines positionally, so the order is golden-tested.
// If this test fails because a key was ADDED, extend the expectation; a
// reorder or rename is a breaking change and needs a docs + version call.
TEST(ServerPipeTest, MetricsSnapshotKeyOrderIsGolden) {
  service::Server server{service::ServerOptions{}};
  const auto obs = SyntheticSample(240, 11);
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  RunScript(server, {MakeRequest(service::RequestKind::kPing),
                     AnalyzeInlineRequest(obs, no_iid),
                     MakeRequest(service::RequestKind::kShutdown)});
  const auto snapshot =
      server.metrics().Snapshot(server.engine().cache().stats());
  std::vector<std::string> keys;
  for (const auto& [key, value] : snapshot.values()) keys.push_back(key);
  const std::vector<std::string> golden = {
      "analyses_total", "busy_rejections",  "cache_capacity",
      "cache_collisions", "cache_evictions", "cache_hit_ratio",
      "cache_hits",     "cache_misses",     "cache_size",
      "deadline_misses", "errors_total",    "faults_injected",
      "protocol_errors", "queue_waits",     "requests_ANALYZE",
      "requests_PING",  "requests_SHUTDOWN", "requests_total",
      "sessions_degraded"};
  EXPECT_EQ(keys, golden);

  // Render = the Snapshot lines in the same order, then the latency mean,
  // then the ASCII histograms (cold before cache-hit when both exist).
  const auto text =
      server.metrics().Render(server.engine().cache().stats());
  std::size_t pos = 0;
  for (const auto& key : golden) {
    const std::size_t at = text.find(key + " ", pos);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GE(at, pos) << key << " out of order";
    pos = at;
  }
  EXPECT_NE(text.find("analyze_latency_mean_us ", pos), std::string::npos);
  EXPECT_NE(text.find("cold analyze latency", pos), std::string::npos);
}

TEST(ServerPipeTest, MetricsPromServesValidExposition) {
  service::Server server{service::ServerOptions{}};
  const auto obs = SyntheticSample(240, 11);
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  RunScript(server, {AnalyzeInlineRequest(obs, no_iid),
                     AnalyzeInlineRequest(obs, no_iid),
                     MakeRequest(service::RequestKind::kShutdown)});
  const auto responses =
      RunScript(server, {MakeRequest(service::RequestKind::kMetricsProm)});
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].ok);
  EXPECT_EQ(responses[0].args.GetString("format", ""), "prometheus-0.0.4");
  const std::string& text = responses[0].payload;

  // Every line is a comment or `name[{labels}] value` — no stray text.
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("spta_", 0), 0u) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GT(samples, 20u);

  // The surface the acceptance criteria name: requests, latencies with the
  // hit/miss split, cache, fault, and obs counters.
  EXPECT_NE(text.find("# TYPE spta_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("spta_requests_by_verb_total{verb=\"ANALYZE\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE spta_analyze_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("spta_analyze_latency_seconds_bucket{cache=\"hit\",le=\""),
      std::string::npos);
  EXPECT_NE(
      text.find("spta_analyze_latency_seconds_bucket{cache=\"miss\",le=\""),
      std::string::npos);
  EXPECT_NE(text.find("spta_analyze_latency_seconds_count{cache=\"hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE spta_queue_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("spta_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("spta_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(text.find("spta_faults_injected_total 0"), std::string::npos);
  EXPECT_NE(text.find("spta_obs_trace_events_recorded_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE spta_cache_entries gauge"), std::string::npos);
}

// The acceptance-criteria golden check: a pWCET quantile served over the
// wire equals the batch pipeline's on the same parallel campaign,
// bit for bit (the %.17g wire encoding round-trips the doubles exactly).
TEST(ServedVsBatchGoldenTest, ServedQuantileEqualsBatchBitForBit) {
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(3);
  const auto samples = analysis::RunFixedTraceCampaignParallel(
      sim::RandLeon3Config(), frame.trace, 300, 20170327, 2);
  const auto obs = analysis::ToPathObservations(samples);

  // Batch side: the library pipeline, straight on the campaign doubles.
  mbpta::MbptaOptions batch_opts;
  batch_opts.require_iid = false;
  const auto batch = mbpta::AnalyzeSample(TimesOf(obs), batch_opts);
  ASSERT_TRUE(batch.curve.has_value());
  const double batch_pwcet = batch.curve->QuantileForExceedance(1e-12);

  // Served side: streaming ingestion in chunks, then ANALYZE.
  service::Server server{service::ServerOptions{}};
  std::vector<service::Request> script;
  service::Request open = MakeRequest(service::RequestKind::kOpen);
  open.args.Set("session", "golden");
  script.push_back(open);
  for (std::size_t offset = 0; offset < obs.size(); offset += 100) {
    service::Request append = MakeRequest(service::RequestKind::kAppend);
    append.args.Set("session", "golden");
    append.payload = service::EncodeSamplePayload(
        std::vector<mbpta::PathObservation>(obs.begin() + offset,
                                            obs.begin() + offset + 100));
    script.push_back(append);
  }
  service::Request analyze = MakeRequest(service::RequestKind::kAnalyze);
  analyze.args.Set("session", "golden");
  analyze.args.Set("require_iid", "0");
  analyze.args.SetDouble("prob", 1e-12);
  script.push_back(analyze);
  script.push_back(MakeRequest(service::RequestKind::kShutdown));

  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), script.size());
  const auto& served = responses[responses.size() - 2];
  ASSERT_TRUE(served.ok) << served.payload;
  ASSERT_TRUE(served.args.Has("pwcet"));
  const double served_pwcet =
      std::strtod(served.args.GetString("pwcet").c_str(), nullptr);
  EXPECT_EQ(served_pwcet, batch_pwcet);  // bit-for-bit, not NEAR
  EXPECT_EQ(served.args.GetUint("sample_size", 0), obs.size());
}

// --- HEALTH (liveness/readiness) ------------------------------------------

TEST(HealthTest, ClassicServerReportsReadiness) {
  service::Server server;
  std::vector<service::Request> script;
  script.push_back(MakeRequest(service::RequestKind::kHealth));
  script.push_back(MakeRequest(service::RequestKind::kShutdown));
  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), 2u);
  const auto& health = responses[0];
  ASSERT_TRUE(health.ok) << health.payload;
  EXPECT_EQ(health.args.GetString("status"), "ok");
  EXPECT_EQ(health.args.GetString("role"), "server");
  EXPECT_EQ(health.args.GetUint("inflight", 99), 0u);
  EXPECT_EQ(health.args.GetUint("queue_capacity", 0), 64u);
  EXPECT_EQ(health.args.GetUint("sessions", 99), 0u);
  EXPECT_EQ(health.args.GetUint("draining", 99), 0u);
}

TEST(HealthTest, SessionsAndCapacityAreReported) {
  service::ServerOptions options;
  options.queue_capacity = 7;
  service::Server server(options);
  std::vector<service::Request> script;
  service::Request open = MakeRequest(service::RequestKind::kOpen);
  open.args.Set("session", "h");
  script.push_back(open);
  script.push_back(MakeRequest(service::RequestKind::kHealth));
  script.push_back(MakeRequest(service::RequestKind::kShutdown));
  const auto responses = RunScript(server, script);
  ASSERT_EQ(responses.size(), 3u);
  const auto& health = responses[1];
  ASSERT_TRUE(health.ok) << health.payload;
  EXPECT_EQ(health.args.GetUint("queue_capacity", 0), 7u);
  EXPECT_EQ(health.args.GetUint("sessions", 0), 1u);
}

TEST(UnixSocketTest, ClientServerEndToEndOverSocket) {
  const std::string path =
      "/tmp/spta_service_test_" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions options;
  options.workers = 2;
  service::Server server(options);
  std::thread daemon([&] { server.ServeUnixSocket(path); });

  // Wait for the listener to come up.
  std::unique_ptr<service::UnixSocketConnection> connection;
  std::string error;
  for (int attempt = 0; attempt < 200 && !connection; ++attempt) {
    connection = service::UnixSocketConnection::Connect(path, &error);
    if (!connection) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(connection) << error;

  service::Client client(connection->in(), connection->out());
  EXPECT_TRUE(client.Ping().ok);

  // HEALTH over the real blocking-socket path: an idle daemon is ready.
  const auto health = client.Health();
  ASSERT_TRUE(health.ok) << health.payload;
  EXPECT_EQ(health.args.GetString("status"), "ok");
  EXPECT_EQ(health.args.GetString("role"), "server");

  const auto obs = SyntheticSample(240, 21);
  service::Args no_iid;
  no_iid.Set("require_iid", "0");
  const auto analysis = client.AnalyzeInline(obs, no_iid);
  ASSERT_TRUE(analysis.ok) << analysis.payload;
  EXPECT_TRUE(analysis.args.Has("pwcet"));

  const auto ack = client.Shutdown();
  EXPECT_TRUE(ack.ok);
  daemon.join();
  EXPECT_TRUE(server.shutdown_requested());
}

}  // namespace
}  // namespace spta
