// Lane-equivalence battery for the lockstep batch kernel (src/sim/batch).
//
// The batched kernel claims every lane is bit-identical to a dedicated
// single-seed simulation: same cycles, same per-structure hit/miss counts,
// same PRNG consumption, for any lane count, any seed position within a
// batch, ragged batches, arena reuse, and mid-stream flush/reseed
// interleaves — under every placement x replacement combination and on
// BOTH the AVX2 and the scalar-fallback scan paths. These tests make that
// claim falsifiable at three layers:
//
//  * lane arrays vs sim::Cache/sim::Tlb AND vs sim/reference_model (the
//    executable spec), per-access hit/miss streams with per-lane
//    flush/reseed at different points (lane independence),
//  * BatchPlatform vs sim::Platform, full RunResult equality across all
//    nine policy combos,
//  * batched campaign runners vs the serial/parallel runners, sample-level
//    equality including checkpoint-journal interop.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/batch_campaign.hpp"
#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "prng/xoshiro.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/lane_arrays.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/batch/simd.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/platform.hpp"
#include "sim/reference_model.hpp"
#include "sim/tlb.hpp"
#include "trace/synthetic.hpp"

namespace spta::sim::batch {
namespace {

constexpr Placement kPlacements[] = {Placement::kModulo,
                                     Placement::kRandomModulo,
                                     Placement::kHashRandom};
constexpr Replacement kReplacements[] = {Replacement::kLru,
                                         Replacement::kRandom,
                                         Replacement::kNru};

/// The scan ISAs testable on this machine (scalar always; AVX2 when the
/// CPU has it). Every equivalence check runs under each.
std::vector<ScanIsa> TestableIsas() {
  std::vector<ScanIsa> isas = {ScanIsa::kScalar};
  if (CpuHasAvx2()) isas.push_back(ScanIsa::kAvx2);
  return isas;
}

void ExpectRunResultEq(const RunResult& batched, const RunResult& serial,
                       const std::string& what) {
  EXPECT_EQ(batched.cycles, serial.cycles) << what;
  EXPECT_EQ(batched.instructions, serial.instructions) << what;
  EXPECT_EQ(batched.il1.accesses, serial.il1.accesses) << what;
  EXPECT_EQ(batched.il1.misses, serial.il1.misses) << what;
  EXPECT_EQ(batched.dl1.accesses, serial.dl1.accesses) << what;
  EXPECT_EQ(batched.dl1.misses, serial.dl1.misses) << what;
  EXPECT_EQ(batched.itlb.accesses, serial.itlb.accesses) << what;
  EXPECT_EQ(batched.itlb.misses, serial.itlb.misses) << what;
  EXPECT_EQ(batched.dtlb.accesses, serial.dtlb.accesses) << what;
  EXPECT_EQ(batched.dtlb.misses, serial.dtlb.misses) << what;
  EXPECT_EQ(batched.fpu.operations, serial.fpu.operations) << what;
  EXPECT_EQ(batched.fpu.total_cycles, serial.fpu.total_cycles) << what;
  EXPECT_EQ(batched.store_buffer.stores, serial.store_buffer.stores) << what;
  EXPECT_EQ(batched.store_buffer.full_stalls,
            serial.store_buffer.full_stalls)
      << what;
  EXPECT_EQ(batched.store_buffer.stall_cycles,
            serial.store_buffer.stall_cycles)
      << what;
  EXPECT_EQ(batched.store_buffer.high_water, serial.store_buffer.high_water)
      << what;
  EXPECT_EQ(batched.prng.words, serial.prng.words) << what;
  EXPECT_EQ(batched.prng.rejections, serial.prng.rejections) << what;
  EXPECT_EQ(batched.bus.transactions, serial.bus.transactions) << what;
  EXPECT_EQ(batched.bus.busy_cycles, serial.bus.busy_cycles) << what;
  EXPECT_EQ(batched.bus.wait_cycles, serial.bus.wait_cycles) << what;
  EXPECT_EQ(batched.dram.accesses, serial.dram.accesses) << what;
  EXPECT_EQ(batched.dram.row_hits, serial.dram.row_hits) << what;
  EXPECT_EQ(batched.dram.refresh_stall_cycles,
            serial.dram.refresh_stall_cycles)
      << what;
}

PlatformConfig ComboConfig(Placement placement, Replacement replacement) {
  PlatformConfig config = RandLeon3Config();
  config.il1.placement = placement;
  config.il1.replacement = replacement;
  config.dl1.placement = placement;
  config.dl1.replacement = replacement;
  config.itlb.replacement = replacement;
  config.dtlb.replacement = replacement;
  return config;
}

// --- Layer 1: lane arrays vs sim::Cache/Tlb vs the reference model. ------

/// Address stream mirroring sim_equivalence_test's MakeStream shapes.
struct AccessOp {
  Address addr = 0;
  bool allocate = true;
};

std::vector<AccessOp> MakeStream(std::uint64_t seed, std::size_t count,
                                 std::uint32_t line_bytes) {
  prng::Xoshiro128pp rng(seed);
  std::vector<AccessOp> ops;
  ops.reserve(count);
  Address cursor = 0x40000000;
  while (ops.size() < count) {
    switch (rng.UniformBelow(3)) {
      case 0:
        for (std::uint32_t i = 0; i < 12 && ops.size() < count; ++i) {
          ops.push_back({cursor, true});
          cursor += 4;
        }
        break;
      case 1: {
        const Address stride = line_bytes * (1 + rng.UniformBelow(5));
        Address a = 0x40000000 + 64ULL * rng.UniformBelow(4096);
        for (std::uint32_t i = 0; i < 8 && ops.size() < count; ++i) {
          ops.push_back({a, rng.UniformBelow(8) != 0});
          a += stride;
        }
        break;
      }
      default:
        ops.push_back({0x40000000 + 4ULL * rng.UniformBelow(1 << 18),
                       rng.UniformBelow(8) != 0});
        break;
    }
  }
  return ops;
}

TEST(SimBatchEquivalence, CacheLanesMatchFastAndReferenceAllCombos) {
  constexpr std::size_t kLanes = 4;
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    for (const auto placement : kPlacements) {
      for (const auto replacement : kReplacements) {
        const CacheConfig config{16 * 1024, 32, 4, placement, replacement};
        CacheLaneArray lanes(config, kLanes);
        std::vector<Cache> fast;
        std::vector<ReferenceCache> reference;
        for (std::size_t l = 0; l < kLanes; ++l) {
          const Seed seed = 100 + 13 * l;
          lanes.Reseed(l, seed);
          lanes.ResetStats(l);
          fast.emplace_back(config, seed);
          reference.emplace_back(config, seed);
        }
        const auto ops = MakeStream(2024, 3000, config.line_bytes);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          for (std::size_t l = 0; l < kLanes; ++l) {
            const bool lane_hit =
                lanes.Access(l, ops[i].addr, ops[i].allocate);
            const bool fast_hit = fast[l].Access(ops[i].addr,
                                                 ops[i].allocate);
            const bool ref_hit =
                reference[l].Access(ops[i].addr, ops[i].allocate);
            ASSERT_EQ(lane_hit, fast_hit)
                << "lane " << l << " diverged from sim::Cache at access "
                << i << " (" << ToString(isa) << ")";
            ASSERT_EQ(lane_hit, ref_hit)
                << "lane " << l << " diverged from the reference model at "
                << "access " << i << " (" << ToString(isa) << ")";
          }
          // Per-lane flush/reseed at DIFFERENT points: sibling lanes must
          // be unperturbed (lane independence).
          if (i == ops.size() / 3) {
            lanes.Flush(1);
            fast[1].Flush();
            reference[1].Flush();
          }
          if (i == ops.size() / 2) {
            lanes.Reseed(2, 777);
            fast[2].Reseed(777);
            reference[2].Reseed(777);
          }
        }
        for (std::size_t l = 0; l < kLanes; ++l) {
          EXPECT_EQ(lanes.stats(l).accesses, fast[l].stats().accesses);
          EXPECT_EQ(lanes.stats(l).misses, fast[l].stats().misses);
          EXPECT_EQ(lanes.stats(l).misses, reference[l].stats().misses);
          EXPECT_EQ(lanes.draw_stats(l).words,
                    fast[l].draw_stats().words);
          EXPECT_EQ(lanes.draw_stats(l).rejections,
                    fast[l].draw_stats().rejections);
        }
      }
    }
  }
}

TEST(SimBatchEquivalence, TlbLanesMatchFastAndReferenceAllPolicies) {
  constexpr std::size_t kLanes = 5;
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    for (const auto replacement : kReplacements) {
      for (const std::uint32_t entries : {4u, 8u, 64u}) {
        TlbConfig config;
        config.entries = entries;
        config.replacement = replacement;
        TlbLaneArray lanes(config, kLanes);
        std::vector<Tlb> fast;
        std::vector<ReferenceTlb> reference;
        for (std::size_t l = 0; l < kLanes; ++l) {
          const Seed seed = 7 + 31 * l;
          lanes.Reseed(l, seed);
          lanes.ResetStats(l);
          fast.emplace_back(config, seed);
          reference.emplace_back(config, seed);
        }
        prng::Xoshiro128pp rng(entries + 5);
        Address page = 0;
        for (std::size_t i = 0; i < 4000; ++i) {
          if (rng.UniformBelow(4) == 0) page = rng.UniformBelow(512);
          const Address addr =
              page * config.page_bytes + rng.UniformBelow(4096);
          for (std::size_t l = 0; l < kLanes; ++l) {
            const bool lane_hit = lanes.Access(l, addr);
            ASSERT_EQ(lane_hit, fast[l].Access(addr))
                << "lane " << l << " access " << i << " ("
                << ToString(isa) << ")";
            ASSERT_EQ(lane_hit, reference[l].Access(addr))
                << "lane " << l << " access " << i << " ("
                << ToString(isa) << ")";
          }
          if (i == 1500) {
            lanes.Flush(0);
            fast[0].Flush();
            reference[0].Flush();
          }
          if (i == 2500) {
            lanes.Reseed(3, 4242);
            fast[3].Reseed(4242);
            reference[3].Reseed(4242);
          }
        }
        for (std::size_t l = 0; l < kLanes; ++l) {
          EXPECT_EQ(lanes.stats(l).accesses, fast[l].stats().accesses);
          EXPECT_EQ(lanes.stats(l).misses, fast[l].stats().misses);
          EXPECT_EQ(lanes.draw_stats(l).words, fast[l].draw_stats().words);
          EXPECT_EQ(lanes.draw_stats(l).rejections,
                    fast[l].draw_stats().rejections);
        }
      }
    }
  }
}

// --- Layer 2: BatchPlatform vs sim::Platform. ----------------------------

TEST(SimBatchEquivalence, BatchPlatformMatchesPlatformAllPolicyCombos) {
  trace::BlendSpec spec;
  spec.count = 20000;
  const trace::Trace t = trace::BlendTrace(spec, 2024);
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    for (const auto placement : kPlacements) {
      for (const auto replacement : kReplacements) {
        const PlatformConfig config = ComboConfig(placement, replacement);
        const PreparedTrace prepared = PrepareTrace(t, config);
        BatchPlatform batch(config, 8);
        Platform platform(config, 1);
        const std::vector<Seed> seeds = {1, 2, 3, 4, 5, 42, 1000000007,
                                         0xabcdef};
        const auto results = batch.RunBatch(prepared, seeds);
        ASSERT_EQ(results.size(), seeds.size());
        for (std::size_t l = 0; l < seeds.size(); ++l) {
          const RunResult serial = platform.Run(t, seeds[l]);
          ExpectRunResultEq(
              results[l], serial,
              std::string("placement ") + ToString(placement) +
                  " replacement " + ToString(replacement) + " lane " +
                  std::to_string(l) + " isa " + ToString(isa));
        }
      }
    }
  }
}

TEST(SimBatchEquivalence, RaggedBatchesAndArenaReuse) {
  // 13 runs through a 4-lane kernel: batches of 4, 4, 4, 1 on ONE reused
  // BatchPlatform. Every run must match its dedicated serial simulation —
  // ragged tails and arena reuse change nothing.
  trace::BlendSpec spec;
  spec.count = 12000;
  const trace::Trace t = trace::BlendTrace(spec, 99);
  const PlatformConfig config = RandLeon3Config();
  const PreparedTrace prepared = PrepareTrace(t, config);
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    BatchPlatform batch(config, 4);
    Platform platform(config, 1);
    constexpr std::size_t kRuns = 13;
    for (std::size_t start = 0; start < kRuns; start += 4) {
      const std::size_t n = std::min<std::size_t>(4, kRuns - start);
      std::vector<Seed> seeds;
      for (std::size_t i = 0; i < n; ++i) {
        seeds.push_back(analysis::FixedTraceRunSeed(555, start + i));
      }
      const auto results = batch.RunBatch(prepared, seeds);
      for (std::size_t i = 0; i < n; ++i) {
        ExpectRunResultEq(results[i], platform.Run(t, seeds[i]),
                          "run " + std::to_string(start + i) + " isa " +
                              ToString(isa));
      }
    }
  }
}

TEST(SimBatchEquivalence, SeedPositionWithinBatchIsIrrelevant) {
  // The same seed must produce the same result in every lane slot: rotate
  // a seed vector and check the rotated results match slot-for-seed.
  trace::BlendSpec spec;
  spec.count = 8000;
  const trace::Trace t = trace::BlendTrace(spec, 7);
  const PlatformConfig config = RandLeon3Config();
  const PreparedTrace prepared = PrepareTrace(t, config);
  BatchPlatform batch(config, 4);
  const std::vector<Seed> seeds = {11, 22, 33, 44};
  const auto base = batch.RunBatch(prepared, seeds);
  std::vector<Seed> rotated = {44, 11, 22, 33};
  const auto rot = batch.RunBatch(prepared, rotated);
  for (std::size_t i = 0; i < 4; ++i) {
    ExpectRunResultEq(rot[(i + 1) % 4], base[i],
                      "rotated slot of seed " + std::to_string(seeds[i]));
  }
}

TEST(SimBatchEquivalence, TimingDigestMismatchIsRefused) {
  trace::BlendSpec spec;
  spec.count = 100;
  const trace::Trace t = trace::BlendTrace(spec, 1);
  const PlatformConfig rand_config = RandLeon3Config();
  const PlatformConfig det_config = DetLeon3Config();
  // DET and RAND differ in FPU mode, which PrepareTrace bakes into the
  // event costs — running a DET-prepared trace on a RAND kernel must die.
  ASSERT_NE(TimingDigest(rand_config), TimingDigest(det_config));
  const PreparedTrace prepared = PrepareTrace(t, det_config);
  BatchPlatform batch(rand_config, 2);
  const std::vector<Seed> seeds = {1, 2};
  EXPECT_DEATH((void)batch.RunBatch(prepared, seeds), "timing");
}

// --- Layer 3: batched campaign runners. ----------------------------------

TEST(SimBatchEquivalence, BatchedFixedTraceCampaignMatchesSerial) {
  trace::BlendSpec spec;
  spec.count = 6000;
  const trace::Trace t = trace::BlendTrace(spec, 31);
  const PlatformConfig config = RandLeon3Config();
  Platform platform(config, 1);
  const auto serial =
      analysis::RunFixedTraceCampaign(platform, t, 21, 1234);
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    for (const std::size_t lanes : {1u, 4u, 8u}) {
      const auto batched = analysis::RunFixedTraceCampaignBatched(
          config, t, 21, 1234, lanes, /*jobs=*/1);
      ASSERT_EQ(batched.size(), serial.size());
      for (std::size_t r = 0; r < serial.size(); ++r) {
        EXPECT_EQ(batched[r].cycles, serial[r].cycles)
            << "run " << r << " lanes " << lanes;
        EXPECT_EQ(batched[r].path_id, serial[r].path_id);
        ExpectRunResultEq(batched[r].detail, serial[r].detail,
                          "run " + std::to_string(r) + " lanes " +
                              std::to_string(lanes) + " isa " +
                              ToString(isa));
      }
    }
  }
  SetScanIsaForTest(ScanIsa::kScalar);
  // jobs > 1 composes with batching: same samples.
  const auto threaded = analysis::RunFixedTraceCampaignBatched(
      config, t, 21, 1234, /*lanes=*/4, /*jobs=*/3);
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(threaded[r].cycles, serial[r].cycles) << "run " << r;
  }
}

TEST(SimBatchEquivalence, BatchedTvcaCampaignMatchesSerial) {
  apps::TvcaConfig app_config;
  app_config.sensor_channels = 4;
  app_config.samples_per_frame = 8;
  app_config.fir_taps = 6;
  app_config.state_dim = 8;
  app_config.integrator_steps = 6;
  app_config.control_iterations = 1;
  app_config.straightline_instructions = 200;
  app_config.dispatch_overhead = 32;
  const apps::TvcaApp app(app_config);
  const PlatformConfig config = RandLeon3Config();
  analysis::CampaignConfig cc;
  cc.runs = 30;
  cc.master_seed = 2024;
  cc.distinct_scenarios = 5;
  Platform platform(config, 1);
  const auto serial = analysis::RunTvcaCampaign(platform, app, cc);
  for (const ScanIsa isa : TestableIsas()) {
    SetScanIsaForTest(isa);
    const auto batched =
        analysis::RunTvcaCampaignBatched(config, app, cc, /*lanes=*/4,
                                         /*jobs=*/2);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(batched[r].path_id, serial[r].path_id) << "run " << r;
      ExpectRunResultEq(batched[r].detail, serial[r].detail,
                        "run " + std::to_string(r) + " isa " +
                            ToString(isa));
    }
  }
}

TEST(SimBatchEquivalence, FreshInputTvcaCampaignFallsBackIdentically) {
  // distinct_scenarios == 0 means every run has a distinct trace — there
  // is nothing to batch, and the runner must still produce the serial
  // samples (it delegates to the parallel runner).
  apps::TvcaConfig app_config;
  app_config.sensor_channels = 2;
  app_config.samples_per_frame = 4;
  app_config.fir_taps = 4;
  app_config.state_dim = 4;
  app_config.integrator_steps = 2;
  app_config.control_iterations = 1;
  app_config.straightline_instructions = 64;
  app_config.dispatch_overhead = 16;
  const apps::TvcaApp app(app_config);
  const PlatformConfig config = RandLeon3Config();
  analysis::CampaignConfig cc;
  cc.runs = 9;
  cc.master_seed = 77;
  cc.distinct_scenarios = 0;
  Platform platform(config, 1);
  const auto serial = analysis::RunTvcaCampaign(platform, app, cc);
  const auto batched =
      analysis::RunTvcaCampaignBatched(config, app, cc, /*lanes=*/4);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(batched[r].cycles, serial[r].cycles) << "run " << r;
  }
}

}  // namespace
}  // namespace spta::sim::batch
