// Property/fuzz battery for the lockstep batch kernel, plus the
// thread-composition tests that the TSan recipe runs (`-L batch`).
//
// A seeded generator drives random (geometry, trace-prefix, lane-count)
// triples through the batched kernel and a dedicated serial simulation of
// every lane, asserting full result equality. Unlike the fixed-matrix
// equivalence battery, each iteration samples the configuration space
// (cache sizes/ways/lines, TLB entries, placement x replacement, FPU mode,
// store-buffer depth, trace prefix length, lane count, scan ISA), so a
// divergence that only manifests under an odd geometry or a short ragged
// trace still has a chance to surface — and the failing iteration index
// pins a deterministic reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/batch_campaign.hpp"
#include "analysis/campaign.hpp"
#include "analysis/checkpoint.hpp"
#include "prng/xoshiro.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/batch/simd.hpp"
#include "sim/config.hpp"
#include "sim/platform.hpp"
#include "trace/synthetic.hpp"

namespace spta::sim::batch {
namespace {

template <typename T, std::size_t N>
T Pick(prng::Xoshiro128pp& rng, const T (&options)[N]) {
  return options[rng.UniformBelow(static_cast<std::uint32_t>(N))];
}

CacheConfig RandomCacheConfig(prng::Xoshiro128pp& rng) {
  const std::uint32_t line_bytes = Pick(rng, {16u, 32u, 64u});
  const std::uint32_t ways = Pick(rng, {1u, 2u, 4u, 8u});
  const std::uint32_t sets = Pick(rng, {8u, 16u, 32u, 64u, 128u});
  const Placement placement =
      Pick(rng, {Placement::kModulo, Placement::kRandomModulo,
                 Placement::kHashRandom});
  const Replacement replacement =
      Pick(rng, {Replacement::kLru, Replacement::kRandom,
                 Replacement::kNru});
  return CacheConfig{line_bytes * ways * sets, line_bytes, ways, placement,
                     replacement};
}

PlatformConfig RandomPlatformConfig(prng::Xoshiro128pp& rng) {
  PlatformConfig config = RandLeon3Config();
  config.il1 = RandomCacheConfig(rng);
  config.dl1 = RandomCacheConfig(rng);
  config.itlb.entries = Pick(rng, {4u, 8u, 16u, 64u});
  config.itlb.replacement = Pick(
      rng,
      {Replacement::kLru, Replacement::kRandom, Replacement::kNru});
  config.dtlb.entries = Pick(rng, {4u, 8u, 16u, 64u});
  config.dtlb.replacement = Pick(
      rng,
      {Replacement::kLru, Replacement::kRandom, Replacement::kNru});
  config.fpu.mode =
      Pick(rng, {FpuMode::kVariable, FpuMode::kWorstCaseFixed});
  config.store_buffer.depth = Pick(rng, {1u, 2u, 8u});
  return config;
}

TEST(SimBatchProperty, RandomGeometryTracePrefixLaneTriples) {
  prng::Xoshiro128pp rng(20170327);
  trace::BlendSpec spec;
  spec.count = 6000;
  const trace::Trace full = trace::BlendTrace(spec, 4321);
  constexpr int kIterations = 25;
  for (int iter = 0; iter < kIterations; ++iter) {
    const PlatformConfig config = RandomPlatformConfig(rng);
    // Random trace prefix: short ragged prefixes stress the first-record
    // flags and tiny bulk runs; full length stresses steady state.
    trace::Trace t;
    t.path_signature = full.path_signature;
    const std::size_t prefix =
        1 + rng.UniformBelow(static_cast<std::uint32_t>(
                full.records.size()));
    t.records.assign(full.records.begin(),
                     full.records.begin() + prefix);
    const std::size_t lanes = 1 + rng.UniformBelow(8);
    // Alternate the scan ISA across iterations (both paths must agree).
    const ScanIsa isa = SetScanIsaForTest(
        iter % 2 == 0 ? ScanIsa::kScalar : ScanIsa::kAvx2);

    const PreparedTrace prepared = PrepareTrace(t, config);
    BatchPlatform batch(config, lanes);
    Platform platform(config, 1);
    std::vector<Seed> seeds;
    for (std::size_t l = 0; l < lanes; ++l) {
      const Seed hi = rng.Next();
      const Seed lo = rng.Next();
      seeds.push_back((hi << 32) | lo);
    }
    const auto results = batch.RunBatch(prepared, seeds);
    for (std::size_t l = 0; l < lanes; ++l) {
      const RunResult serial = platform.Run(t, seeds[l]);
      const std::string what =
          "iteration " + std::to_string(iter) + " lane " +
          std::to_string(l) + " prefix " + std::to_string(prefix) +
          " lanes " + std::to_string(lanes) + " isa " + ToString(isa);
      ASSERT_EQ(results[l].cycles, serial.cycles) << what;
      ASSERT_EQ(results[l].il1.misses, serial.il1.misses) << what;
      ASSERT_EQ(results[l].dl1.misses, serial.dl1.misses) << what;
      ASSERT_EQ(results[l].itlb.misses, serial.itlb.misses) << what;
      ASSERT_EQ(results[l].dtlb.misses, serial.dtlb.misses) << what;
      ASSERT_EQ(results[l].prng.words, serial.prng.words) << what;
      ASSERT_EQ(results[l].prng.rejections, serial.prng.rejections)
          << what;
      ASSERT_EQ(results[l].store_buffer.stall_cycles,
                serial.store_buffer.stall_cycles)
          << what;
    }
  }
  SetScanIsaForTest(CpuHasAvx2() ? ScanIsa::kAvx2 : ScanIsa::kScalar);
}

// --- Thread composition (the TSan targets of the batch label). -----------

TEST(SimBatchProperty, JobSweepYieldsIdenticalSamples) {
  trace::BlendSpec spec;
  spec.count = 5000;
  const trace::Trace t = trace::BlendTrace(spec, 17);
  const PlatformConfig config = RandLeon3Config();
  const auto baseline = analysis::RunFixedTraceCampaignBatched(
      config, t, 26, 909, /*lanes=*/4, /*jobs=*/1);
  for (const std::size_t jobs : {2u, 3u, 5u}) {
    const auto samples = analysis::RunFixedTraceCampaignBatched(
        config, t, 26, 909, /*lanes=*/4, jobs);
    ASSERT_EQ(samples.size(), baseline.size());
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      ASSERT_EQ(samples[r].cycles, baseline[r].cycles)
          << "jobs " << jobs << " run " << r;
      ASSERT_EQ(samples[r].detail.prng.words,
                baseline[r].detail.prng.words)
          << "jobs " << jobs << " run " << r;
    }
  }
}

TEST(SimBatchProperty, BatchedCheckpointInteropWithSerialRunner) {
  // A journal started by the BATCHED runner (aborted mid-campaign) must
  // resume under the SERIAL checkpointed runner — and the combined sample
  // vector must equal an uninterrupted serial campaign. This pins the
  // header/format compatibility the docs promise.
  trace::BlendSpec spec;
  spec.count = 4000;
  const trace::Trace t = trace::BlendTrace(spec, 3);
  const PlatformConfig config = RandLeon3Config();
  const std::string journal =
      testing::TempDir() + "/batch_interop_journal.ckpt";

  analysis::CheckpointOptions first;
  first.journal_path = journal;
  first.abort_after_appends = 7;
  analysis::CheckpointedCampaignResult partial;
  std::string error;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignBatchedCheckpointed(
      config, t, 18, 606, /*lanes=*/4, /*jobs=*/2, first, &partial,
      &error))
      << error;
  EXPECT_FALSE(partial.completed);

  analysis::CheckpointOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  analysis::CheckpointedCampaignResult finished;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignCheckpointed(
      config, t, 18, 606, /*jobs=*/1, resume, &finished, &error))
      << error;
  EXPECT_TRUE(finished.completed);
  EXPECT_EQ(finished.resumed_runs, 7u);

  Platform platform(config, 1);
  const auto reference =
      analysis::RunFixedTraceCampaign(platform, t, 18, 606);
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(finished.samples[r].cycles, reference[r].cycles)
        << "run " << r;
  }

  // And the reverse hand-off: serial start, batched finish.
  const std::string journal2 =
      testing::TempDir() + "/batch_interop_journal2.ckpt";
  analysis::CheckpointOptions first2;
  first2.journal_path = journal2;
  first2.abort_after_appends = 5;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignCheckpointed(
      config, t, 18, 606, /*jobs=*/1, first2, &partial, &error))
      << error;
  EXPECT_FALSE(partial.completed);
  analysis::CheckpointOptions resume2;
  resume2.journal_path = journal2;
  resume2.resume = true;
  ASSERT_TRUE(analysis::RunFixedTraceCampaignBatchedCheckpointed(
      config, t, 18, 606, /*lanes=*/4, /*jobs=*/2, resume2, &finished,
      &error))
      << error;
  EXPECT_TRUE(finished.completed);
  EXPECT_EQ(finished.resumed_runs, 5u);
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(finished.samples[r].cycles, reference[r].cycles)
        << "run " << r;
  }
  std::remove(journal.c_str());
  std::remove(journal2.c_str());
}

TEST(SimBatchProperty, TvcaBatchedCheckpointResume) {
  apps::TvcaConfig app_config;
  app_config.sensor_channels = 2;
  app_config.samples_per_frame = 4;
  app_config.fir_taps = 4;
  app_config.state_dim = 4;
  app_config.integrator_steps = 2;
  app_config.control_iterations = 1;
  app_config.straightline_instructions = 64;
  app_config.dispatch_overhead = 16;
  const apps::TvcaApp app(app_config);
  const PlatformConfig config = RandLeon3Config();
  analysis::CampaignConfig cc;
  cc.runs = 20;
  cc.master_seed = 8;
  cc.distinct_scenarios = 3;
  const std::string journal =
      testing::TempDir() + "/batch_tvca_journal.ckpt";

  analysis::CheckpointOptions first;
  first.journal_path = journal;
  first.abort_after_appends = 9;
  analysis::CheckpointedCampaignResult partial;
  std::string error;
  ASSERT_TRUE(analysis::RunTvcaCampaignBatchedCheckpointed(
      config, app, cc, /*lanes=*/4, /*jobs=*/2, first, &partial, &error))
      << error;
  EXPECT_FALSE(partial.completed);

  analysis::CheckpointOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  analysis::CheckpointedCampaignResult finished;
  ASSERT_TRUE(analysis::RunTvcaCampaignBatchedCheckpointed(
      config, app, cc, /*lanes=*/4, /*jobs=*/2, resume, &finished, &error))
      << error;
  EXPECT_TRUE(finished.completed);

  Platform platform(config, 1);
  const auto reference = analysis::RunTvcaCampaign(platform, app, cc);
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(finished.samples[r].cycles, reference[r].cycles)
        << "run " << r;
    EXPECT_EQ(finished.samples[r].path_id, reference[r].path_id);
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace spta::sim::batch
