// Differential equivalence battery: optimized fast-path cache/TLB vs the
// retained reference implementations (sim/reference_model.hpp).
//
// The fast-path refactor (flat SoA layout, branch-free scans, MRU
// shortcuts, batched replacement PRNG) claims bit-identical observable
// behavior. These tests make that claim falsifiable: both implementations
// consume the same randomized address streams under every placement x
// replacement combination, across geometries from direct-mapped to fully
// associative, with flushes and reseeds interleaved — and must agree on
// every single hit/miss outcome, on the placement function, and on the
// final statistics. A one-draw divergence in PRNG consumption desyncs the
// random-replacement victim sequence and fails the stream comparison
// within a few accesses, so the battery also pins the PRNG protocol.
//
// The PolicyComboGoldens test freezes end-to-end platform cycle counts for
// all nine combos, captured from the pre-refactor tree: even a coordinated
// change to both models cannot slip through silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "prng/xoshiro.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/platform.hpp"
#include "sim/reference_model.hpp"
#include "sim/tlb.hpp"
#include "trace/synthetic.hpp"

namespace spta::sim {
namespace {

constexpr Placement kPlacements[] = {Placement::kModulo,
                                     Placement::kRandomModulo,
                                     Placement::kHashRandom};
constexpr Replacement kReplacements[] = {Replacement::kLru,
                                         Replacement::kRandom,
                                         Replacement::kNru};

/// Address stream with the access shapes the simulator actually sees:
/// sequential bursts (code fetch), strided walks (arrays), hot-set reuse
/// and uniform scatter — plus the occasional no-allocate access (store
/// path) encoded in the second member.
struct AccessOp {
  Address addr = 0;
  bool allocate = true;
};

std::vector<AccessOp> MakeStream(std::uint64_t seed, std::size_t count,
                                 std::uint32_t line_bytes) {
  prng::Xoshiro128pp rng(seed);
  std::vector<AccessOp> ops;
  ops.reserve(count);
  Address cursor = 0x40000000;
  std::vector<Address> hot(8);
  for (auto& h : hot) h = 0x40000000 + 4096ULL * rng.UniformBelow(256);
  while (ops.size() < count) {
    switch (rng.UniformBelow(4)) {
      case 0:  // sequential burst
        for (std::uint32_t i = 0; i < 16 && ops.size() < count; ++i) {
          ops.push_back({cursor, true});
          cursor += 4;
        }
        break;
      case 1: {  // strided walk, stride a few lines
        const Address stride = line_bytes * (1 + rng.UniformBelow(5));
        Address a = 0x40000000 + 64ULL * rng.UniformBelow(4096);
        for (std::uint32_t i = 0; i < 8 && ops.size() < count; ++i) {
          ops.push_back({a, rng.UniformBelow(8) != 0});
          a += stride;
        }
        break;
      }
      case 2:  // hot-set reuse
        ops.push_back({hot[rng.UniformBelow(8)], true});
        break;
      default:  // uniform scatter over 1 MiB
        ops.push_back({0x40000000 + 4ULL * rng.UniformBelow(1 << 18),
                       rng.UniformBelow(8) != 0});
        break;
    }
  }
  return ops;
}

void RunCacheDifferential(const CacheConfig& config, Seed seed,
                          std::uint64_t stream_seed) {
  Cache fast(config, seed);
  ReferenceCache reference(config, seed);
  const auto ops = MakeStream(stream_seed, 4000, config.line_bytes);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(reference.SetIndexFor(ops[i].addr),
              fast.SetIndexFor(ops[i].addr))
        << "placement diverged at access " << i;
    const bool ref_hit = reference.Access(ops[i].addr, ops[i].allocate);
    const bool fast_hit = fast.Access(ops[i].addr, ops[i].allocate);
    ASSERT_EQ(ref_hit, fast_hit)
        << "hit/miss diverged at access " << i << " addr " << std::hex
        << ops[i].addr << std::dec << " allocate " << ops[i].allocate;
    // Mid-stream flush and reseed at fixed points: both models must
    // restart from identical (empty, reseeded) state.
    if (i == ops.size() / 3) {
      reference.Flush();
      fast.Flush();
    }
    if (i == 2 * ops.size() / 3) {
      reference.Reseed(seed + 17);
      fast.Reseed(seed + 17);
    }
  }
  EXPECT_EQ(reference.stats().accesses, fast.stats().accesses);
  EXPECT_EQ(reference.stats().misses, fast.stats().misses);
}

TEST(SimEquivalenceTest, CacheAllPolicyCombos) {
  for (const auto placement : kPlacements) {
    for (const auto replacement : kReplacements) {
      CacheConfig config{16 * 1024, 32, 4, placement, replacement};
      for (Seed seed : {Seed{1}, Seed{42}, Seed{0xabcdef}}) {
        RunCacheDifferential(config, seed, seed * 31 + 7);
      }
    }
  }
}

TEST(SimEquivalenceTest, CacheGeometryMatrix) {
  // Direct-mapped through fully associative (64 ways x 1 set exercises
  // the sentinel validity encoding at the ref-bit word boundary).
  const CacheConfig geometries[] = {
      {4 * 1024, 32, 1, Placement::kRandomModulo, Replacement::kRandom},
      {4 * 1024, 16, 2, Placement::kHashRandom, Replacement::kRandom},
      {8 * 1024, 32, 8, Placement::kRandomModulo, Replacement::kNru},
      {64 * 32, 32, 64, Placement::kModulo, Replacement::kRandom},
      {64 * 32, 32, 64, Placement::kModulo, Replacement::kLru},
  };
  for (const auto& config : geometries) {
    RunCacheDifferential(config, 9, 1234);
    RunCacheDifferential(config, 10, 99);
  }
}

TEST(SimEquivalenceTest, CacheMruShortcutThrash) {
  // Adversarial pattern for the MRU shortcut: alternate two lines that
  // map to the same set (eviction repeatedly invalidates the remembered
  // slot) in a direct-mapped cache, interleaved with revisits.
  CacheConfig config{1024, 32, 1, Placement::kModulo, Replacement::kLru};
  Cache fast(config, 3);
  ReferenceCache reference(config, 3);
  const std::uint32_t sets = config.num_sets();
  const Address a = 0x1000;
  const Address b = a + static_cast<Address>(sets) * config.line_bytes;
  const Address c = b + static_cast<Address>(sets) * config.line_bytes;
  const Address pattern[] = {a, b, a, b, c, a, c, b, a, a, b, c};
  for (int round = 0; round < 200; ++round) {
    for (const Address addr : pattern) {
      ASSERT_EQ(reference.Access(addr), fast.Access(addr));
    }
  }
  EXPECT_EQ(reference.stats().misses, fast.stats().misses);
}

void RunTlbDifferential(const TlbConfig& config, Seed seed,
                        std::uint64_t stream_seed) {
  Tlb fast(config, seed);
  ReferenceTlb reference(config, seed);
  // Page-granular stream: locality bursts + scatter over 512 pages so
  // small TLBs thrash and 64-entry ones see reuse.
  prng::Xoshiro128pp rng(stream_seed);
  Address page = 0;
  for (std::size_t i = 0; i < 6000; ++i) {
    if (rng.UniformBelow(4) == 0) page = rng.UniformBelow(512);
    const Address addr = page * config.page_bytes + rng.UniformBelow(4096);
    ASSERT_EQ(reference.Access(addr), fast.Access(addr))
        << "TLB diverged at access " << i;
    if (i == 2000) {
      reference.Flush();
      fast.Flush();
    }
    if (i == 4000) {
      reference.Reseed(seed ^ 0x5555);
      fast.Reseed(seed ^ 0x5555);
    }
  }
  EXPECT_EQ(reference.stats().accesses, fast.stats().accesses);
  EXPECT_EQ(reference.stats().misses, fast.stats().misses);
}

TEST(SimEquivalenceTest, TlbAllReplacementPolicies) {
  for (const auto replacement : kReplacements) {
    for (std::uint32_t entries : {4u, 8u, 64u}) {
      TlbConfig config;
      config.entries = entries;
      config.replacement = replacement;
      for (Seed seed : {Seed{1}, Seed{2024}}) {
        RunTlbDifferential(config, seed, seed + entries);
      }
    }
  }
}

// End-to-end anchor: platform cycle counts for every placement x
// replacement combination on a fixed blend trace, frozen from the
// pre-refactor tree. Indices follow the enum order (placement: modulo,
// random-modulo, hash-random; replacement: LRU, random, NRU).
TEST(SimEquivalenceTest, PolicyComboGoldens) {
  struct Golden {
    int placement;
    int replacement;
    std::uint64_t cycles[3];  // run seeds 1, 2, 3
  };
  const Golden goldens[] = {
      {0, 0, {401567, 401567, 401567}}, {0, 1, {399190, 398718, 402619}},
      {0, 2, {402947, 402947, 402947}}, {1, 0, {399247, 402232, 401535}},
      {1, 1, {400301, 403257, 400180}}, {1, 2, {398291, 400329, 401479}},
      {2, 0, {420001, 423916, 424635}}, {2, 1, {417869, 426361, 423357}},
      {2, 2, {418238, 424671, 423770}},
  };
  trace::BlendSpec spec;
  spec.count = 20000;
  const trace::Trace t = trace::BlendTrace(spec, 2024);
  for (const auto& golden : goldens) {
    PlatformConfig config = RandLeon3Config();
    config.il1.placement = kPlacements[golden.placement];
    config.il1.replacement = kReplacements[golden.replacement];
    config.dl1.placement = kPlacements[golden.placement];
    config.dl1.replacement = kReplacements[golden.replacement];
    config.itlb.replacement = kReplacements[golden.replacement];
    config.dtlb.replacement = kReplacements[golden.replacement];
    Platform platform(config, 1);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EXPECT_EQ(platform.Run(t, seed).cycles, golden.cycles[seed - 1])
          << "placement " << golden.placement << " replacement "
          << golden.replacement << " run seed " << seed;
    }
  }
}

}  // namespace
}  // namespace spta::sim
