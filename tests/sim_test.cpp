// Tests for the non-cache simulator components: TLB, FPU, bus, DRAM, store
// buffer, core timing and the platform measurement protocol.
#include <gtest/gtest.h>

#include <set>

#include "sim/bus.hpp"
#include "sim/core.hpp"
#include "sim/dram.hpp"
#include "sim/fpu.hpp"
#include "sim/memory_system.hpp"
#include "sim/platform.hpp"
#include "sim/store_buffer.hpp"
#include "sim/tlb.hpp"
#include "trace/synthetic.hpp"

namespace spta::sim {
namespace {

// --- TLB -------------------------------------------------------------------

TEST(TlbTest, MissThenHitSamePage) {
  Tlb tlb(TlbConfig{4, 4096, Replacement::kLru, 30}, 1);
  EXPECT_FALSE(tlb.Access(0x1000));
  EXPECT_TRUE(tlb.Access(0x1fff));
  EXPECT_FALSE(tlb.Access(0x2000));
}

TEST(TlbTest, LruEvictionOrder) {
  Tlb tlb(TlbConfig{2, 4096, Replacement::kLru, 30}, 1);
  tlb.Access(0x0000);   // page 0
  tlb.Access(0x1000);   // page 1
  tlb.Access(0x0000);   // page 0 now MRU
  tlb.Access(0x2000);   // evicts page 1
  EXPECT_TRUE(tlb.Access(0x0000));
  EXPECT_FALSE(tlb.Access(0x1000));
}

TEST(TlbTest, CapacityHolds64Pages) {
  Tlb tlb(TlbConfig{64, 4096, Replacement::kLru, 30}, 1);
  for (Address p = 0; p < 64; ++p) tlb.Access(p * 4096);
  for (Address p = 0; p < 64; ++p) {
    EXPECT_TRUE(tlb.Access(p * 4096)) << "page " << p;
  }
}

TEST(TlbTest, RandomReplacementSeedDeterministic) {
  const auto run = [](Seed s) {
    Tlb tlb(TlbConfig{4, 4096, Replacement::kRandom, 30}, s);
    std::uint64_t misses = 0;
    for (int i = 0; i < 500; ++i) {
      misses += !tlb.Access(static_cast<Address>(i % 6) * 4096);
    }
    return misses;
  };
  EXPECT_EQ(run(5), run(5));
  std::set<std::uint64_t> distinct;
  for (Seed s = 0; s < 8; ++s) distinct.insert(run(s));
  EXPECT_GT(distinct.size(), 2u);
}

TEST(TlbTest, FlushAndReseed) {
  Tlb tlb(TlbConfig{8, 4096, Replacement::kRandom, 30}, 1);
  tlb.Access(0x5000);
  tlb.Flush();
  EXPECT_FALSE(tlb.Access(0x5000));
  tlb.Reseed(99);
  EXPECT_FALSE(tlb.Access(0x5000));
}

// --- FPU -------------------------------------------------------------------

TEST(FpuTest, FixedLatencyOpsAreJitterless) {
  FpuConfig cfg;
  cfg.mode = FpuMode::kVariable;
  Fpu fpu(cfg);
  for (std::uint8_t cls = 0; cls < trace::kFpuOperandClasses; ++cls) {
    EXPECT_EQ(fpu.Latency(trace::OpClass::kFpAdd, cls), cfg.add_latency);
    EXPECT_EQ(fpu.Latency(trace::OpClass::kFpMul, cls), cfg.mul_latency);
  }
}

TEST(FpuTest, VariableModeDependsOnOperandClass) {
  FpuConfig cfg;
  cfg.mode = FpuMode::kVariable;
  Fpu fpu(cfg);
  const Cycles lat0 = fpu.Latency(trace::OpClass::kFpDiv, 0);
  const Cycles lat3 = fpu.Latency(trace::OpClass::kFpDiv, 3);
  EXPECT_LT(lat0, lat3);
  EXPECT_EQ(lat0, cfg.div_base);
  EXPECT_EQ(lat3, cfg.div_base + 3 * cfg.div_step);
}

TEST(FpuTest, WorstCaseModeChargesMaximumAlways) {
  FpuConfig cfg;
  cfg.mode = FpuMode::kWorstCaseFixed;
  Fpu fpu(cfg);
  const Cycles worst = fpu.WorstCaseLatency(trace::OpClass::kFpDiv);
  for (std::uint8_t cls = 0; cls < trace::kFpuOperandClasses; ++cls) {
    EXPECT_EQ(fpu.Latency(trace::OpClass::kFpDiv, cls), worst);
    EXPECT_EQ(fpu.Latency(trace::OpClass::kFpSqrt, cls),
              fpu.WorstCaseLatency(trace::OpClass::kFpSqrt));
  }
}

TEST(FpuTest, WorstCaseUpperBoundsVariable) {
  // The MBPTA argument: analysis-phase latency >= any operation latency.
  FpuConfig cfg;
  cfg.mode = FpuMode::kVariable;
  Fpu variable(cfg);
  cfg.mode = FpuMode::kWorstCaseFixed;
  Fpu fixed(cfg);
  for (auto op : {trace::OpClass::kFpDiv, trace::OpClass::kFpSqrt}) {
    for (std::uint8_t cls = 0; cls < trace::kFpuOperandClasses; ++cls) {
      EXPECT_LE(variable.Latency(op, cls), fixed.Latency(op, cls));
    }
  }
}

TEST(FpuTest, StatsAccumulate) {
  Fpu fpu(FpuConfig{});
  fpu.Latency(trace::OpClass::kFpAdd, 0);
  fpu.Latency(trace::OpClass::kFpMul, 0);
  EXPECT_EQ(fpu.stats().operations, 2u);
  EXPECT_GT(fpu.stats().total_cycles, 0u);
}

// --- Bus -------------------------------------------------------------------

TEST(BusTest, GrantsImmediatelyWhenFree) {
  Bus bus(BusConfig{});
  EXPECT_EQ(bus.Acquire(0, 100, 10), 100u);
  EXPECT_EQ(bus.free_at(), 110u);
}

TEST(BusTest, SerializesOverlappingRequests) {
  Bus bus(BusConfig{});
  bus.Acquire(0, 100, 10);
  EXPECT_EQ(bus.Acquire(1, 105, 10), 110u);  // waits for the bus
  EXPECT_EQ(bus.stats().wait_cycles, 5u);
  EXPECT_EQ(bus.stats().transactions, 2u);
}

TEST(BusTest, NoWaitAfterIdleGap) {
  Bus bus(BusConfig{});
  bus.Acquire(0, 0, 10);
  EXPECT_EQ(bus.Acquire(1, 50, 10), 50u);
  EXPECT_EQ(bus.stats().wait_cycles, 0u);
}

TEST(BusTest, ResetClearsHorizon) {
  Bus bus(BusConfig{});
  bus.Acquire(0, 0, 100);
  bus.Reset();
  EXPECT_EQ(bus.Acquire(0, 0, 1), 0u);
}

// --- DRAM ------------------------------------------------------------------

TEST(DramTest, RowHitAfterRowMiss) {
  Dram dram(DramConfig{});
  const Cycles first = dram.AccessLatency(0x10000);
  const Cycles second = dram.AccessLatency(0x10010);  // same row
  EXPECT_EQ(first, dram.config().row_miss_latency);
  EXPECT_EQ(second, dram.config().row_hit_latency);
  EXPECT_EQ(dram.stats().row_hits, 1u);
}

TEST(DramTest, DifferentBanksIndependentRows) {
  Dram dram(DramConfig{});
  const Address bank0_row0 = 0;
  const Address bank1_row0 = dram.config().row_bytes;  // next bank
  ASSERT_NE(dram.BankOf(bank0_row0), dram.BankOf(bank1_row0));
  dram.AccessLatency(bank0_row0);
  dram.AccessLatency(bank1_row0);
  // Both rows stay open.
  EXPECT_EQ(dram.AccessLatency(bank0_row0 + 8),
            dram.config().row_hit_latency);
  EXPECT_EQ(dram.AccessLatency(bank1_row0 + 8),
            dram.config().row_hit_latency);
}

TEST(DramTest, RowConflictReopens) {
  Dram dram(DramConfig{});
  const Address row0 = 0;
  const Address row1 =
      static_cast<Address>(dram.config().row_bytes) * dram.config().banks;
  ASSERT_EQ(dram.BankOf(row0), dram.BankOf(row1));
  ASSERT_NE(dram.RowOf(row0), dram.RowOf(row1));
  dram.AccessLatency(row0);
  EXPECT_EQ(dram.AccessLatency(row1), dram.config().row_miss_latency);
  EXPECT_EQ(dram.AccessLatency(row0), dram.config().row_miss_latency);
}

TEST(DramTest, ResetClosesRows) {
  Dram dram(DramConfig{});
  dram.AccessLatency(0);
  dram.Reset();
  EXPECT_EQ(dram.AccessLatency(0), dram.config().row_miss_latency);
}

// --- L2 + refresh -------------------------------------------------------------

TEST(L2Test, SecondFillHitsInL2) {
  L2Config l2;
  l2.enabled = true;
  MemorySystem mem(BusConfig{}, DramConfig{}, l2, 1);
  const Cycles first = mem.LineFill(0, 0x1000, 0) - 0;
  // Same line again (as if the L1 evicted it): now an L2 hit, much faster.
  const Cycles t1 = mem.LineFill(0, 0x1000, 10000);
  const Cycles second = t1 - 10000;
  EXPECT_LT(second, first);
  EXPECT_EQ(second, l2.hit_latency + BusConfig{}.line_transfer_cycles);
}

TEST(L2Test, StoreDoesNotAllocate) {
  L2Config l2;
  l2.enabled = true;
  MemorySystem mem(BusConfig{}, DramConfig{}, l2, 1);
  mem.Store(0, 0x2000, 0);
  // A later fill of the stored line must still go to DRAM (no allocation).
  const Cycles fill = mem.LineFill(0, 0x2000, 10000) - 10000;
  EXPECT_GT(fill, l2.hit_latency + BusConfig{}.line_transfer_cycles);
}

TEST(L2Test, ResetFlushesAndStatsExposed) {
  L2Config l2;
  l2.enabled = true;
  MemorySystem mem(BusConfig{}, DramConfig{}, l2, 1);
  mem.LineFill(0, 0x3000, 0);
  ASSERT_NE(mem.l2(), nullptr);
  EXPECT_EQ(mem.l2()->stats().misses, 1u);
  mem.Reset(99);
  EXPECT_EQ(mem.l2()->stats().accesses, 0u);
  const Cycles fill = mem.LineFill(0, 0x3000, 0) - 0;
  EXPECT_GT(fill, l2.hit_latency + BusConfig{}.line_transfer_cycles);
}

TEST(L2Test, DisabledByDefault) {
  MemorySystem mem(BusConfig{}, DramConfig{});
  EXPECT_EQ(mem.l2(), nullptr);
}

TEST(DramRefreshTest, AccessInsideWindowStalls) {
  DramConfig cfg;
  cfg.refresh_interval = 1000;
  cfg.refresh_duration = 100;
  Dram dram(cfg);
  // At phase 40 the refresh (0..100) is in progress: wait 60 extra.
  const Cycles stalled = dram.AccessLatency(0, 1040);
  EXPECT_EQ(stalled, 60 + cfg.row_miss_latency);
  EXPECT_EQ(dram.stats().refresh_stall_cycles, 60u);
  // Outside the window: no stall.
  dram.Reset();
  EXPECT_EQ(dram.AccessLatency(0, 1500), cfg.row_miss_latency);
}

TEST(DramRefreshTest, DisabledByDefault) {
  Dram dram(DramConfig{});
  EXPECT_EQ(dram.AccessLatency(0, 5), DramConfig{}.row_miss_latency);
  EXPECT_EQ(dram.stats().refresh_stall_cycles, 0u);
}

TEST(L2Test, PlatformWithRandomizedL2StillSeedDeterministic) {
  auto cfg = RandLeon3Config();
  cfg.l2.enabled = true;
  cfg.l2.cache.placement = Placement::kRandomModulo;
  cfg.l2.cache.replacement = Replacement::kRandom;
  const trace::Trace t = trace::BlendTrace({}, 21);
  Platform p(cfg, 1);
  EXPECT_EQ(p.Run(t, 5).cycles, p.Run(t, 5).cycles);
  EXPECT_NE(p.Run(t, 5).cycles, 0u);
}

// --- Store buffer ------------------------------------------------------------

TEST(StoreBufferTest, NoStallWhileNotFull) {
  StoreBuffer sb(StoreBufferConfig{4});
  Cycles now = 100;
  for (int i = 0; i < 4; ++i) {
    now = sb.Push(now, [](Cycles ready) { return ready + 50; });
    EXPECT_EQ(now, 100u);  // never stalled
  }
  EXPECT_EQ(sb.stats().full_stalls, 0u);
  EXPECT_EQ(sb.in_flight(), 4u);
}

TEST(StoreBufferTest, StallsWhenFull) {
  StoreBuffer sb(StoreBufferConfig{2});
  Cycles now = 0;
  now = sb.Push(now, [](Cycles r) { return r + 100; });  // completes @100
  now = sb.Push(now, [](Cycles r) { return r + 100; });  // completes @200
  // Buffer full; third store waits until the first completes (t=100).
  now = sb.Push(now, [](Cycles r) { return r + 100; });
  EXPECT_EQ(now, 100u);
  EXPECT_EQ(sb.stats().full_stalls, 1u);
  EXPECT_EQ(sb.stats().stall_cycles, 100u);
}

TEST(StoreBufferTest, FifoDrainOrderSerializes) {
  StoreBuffer sb(StoreBufferConfig{8});
  std::vector<Cycles> starts;
  Cycles now = 0;
  for (int i = 0; i < 3; ++i) {
    now = sb.Push(now, [&](Cycles r) {
      starts.push_back(r);
      return r + 10;
    });
  }
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 10u);  // waits for the previous drain
  EXPECT_EQ(starts[2], 20u);
}

TEST(StoreBufferTest, DrainAllWaitsForLastStore) {
  StoreBuffer sb(StoreBufferConfig{8});
  Cycles now = sb.Push(0, [](Cycles r) { return r + 75; });
  EXPECT_EQ(sb.DrainAll(now), 75u);
  EXPECT_EQ(sb.in_flight(), 0u);
}

// --- Core + platform ---------------------------------------------------------

TEST(CoreTest, PureAluTraceHasUnitCpiPlusFetchMisses) {
  PlatformConfig cfg = DetLeon3Config();
  MemorySystem mem(cfg.bus, cfg.dram);
  Core core(cfg, 0, &mem, 1);
  // 100 ALU instructions in a tight 2-line code loop: 1 ITLB miss, 1-2 IL1
  // misses, then 1 cycle each.
  trace::Trace t;
  for (int i = 0; i < 100; ++i) {
    trace::TraceRecord r;
    r.pc = 0x40000000 + 4 * (i % 8);
    r.op = trace::OpClass::kIntAlu;
    t.records.push_back(r);
  }
  const RunResult res = core.Run(t);
  EXPECT_EQ(res.instructions, 100u);
  EXPECT_EQ(res.itlb.misses, 1u);
  EXPECT_EQ(res.il1.misses, 1u);
  // 100 cycles execute + 1 TLB walk + 1 line fill.
  const Cycles fill = cfg.dram.row_miss_latency + cfg.bus.line_transfer_cycles;
  EXPECT_EQ(res.cycles, 100u + cfg.itlb.miss_penalty + fill);
}

TEST(CoreTest, TakenBranchPenaltyApplied) {
  PlatformConfig cfg = DetLeon3Config();
  MemorySystem mem(cfg.bus, cfg.dram);
  Core core(cfg, 0, &mem, 1);
  trace::Trace t;
  trace::TraceRecord r;
  r.pc = 0x40000000;
  r.op = trace::OpClass::kBranch;
  r.branch_taken = true;
  t.records.push_back(r);
  trace::TraceRecord r2 = r;
  r2.branch_taken = false;
  t.records.push_back(r2);
  const RunResult res = core.Run(t);
  // Both branches: 1 cycle each; +2 for the taken one; plus fetch overheads.
  const Cycles fill = cfg.dram.row_miss_latency + cfg.bus.line_transfer_cycles;
  EXPECT_EQ(res.cycles,
            2u + cfg.pipeline.taken_branch_penalty + cfg.itlb.miss_penalty +
                fill);
}

TEST(CoreTest, StoreGoesThroughStoreBufferNotStall) {
  PlatformConfig cfg = DetLeon3Config();
  MemorySystem mem(cfg.bus, cfg.dram);
  Core core(cfg, 0, &mem, 1);
  const trace::Trace t =
      trace::SequentialTrace(0x40100000, 4, 32, trace::OpClass::kStore);
  const RunResult res = core.Run(t);
  EXPECT_EQ(res.store_buffer.stores, 4u);
  EXPECT_EQ(res.store_buffer.full_stalls, 0u);
  EXPECT_EQ(res.dl1.misses, 4u);  // no-write-allocate: all misses, no fill
  // End time includes the store drain.
  EXPECT_GT(res.cycles, 4u);
}

TEST(PlatformTest, MemoryPathStatsExposedInResult) {
  trace::BlendSpec spec;
  spec.count = 5000;
  const trace::Trace t = trace::BlendTrace(spec, 31);
  Platform p(RandLeon3Config(), 1);
  const RunResult res = p.Run(t, 2);
  EXPECT_GT(res.bus.transactions, 0u);
  EXPECT_GT(res.bus.busy_cycles, 0u);
  EXPECT_GT(res.dram.accesses, 0u);
  EXPECT_LE(res.dram.row_hits, res.dram.accesses);
}

TEST(PlatformTest, RunIsDeterministicPerSeed) {
  const trace::Trace t = trace::BlendTrace({}, 3);
  Platform p(RandLeon3Config(), 1);
  const RunResult a = p.Run(t, 42);
  const RunResult b = p.Run(t, 42);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dl1.misses, b.dl1.misses);
}

TEST(PlatformTest, RandVariesAcrossSeedsDetDoesNot) {
  trace::BlendSpec spec;
  spec.count = 30000;
  spec.data_bytes = 40 * 1024;  // larger than DL1: placement matters
  const trace::Trace t = trace::BlendTrace(spec, 4);

  Platform det(DetLeon3Config(), 1);
  std::set<Cycles> det_times;
  for (Seed s = 0; s < 6; ++s) det_times.insert(det.Run(t, s).cycles);
  EXPECT_EQ(det_times.size(), 1u) << "DET must ignore the seed";

  Platform rnd(RandLeon3Config(), 1);
  std::set<Cycles> rnd_times;
  for (Seed s = 0; s < 6; ++s) rnd_times.insert(rnd.Run(t, s).cycles);
  EXPECT_GT(rnd_times.size(), 1u) << "RAND must respond to the seed";
}

TEST(PlatformTest, PerRunStateIsolation) {
  // Running trace A then trace B must give B the same time as running B
  // alone: the reset protocol removes all cross-run state.
  const trace::Trace a = trace::BlendTrace({}, 5);
  const trace::Trace b = trace::BlendTrace({}, 6);
  Platform p(RandLeon3Config(), 1);
  p.Run(a, 3);
  const Cycles b_after_a = p.Run(b, 4).cycles;
  Platform fresh(RandLeon3Config(), 1);
  EXPECT_EQ(fresh.Run(b, 4).cycles, b_after_a);
}

TEST(PlatformTest, ConcurrentInterferenceSlowsVictim) {
  trace::BlendSpec spec;
  spec.count = 20000;
  spec.load_pm = 400;  // memory-heavy contenders
  const trace::Trace victim = trace::BlendTrace(spec, 7);
  trace::BlendSpec cspec = spec;
  cspec.data_base = 0x50000000;  // disjoint data
  const trace::Trace contender = trace::BlendTrace(cspec, 8);

  Platform p(RandLeon3Config(), 1);
  const std::vector<const trace::Trace*> alone = {&victim, nullptr, nullptr,
                                                  nullptr};
  const Cycles solo = p.RunConcurrent(alone, 9)[0].cycles;
  const std::vector<const trace::Trace*> loaded = {&victim, &contender,
                                                   &contender, &contender};
  const Cycles contended = p.RunConcurrent(loaded, 9)[0].cycles;
  EXPECT_GT(contended, solo);
}

TEST(PlatformTest, ConcurrentMatchesSingleWhenAlone) {
  const trace::Trace t = trace::BlendTrace({}, 10);
  Platform p(RandLeon3Config(), 1);
  const Cycles single = p.Run(t, 11).cycles;
  const std::vector<const trace::Trace*> slots = {&t, nullptr, nullptr,
                                                  nullptr};
  const Cycles concurrent = p.RunConcurrent(slots, 11)[0].cycles;
  EXPECT_EQ(single, concurrent);
}

TEST(ConfigTest, PresetsValidateAndDiffer) {
  const PlatformConfig det = DetLeon3Config();
  const PlatformConfig rnd = RandLeon3Config();
  EXPECT_EQ(det.dl1.placement, Placement::kModulo);
  EXPECT_EQ(rnd.dl1.placement, Placement::kRandomModulo);
  EXPECT_EQ(rnd.dl1.replacement, Replacement::kRandom);
  EXPECT_EQ(det.fpu.mode, FpuMode::kVariable);
  EXPECT_EQ(rnd.fpu.mode, FpuMode::kWorstCaseFixed);
  EXPECT_EQ(RandLeon3OperationConfig().fpu.mode, FpuMode::kVariable);
  EXPECT_EQ(det.il1.num_sets(), 128u);
  EXPECT_EQ(det.itlb.entries, 64u);
  EXPECT_EQ(det.cores, 4u);
}

TEST(ConfigTest, PolicyNames) {
  EXPECT_STREQ(ToString(Placement::kRandomModulo), "random-modulo");
  EXPECT_STREQ(ToString(Replacement::kNru), "nru");
}

TEST(ConfigDeathTest, BadGeometryRejected) {
  PlatformConfig cfg = DetLeon3Config();
  cfg.dl1.size_bytes = 1000;  // not divisible into power-of-two sets
  EXPECT_DEATH(cfg.Validate(), "");
}

}  // namespace
}  // namespace spta::sim
