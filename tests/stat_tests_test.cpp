// Tests for the statistical hypothesis tests backing the MBPTA i.i.d. gate:
// Ljung-Box and Kolmogorov-Smirnov, including power checks (do they reject
// when they should) and size checks (do they hold their significance level).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prng/xoshiro.hpp"
#include "stats/ks_test.hpp"
#include "stats/ljung_box.hpp"

namespace spta::stats {
namespace {

std::vector<double> IidNormal(std::size_t n, std::uint64_t seed) {
  prng::Xoshiro128pp rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Normal();
  return xs;
}

TEST(LjungBoxTest, AcceptsIidSample) {
  const auto xs = IidNormal(3000, 11);
  const auto r = LjungBoxTest(xs, 20);
  EXPECT_TRUE(r.IndependenceNotRejected(0.05));
  EXPECT_EQ(r.lags, 20u);
}

TEST(LjungBoxTest, RejectsAr1Sample) {
  prng::Xoshiro128pp rng(12);
  std::vector<double> xs(2000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.5 * prev + rng.Normal();
    x = prev;
  }
  const auto r = LjungBoxTest(xs, 20);
  EXPECT_FALSE(r.IndependenceNotRejected(0.05));
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(LjungBoxTest, ConstantSampleTriviallyIndependent) {
  const std::vector<double> xs(100, 3.0);
  const auto r = LjungBoxTest(xs, 10);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_TRUE(r.IndependenceNotRejected());
}

TEST(LjungBoxTest, SizeRoughlyMatchesAlpha) {
  // Under H0, rejections at 5% should occur ~5% of the time.
  int rejections = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const auto xs = IidNormal(500, 1000 + t);
    if (!LjungBoxTest(xs, 20).IndependenceNotRejected(0.05)) ++rejections;
  }
  // Binomial(200, 0.05): mean 10, sd ~3.1. Accept within ~4 sd.
  EXPECT_LE(rejections, 23);
}

TEST(KsTest, TwoSampleAcceptsSameDistribution) {
  const auto a = IidNormal(1500, 21);
  const auto b = IidNormal(1500, 22);
  const auto r = TwoSampleKs(a, b);
  EXPECT_TRUE(r.NotRejected(0.05));
}

TEST(KsTest, TwoSampleRejectsShiftedDistribution) {
  auto a = IidNormal(1000, 23);
  auto b = IidNormal(1000, 24);
  for (auto& x : b) x += 0.5;
  const auto r = TwoSampleKs(a, b);
  EXPECT_FALSE(r.NotRejected(0.05));
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, TwoSampleRejectsDifferentScale) {
  auto a = IidNormal(2000, 25);
  auto b = IidNormal(2000, 26);
  for (auto& x : b) x *= 2.0;
  EXPECT_FALSE(TwoSampleKs(a, b).NotRejected(0.05));
}

TEST(KsTest, StatisticBoundsAndSymmetry) {
  const auto a = IidNormal(300, 27);
  const auto b = IidNormal(400, 28);
  const auto rab = TwoSampleKs(a, b);
  const auto rba = TwoSampleKs(b, a);
  EXPECT_DOUBLE_EQ(rab.statistic, rba.statistic);
  EXPECT_GE(rab.statistic, 0.0);
  EXPECT_LE(rab.statistic, 1.0);
}

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  const auto a = IidNormal(100, 29);
  const auto r = TwoSampleKs(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTest, OneSampleAgainstTrueCdfAccepts) {
  prng::Xoshiro128pp rng(31);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.UniformUnit();
  const auto r = OneSampleKs(xs, [](double x) {
    if (x < 0.0) return 0.0;
    if (x > 1.0) return 1.0;
    return x;
  });
  EXPECT_TRUE(r.NotRejected(0.05));
}

TEST(KsTest, OneSampleAgainstWrongCdfRejects) {
  prng::Xoshiro128pp rng(32);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.UniformUnit() * 0.5;  // actually U(0, 0.5)
  const auto r = OneSampleKs(xs, [](double x) {
    if (x < 0.0) return 0.0;
    if (x > 1.0) return 1.0;
    return x;  // claims U(0,1)
  });
  EXPECT_FALSE(r.NotRejected(0.05));
}

TEST(KsTest, SplitSampleAcceptsStationarySeries) {
  const auto xs = IidNormal(3000, 33);
  EXPECT_TRUE(SplitSampleKs(xs).NotRejected(0.05));
}

TEST(KsTest, SplitSampleRejectsDrift) {
  auto xs = IidNormal(2000, 34);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += 0.001 * static_cast<double>(i);  // slow drift
  }
  EXPECT_FALSE(SplitSampleKs(xs).NotRejected(0.05));
}

// Parameterized size sweep: the KS split test should hold its level across
// sample sizes (property-style check of the asymptotic p-value).
class KsSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KsSizeSweep, HoldsSignificanceLevel) {
  int rejections = 0;
  constexpr int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    const auto xs = IidNormal(GetParam(), 5000 + t);
    if (!SplitSampleKs(xs).NotRejected(0.05)) ++rejections;
  }
  // ~5% expected; allow generous head-room (asymptotic approximation).
  EXPECT_LE(rejections, 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KsSizeSweep,
                         ::testing::Values(100, 400, 1000, 3000));

}  // namespace
}  // namespace spta::stats
