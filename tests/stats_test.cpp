// Tests for descriptive statistics, special functions, the ECDF and the
// bootstrap. Reference values cross-checked against R/scipy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prng/xoshiro.hpp"
#include "stats/autocorr.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/special.hpp"

namespace spta::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(DescriptiveTest, MeanVarianceStdDev) {
  EXPECT_DOUBLE_EQ(Mean(kSample), 5.0);
  // Population SS = 32; sample variance = 32/7.
  EXPECT_NEAR(Variance(kSample), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, MinMaxMedian) {
  EXPECT_DOUBLE_EQ(Min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(Max(kSample), 9.0);
  EXPECT_DOUBLE_EQ(Median(kSample), 4.5);
}

TEST(DescriptiveTest, QuantileType7MatchesR) {
  // R: quantile(c(1,2,3,4), 0.25) = 1.75 (type 7).
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Quantile(xs, 0.25), 1.75, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.5), 2.5, 1e-12);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_NEAR(Quantile(xs, 0.5), 2.5, 1e-12);
}

TEST(DescriptiveTest, SingleElementQuantile) {
  const std::vector<double> xs = {3.14};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.99), 3.14);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  EXPECT_NEAR(CoefficientOfVariation(kSample),
              std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
}

TEST(DescriptiveTest, SkewnessSigns) {
  const std::vector<double> right = {1, 1, 1, 1, 10};
  const std::vector<double> left = {10, 10, 10, 10, 1};
  EXPECT_GT(Skewness(right), 0.0);
  EXPECT_LT(Skewness(left), 0.0);
}

TEST(DescriptiveTest, SummarizeConsistent) {
  const Summary s = Summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
}

TEST(SpecialTest, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(3.0, 0.0), 0.0, 1e-15);
  EXPECT_NEAR(RegularizedGammaQ(3.0, 0.0), 1.0, 1e-15);
  // Complementarity on both algorithm branches (series and CF).
  for (double a : {0.5, 2.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 25.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12);
    }
  }
}

TEST(SpecialTest, ChiSquareCdfReferenceValues) {
  // scipy.stats.chi2.cdf(3.84, 1) = 0.94996...
  EXPECT_NEAR(ChiSquareCdf(3.841, 1.0), 0.95, 5e-4);
  // chi2.cdf(31.41, 20) = 0.95.
  EXPECT_NEAR(ChiSquareCdf(31.410, 20.0), 0.95, 5e-4);
  EXPECT_NEAR(ChiSquareSf(31.410, 20.0), 0.05, 5e-4);
}

TEST(SpecialTest, NormalCdfAndQuantileRoundTrip) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-6);
  for (double p : {0.001, 0.05, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
}

TEST(SpecialTest, KolmogorovSfReference) {
  // Q_KS(1.36) = 2*exp(-2*1.36^2) - ... ~= 0.0495 (just under the classic
  // 5% critical value at lambda ~= 1.358).
  EXPECT_NEAR(KolmogorovSf(1.36), 0.0495, 5e-4);
  EXPECT_NEAR(KolmogorovSf(1.358), 0.05, 5e-4);
  EXPECT_DOUBLE_EQ(KolmogorovSf(0.0), 1.0);
  EXPECT_LT(KolmogorovSf(3.0), 1e-6);
  // Monotone decreasing.
  EXPECT_GT(KolmogorovSf(0.5), KolmogorovSf(1.0));
}

TEST(SpecialTest, SolveBisectionFindsRoot) {
  const double root = SolveBisection(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(SpecialDeathTest, SolveBisectionRequiresBracket) {
  EXPECT_DEATH(SolveBisection([](double x) { return x * x + 1.0; }, -1.0,
                              1.0),
               "not bracketed");
}

TEST(EcdfTest, CdfAndExceedance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Ecdf e(xs);
  EXPECT_DOUBLE_EQ(e.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.Cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.Cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Exceedance(2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 4.0);
}

TEST(EcdfTest, TailPointsUseGreaterOrEqual) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 5.0};
  const Ecdf e(xs);
  const auto pts = e.TailPoints();
  ASSERT_EQ(pts.size(), 3u);
  // Sorted ascending in value; max has P[X>=5] = 1/4.
  EXPECT_DOUBLE_EQ(pts.back().first, 5.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 0.25);
  // Value 2: P[X>=2] = 3/4.
  EXPECT_DOUBLE_EQ(pts[1].first, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.75);
}

TEST(EcdfTest, TailPointsLimited) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  const Ecdf e(xs);
  EXPECT_EQ(e.TailPoints(2).size(), 2u);
}

TEST(AutocorrTest, WhiteNoiseNearZero) {
  prng::Xoshiro128pp rng(3);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.Normal();
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(Autocorrelation(xs, k), 0.0, 0.05);
  }
}

TEST(AutocorrTest, Ar1HasGeometricDecay) {
  prng::Xoshiro128pp rng(4);
  std::vector<double> xs(20000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.7 * prev + rng.Normal();
    x = prev;
  }
  EXPECT_NEAR(Autocorrelation(xs, 1), 0.7, 0.05);
  EXPECT_NEAR(Autocorrelation(xs, 2), 0.49, 0.05);
}

TEST(AutocorrTest, VectorVersionMatchesScalar) {
  prng::Xoshiro128pp rng(5);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.UniformUnit();
  const auto all = Autocorrelations(xs, 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_DOUBLE_EQ(all[k - 1], Autocorrelation(xs, k));
  }
}

TEST(BootstrapTest, MeanCiCoversTruthAndIsDeterministic) {
  prng::Xoshiro128pp rng(6);
  std::vector<double> xs(400);
  for (auto& x : xs) x = 10.0 + rng.Normal();
  const auto ci = BootstrapMeanCi(xs, 1000, 0.95, 42);
  EXPECT_TRUE(ci.Contains(ci.point));
  EXPECT_NEAR(ci.point, 10.0, 0.2);
  EXPECT_LT(ci.upper - ci.lower, 0.5);
  // Deterministic per seed.
  const auto ci2 = BootstrapMeanCi(xs, 1000, 0.95, 42);
  EXPECT_DOUBLE_EQ(ci.lower, ci2.lower);
  EXPECT_DOUBLE_EQ(ci.upper, ci2.upper);
}

TEST(BootstrapTest, CustomStatistic) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto ci = BootstrapCi(
      xs, [](std::span<const double> s) { return Max(s); }, 500, 0.9, 7);
  EXPECT_LE(ci.upper, 10.0);  // max of resample can never exceed sample max
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
}

}  // namespace
}  // namespace spta::stats
