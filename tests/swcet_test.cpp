// Tests for the static/hybrid WCET analysis: CFG construction, dominators,
// loop discovery, loop-bound derivation from traces, cost-model ordering,
// and soundness of the bounds against simulated executions.
#include <gtest/gtest.h>

#include <vector>

#include "apps/kernels.hpp"
#include "prng/xoshiro.hpp"
#include "sim/platform.hpp"
#include "swcet/cfg.hpp"
#include "swcet/cost_model.hpp"
#include "swcet/hybrid.hpp"
#include "swcet/static_bound.hpp"
#include "trace/interpreter.hpp"

namespace spta::swcet {
namespace {

// A two-level nest: outer loop x inner loop, plus an if/else diamond.
trace::Program NestedLoopProgram(int outer, int inner) {
  trace::ProgramBuilder b("nested");
  const auto arr = b.AddFpArray("data", 64);
  const auto e = b.NewBlock();
  const auto oloop = b.NewBlock();
  const auto obody = b.NewBlock();
  const auto iloop = b.NewBlock();
  const auto ibody = b.NewBlock();
  const auto then_b = b.NewBlock();
  const auto else_b = b.NewBlock();
  const auto iend = b.NewBlock();
  const auto oend = b.NewBlock();
  const auto exit = b.NewBlock();

  b.SetEntry(e);
  b.SwitchTo(e);
  b.IConst(4, outer);
  b.IConst(5, inner);
  b.IConst(1, 0);
  b.Jump(oloop);
  b.SwitchTo(oloop);
  b.ICmpLt(6, 1, 4);
  b.BranchIfZero(6, exit, obody);
  b.SwitchTo(obody);
  b.IConst(2, 0);
  b.Jump(iloop);
  b.SwitchTo(iloop);
  b.ICmpLt(6, 2, 5);
  b.BranchIfZero(6, oend, ibody);
  b.SwitchTo(ibody);
  b.IAnd(7, 2, 2);  // arbitrary work
  b.BranchIfZero(7, then_b, else_b);
  b.SwitchTo(then_b);
  b.FConst(1, 1.0);
  b.Jump(iend);
  b.SwitchTo(else_b);
  b.IConst(8, 0);
  b.LoadF(2, arr, 8);
  b.FSqrt(3, 2);
  b.Jump(iend);
  b.SwitchTo(iend);
  b.IAddImm(2, 2, 1);
  b.Jump(iloop);
  b.SwitchTo(oend);
  b.IAddImm(1, 1, 1);
  b.Jump(oloop);
  b.SwitchTo(exit);
  b.Halt();
  return b.Build();
}

TEST(CfgTest, FindsBothLoopsAndNesting) {
  const auto p = NestedLoopProgram(3, 4);
  const Cfg cfg(p);
  ASSERT_EQ(cfg.loops().size(), 2u);
  // Outer loop header = block 1 (oloop), inner = block 3 (iloop).
  const auto& loops = cfg.loops();
  const auto outer_it =
      std::find_if(loops.begin(), loops.end(),
                   [](const Loop& l) { return l.header == 1; });
  const auto inner_it =
      std::find_if(loops.begin(), loops.end(),
                   [](const Loop& l) { return l.header == 3; });
  ASSERT_NE(outer_it, loops.end());
  ASSERT_NE(inner_it, loops.end());
  EXPECT_GT(outer_it->blocks.size(), inner_it->blocks.size());
  // Inner nested in outer.
  EXPECT_EQ(inner_it->parent,
            static_cast<int>(outer_it - loops.begin()));
  EXPECT_TRUE(outer_it->Contains(3));
  EXPECT_FALSE(inner_it->Contains(1));
}

TEST(CfgTest, DominatorsBasicFacts) {
  const auto p = NestedLoopProgram(2, 2);
  const Cfg cfg(p);
  // Entry dominates everything.
  for (std::size_t b = 0; b < cfg.block_count(); ++b) {
    EXPECT_TRUE(cfg.Dominates(p.entry, static_cast<trace::BlockId>(b)));
  }
  // The inner header (3) dominates the diamond blocks (5, 6).
  EXPECT_TRUE(cfg.Dominates(3, 5));
  EXPECT_TRUE(cfg.Dominates(3, 6));
  // Neither diamond arm dominates the join (7).
  EXPECT_FALSE(cfg.Dominates(5, 7));
  EXPECT_FALSE(cfg.Dominates(6, 7));
}

TEST(CfgTest, StraightLineProgramHasNoLoops) {
  trace::ProgramBuilder b("straight");
  const auto e = b.NewBlock();
  b.SetEntry(e);
  b.SwitchTo(e);
  b.IConst(1, 1);
  b.Halt();
  const auto p = b.Build();
  const Cfg cfg(p);
  EXPECT_TRUE(cfg.loops().empty());
  EXPECT_TRUE(cfg.back_edges().empty());
}

TEST(CostModelTest, WorstDominatesBestForEveryOp) {
  const CostModel cost(sim::DetLeon3Config());
  const auto p = NestedLoopProgram(2, 2);
  for (const auto& block : p.blocks) {
    for (const auto& inst : block.insts) {
      EXPECT_GE(cost.WorstCase(inst), cost.BestCase(inst));
    }
  }
}

TEST(CostModelTest, InterferenceInflatesMemoryCosts) {
  const auto p = NestedLoopProgram(2, 2);
  const CostModel solo(sim::DetLeon3Config(), 0);
  const CostModel contended(sim::DetLeon3Config(), 3);
  for (const auto& block : p.blocks) {
    for (const auto& inst : block.insts) {
      EXPECT_GE(contended.WorstCase(inst), solo.WorstCase(inst));
    }
  }
  EXPECT_GT(contended.worst_line_fill(), solo.worst_line_fill());
}

TEST(DeriveLoopBoundsTest, RecoversKnownIterationCounts) {
  const auto p = NestedLoopProgram(5, 7);
  trace::Interpreter interp(p);
  const auto t = interp.Run();
  const std::vector<const trace::Trace*> traces = {&t};
  const auto bounds = DeriveLoopBounds(p, traces, /*margin=*/1.0);
  ASSERT_EQ(bounds.size(), 2u);
  for (const auto& bound : bounds) {
    if (bound.header == 1) {
      // Outer header executes outer+1 times per entry (exit test).
      EXPECT_EQ(bound.max_iterations, 6u);
    } else {
      EXPECT_EQ(bound.header, 3);
      EXPECT_EQ(bound.max_iterations, 8u);
    }
  }
}

TEST(DeriveLoopBoundsTest, MarginInflates) {
  const auto p = NestedLoopProgram(10, 1);
  trace::Interpreter interp(p);
  const auto t = interp.Run();
  const auto exact = DeriveLoopBounds(p, {&t}, 1.0);
  const auto margined = DeriveLoopBounds(p, {&t}, 1.5);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_GE(margined[i].max_iterations, exact[i].max_iterations);
  }
}

TEST(StaticBoundTest, SoundForNestedLoops) {
  const auto p = NestedLoopProgram(6, 9);
  trace::Interpreter interp(p);
  const auto t = interp.Run();
  const auto cfg_bounds = DeriveLoopBounds(p, {&t}, 1.0);
  const auto config = sim::DetLeon3Config();
  const auto bound = ComputeStaticBound(p, cfg_bounds, config);

  sim::Platform platform(config, 1);
  const auto measured = platform.Run(t, 1).cycles;
  EXPECT_GE(bound.wcet_bound, measured);
  EXPECT_LE(bound.bcet_bound, measured);
  // The static all-miss bound should be clearly pessimistic.
  EXPECT_GT(bound.wcet_bound, 2 * measured);
}

TEST(StaticBoundTest, SoundAcrossKernelInputs) {
  const auto p = apps::MakeBubbleSortProgram(32);
  // Derive bounds from a worst-case-ish trace (reversed input).
  trace::Interpreter worst_in(p);
  for (int i = 0; i < 32; ++i) {
    worst_in.WriteInt(0, static_cast<std::size_t>(i), 32 - i);
  }
  const auto worst_trace = worst_in.Run();
  const auto bounds = DeriveLoopBounds(p, {&worst_trace}, 1.0);
  const auto config = sim::RandLeon3Config();
  const auto bound = ComputeStaticBound(p, bounds, config);

  sim::Platform platform(config, 1);
  prng::Xoshiro128pp rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    trace::Interpreter interp(p);
    for (int i = 0; i < 32; ++i) {
      interp.WriteInt(0, static_cast<std::size_t>(i),
                      static_cast<std::int32_t>(rng.UniformBelow(1000)));
    }
    const auto t = interp.Run();
    EXPECT_GE(bound.wcet_bound,
              platform.Run(t, static_cast<Seed>(trial)).cycles);
  }
}

TEST(StaticBoundDeathTest, MissingLoopBoundRejected) {
  const auto p = NestedLoopProgram(2, 2);
  EXPECT_DEATH(ComputeStaticBound(p, {}, sim::DetLeon3Config()),
               "missing loop bound");
}

TEST(HybridTest, CountsBlockExecutions) {
  const auto p = NestedLoopProgram(3, 4);
  trace::Interpreter interp(p);
  const auto t = interp.Run();
  const auto counts = BlockExecutionCounts(p, t);
  EXPECT_EQ(counts[0], 1u);               // entry
  EXPECT_EQ(counts[1], 4u);               // outer header: 3 + exit test
  EXPECT_EQ(counts[3], 3u * 5u);          // inner header: (4+1) per outer
  EXPECT_EQ(counts[9], 1u);               // exit
}

TEST(HybridTest, BoundDominatesObservedAndTracksCoverage) {
  const auto p = apps::MakeBinarySearchProgram(64, 8);
  const auto config = sim::RandLeon3Config();
  sim::Platform platform(config, 1);

  std::vector<trace::Trace> kept;
  prng::Xoshiro128pp rng(5);
  for (int i = 0; i < 8; ++i) {
    trace::Interpreter interp(p);
    for (int k = 0; k < 64; ++k) {
      interp.WriteInt(0, static_cast<std::size_t>(k), 2 * k);
    }
    for (int q = 0; q < 8; ++q) {
      interp.WriteInt(1, static_cast<std::size_t>(q),
                      static_cast<std::int32_t>(rng.UniformBelow(128)));
    }
    kept.push_back(interp.Run());
  }
  std::vector<const trace::Trace*> traces;
  for (const auto& t : kept) traces.push_back(&t);

  const auto hybrid = HybridStructuralBound(p, traces, config);
  EXPECT_GT(hybrid.CoverageRatio(), 0.8);
  for (const auto& t : kept) {
    EXPECT_GE(hybrid.wcet_bound, platform.Run(t, 3).cycles);
  }
}

TEST(HybridTest, HybridTighterThanStatic) {
  // On a data-dependent program the hybrid bound (observed counts) should
  // be no larger than the static bound with margin-derived loop bounds.
  const auto p = apps::MakeBubbleSortProgram(24);
  trace::Interpreter interp(p);
  for (int i = 0; i < 24; ++i) {
    interp.WriteInt(0, static_cast<std::size_t>(i), 24 - i);
  }
  const auto t = interp.Run();
  const std::vector<const trace::Trace*> traces = {&t};
  const auto config = sim::DetLeon3Config();
  const auto hybrid = HybridStructuralBound(p, traces, config);
  const auto statics =
      ComputeStaticBound(p, DeriveLoopBounds(p, traces, 1.2), config);
  EXPECT_LE(hybrid.wcet_bound, statics.wcet_bound);
}

}  // namespace
}  // namespace spta::swcet
