// Timing-model properties: compositionality, monotonicity, and
// conservation laws that must hold for ANY workload and platform preset.
#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "sim/core.hpp"
#include "sim/memory_system.hpp"
#include "sim/platform.hpp"
#include "trace/synthetic.hpp"

namespace spta::sim {
namespace {

trace::Trace Prefix(const trace::Trace& t, std::size_t n) {
  trace::Trace out;
  out.records.assign(t.records.begin(),
                     t.records.begin() + static_cast<long>(n));
  out.path_signature = t.path_signature;
  return out;
}

// Stepping k instructions must agree exactly with running the k-prefix as
// its own trace (same seed): timing is compositional over the stream.
class PrefixCompositionality : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(PrefixCompositionality, StepwiseEqualsPrefixRun) {
  trace::BlendSpec spec;
  spec.count = 4000;
  const trace::Trace t = trace::BlendTrace(spec, 13);
  const std::size_t k = GetParam();

  const auto cfg = RandLeon3Config();
  // Stepping path.
  MemorySystem mem_a(cfg.bus, cfg.dram);
  Core core_a(cfg, 0, &mem_a, 0);
  core_a.Reseed(DeriveSeed(77, std::uint64_t{0}));
  core_a.AttachTrace(&t);
  for (std::size_t i = 0; i < k; ++i) core_a.Step();
  const Cycles stepped = core_a.now();

  // Prefix-run path (identical seed derivation).
  const trace::Trace prefix = Prefix(t, k);
  MemorySystem mem_b(cfg.bus, cfg.dram);
  Core core_b(cfg, 0, &mem_b, 0);
  core_b.Reseed(DeriveSeed(77, std::uint64_t{0}));
  core_b.AttachTrace(&prefix);
  while (core_b.HasWork()) core_b.Step();
  EXPECT_EQ(stepped, core_b.now());
}

INSTANTIATE_TEST_SUITE_P(Prefixes, PrefixCompositionality,
                         ::testing::Values(1, 10, 100, 1000, 4000));

// Time never decreases as more instructions retire, for every preset.
TEST(TimingMonotonicity, ClockIsNonDecreasing) {
  trace::BlendSpec spec;
  spec.count = 5000;
  const trace::Trace t = trace::BlendTrace(spec, 14);
  for (const auto& cfg : {DetLeon3Config(), RandLeon3Config()}) {
    MemorySystem mem(cfg.bus, cfg.dram);
    Core core(cfg, 0, &mem, 1);
    core.Reseed(3);
    core.AttachTrace(&t);
    Cycles prev = 0;
    while (core.HasWork()) {
      core.Step();
      ASSERT_GE(core.now(), prev);
      prev = core.now();
    }
  }
}

// Appending instructions never makes the total time smaller.
TEST(TimingMonotonicity, LongerTraceTakesLonger) {
  trace::BlendSpec spec;
  spec.count = 3000;
  const trace::Trace t = trace::BlendTrace(spec, 15);
  Platform p(RandLeon3Config(), 1);
  Cycles prev = 0;
  for (const std::size_t n : {500u, 1000u, 2000u, 3000u}) {
    const auto res = p.Run(Prefix(t, n), /*run_seed=*/9);
    ASSERT_GE(res.cycles, prev);
    prev = res.cycles;
  }
}

// Cycle count is always at least the instruction count (CPI >= 1 on an
// in-order single-issue pipeline) and misses always cost time: RAND with
// its worst-case FPU is never faster than a hypothetical ideal.
TEST(TimingBounds, CpiAtLeastOne) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    trace::BlendSpec spec;
    spec.count = 2000;
    const trace::Trace t = trace::BlendTrace(spec, seed);
    Platform p(DetLeon3Config(), 1);
    const auto res = p.Run(t, seed);
    EXPECT_GE(res.cycles, res.instructions);
  }
}

// Interference conservation: with co-runners, no core finishes FASTER than
// alone (bus sharing can only delay).
TEST(TimingBounds, CoRunnersNeverSpeedUpAnyCore) {
  trace::BlendSpec spec;
  spec.count = 8000;
  spec.load_pm = 400;
  const trace::Trace a = trace::BlendTrace(spec, 21);
  trace::BlendSpec spec_b = spec;
  spec_b.data_base = 0x50000000;
  const trace::Trace b = trace::BlendTrace(spec_b, 22);

  Platform p(RandLeon3Config(), 1);
  const std::vector<const trace::Trace*> solo_a = {&a, nullptr, nullptr,
                                                   nullptr};
  const std::vector<const trace::Trace*> solo_b = {nullptr, &b, nullptr,
                                                   nullptr};
  const std::vector<const trace::Trace*> both = {&a, &b, nullptr, nullptr};
  const Cycles a_alone = p.RunConcurrent(solo_a, 5)[0].cycles;
  const Cycles b_alone = p.RunConcurrent(solo_b, 5)[1].cycles;
  const auto together = p.RunConcurrent(both, 5);
  EXPECT_GE(together[0].cycles, a_alone);
  EXPECT_GE(together[1].cycles, b_alone);
}

// Store-buffer conservation: measured time includes the full drain — a
// trace ending in a burst of stores cannot "hide" their cost.
TEST(TimingBounds, TrailingStoresAreCharged) {
  trace::Trace alu_only;
  for (int i = 0; i < 100; ++i) {
    trace::TraceRecord r;
    r.pc = 0x40000000 + 4 * (i % 8);
    r.op = trace::OpClass::kIntAlu;
    alu_only.records.push_back(r);
  }
  trace::Trace with_stores = alu_only;
  for (int i = 0; i < 8; ++i) {
    trace::TraceRecord r;
    r.pc = 0x40000020;
    r.op = trace::OpClass::kStore;
    r.mem_addr = 0x40100000 + 32ULL * static_cast<std::uint64_t>(i);
    with_stores.records.push_back(r);
  }
  Platform p(DetLeon3Config(), 1);
  const Cycles base = p.Run(alu_only, 1).cycles;
  const Cycles stores = p.Run(with_stores, 1).cycles;
  // Each write-through store occupies bus + DRAM; the drain must be
  // visible in the end-to-end time (8 stores x O(100) cycles).
  EXPECT_GT(stores, base + 8 * DetLeon3Config().dram.row_hit_latency);
}

}  // namespace
}  // namespace spta::sim
