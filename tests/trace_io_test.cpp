// Tests for binary trace serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/kernels.hpp"
#include "trace/interpreter.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

namespace spta::trace {
namespace {

TEST(TraceIoTest, RoundTripPreservesEveryField) {
  BlendSpec spec;
  spec.count = 3000;
  const Trace original = BlendTrace(spec, 5);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(ss, original);
  const Trace loaded = ReadTrace(ss);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  EXPECT_EQ(loaded.path_signature, original.path_signature);
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    const auto& a = original.records[i];
    const auto& b = loaded.records[i];
    ASSERT_EQ(a.pc, b.pc) << i;
    ASSERT_EQ(a.mem_addr, b.mem_addr) << i;
    ASSERT_EQ(a.op, b.op) << i;
    ASSERT_EQ(a.fpu_operand_class, b.fpu_operand_class) << i;
    ASSERT_EQ(a.branch_taken, b.branch_taken) << i;
    ASSERT_EQ(a.dst_reg, b.dst_reg) << i;
    ASSERT_EQ(a.src1_reg, b.src1_reg) << i;
    ASSERT_EQ(a.src2_reg, b.src2_reg) << i;
  }
}

TEST(TraceIoTest, RoundTripInterpretedProgramTrace) {
  const Program p = apps::MakeCrcProgram(64);
  Interpreter interp(p);
  for (int i = 0; i < 256; ++i) interp.WriteInt(0, (std::size_t)i, i * 3);
  for (int i = 0; i < 64; ++i) interp.WriteInt(1, (std::size_t)i, i);
  const Trace original = interp.Run();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(ss, original);
  const Trace loaded = ReadTrace(ss);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  // Register annotations survive (needed for the hazard model on replay).
  bool any_regs = false;
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].dst_reg, original.records[i].dst_reg);
    any_regs |= original.records[i].dst_reg != kNoReg;
  }
  EXPECT_TRUE(any_regs);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.path_signature = 42;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(ss, empty);
  const Trace loaded = ReadTrace(ss);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.path_signature, 42u);
}

TEST(TraceIoDeathTest, BadMagicRejected) {
  std::stringstream ss("this is not a trace file at all............");
  EXPECT_DEATH(ReadTrace(ss), "bad magic");
}

TEST(TraceIoDeathTest, TruncationRejected) {
  BlendSpec spec;
  spec.count = 100;
  const Trace t = BlendTrace(spec, 1);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_DEATH(ReadTrace(cut), "truncated");
}

TEST(TraceIoDeathTest, MissingFileRejected) {
  EXPECT_DEATH(LoadTraceFile("/nonexistent/trace.trc"), "cannot open");
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "spta_trace_io_test.trc";
  BlendSpec spec;
  spec.count = 500;
  const Trace t = BlendTrace(spec, 9);
  SaveTraceFile(path, t);
  const Trace loaded = LoadTraceFile(path);
  EXPECT_EQ(loaded.records.size(), t.records.size());
  std::remove(path.c_str());
}

// --- Typed-error surface (TryReadTrace / TryLoadTraceFile) ---------------
//
// The service INGEST path and the CLI's trace commands feed these with
// network and user bytes: every defect must come back as false + message,
// never an abort.

TEST(TraceIoTryTest, BadMagicReportsTypedError) {
  std::stringstream ss("this is not a trace file at all............");
  Trace out;
  std::string error;
  EXPECT_FALSE(TryReadTrace(ss, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(TraceIoTryTest, EveryTruncationReportsTypedError) {
  BlendSpec spec;
  spec.count = 40;
  const Trace t = BlendTrace(spec, 3);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(full, t);
  const std::string bytes = full.str();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream cut(bytes.substr(0, len),
                          std::ios::in | std::ios::binary);
    Trace out;
    std::string error;
    ASSERT_FALSE(TryReadTrace(cut, &out, &error)) << "length " << len;
    ASSERT_FALSE(error.empty()) << "length " << len;
  }
}

TEST(TraceIoTryTest, OutOfRangeFieldsReportTypedErrors) {
  BlendSpec spec;
  spec.count = 8;
  const Trace t = BlendTrace(spec, 4);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(full, t);
  const std::string bytes = full.str();
  // Corrupting any byte must either still parse (fields where every byte
  // value is legal) or produce a typed error; it must never abort. Spot
  // checks above pin the magic case; this sweeps everything else.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xff);
    std::stringstream in(damaged, std::ios::in | std::ios::binary);
    Trace out;
    std::string error;
    if (!TryReadTrace(in, &out, &error)) {
      ASSERT_FALSE(error.empty()) << "byte " << i;
    }
  }
}

TEST(TraceIoTryTest, MissingFileReportsTypedError) {
  Trace out;
  std::string error;
  EXPECT_FALSE(TryLoadTraceFile("/nonexistent/trace.trc", &out, &error));
  EXPECT_NE(error.find("open"), std::string::npos) << error;
}

TEST(TraceIoTryTest, ValidStreamStillParses) {
  BlendSpec spec;
  spec.count = 25;
  const Trace t = BlendTrace(spec, 5);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTrace(ss, t);
  Trace out;
  std::string error;
  ASSERT_TRUE(TryReadTrace(ss, &out, &error)) << error;
  EXPECT_EQ(out.records.size(), t.records.size());
  EXPECT_EQ(out.path_signature, t.path_signature);
}

}  // namespace
}  // namespace spta::trace
