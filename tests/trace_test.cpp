// Tests for the program IR, the interpreter and the synthetic trace
// generators: structural validation, functional correctness of executed
// programs, trace contents and path signatures.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "trace/interpreter.hpp"
#include "trace/program.hpp"
#include "trace/record.hpp"
#include "trace/synthetic.hpp"

namespace spta::trace {
namespace {

// Builds: r20 = sum of ints 1..n (loop with branch).
Program SumProgram(int n) {
  ProgramBuilder b("sum");
  const BlockId entry = b.NewBlock();
  const BlockId loop = b.NewBlock();
  const BlockId body = b.NewBlock();
  const BlockId exit = b.NewBlock();
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(1, 1);   // i = 1
  b.IConst(2, n);   // bound
  b.IConst(20, 0);  // acc
  b.Jump(loop);
  b.SwitchTo(loop);
  b.ICmpLt(3, 2, 1);  // bound < i ?
  b.BranchIfZero(3, body, exit);
  b.SwitchTo(body);
  b.IAdd(20, 20, 1);
  b.IAddImm(1, 1, 1);
  b.Jump(loop);
  b.SwitchTo(exit);
  b.Halt();
  return b.Build();
}

TEST(ProgramTest, BuildValidatesAndAssignsLayout) {
  const Program p = SumProgram(10);
  EXPECT_EQ(p.blocks.size(), 4u);
  EXPECT_GT(p.StaticInstructionCount(), 0u);
  // Blocks are laid out contiguously at 4 bytes/insn.
  EXPECT_EQ(p.blocks[1].code_base,
            p.blocks[0].code_base + 4 * p.blocks[0].insts.size());
}

TEST(ProgramTest, ArraysAreCacheLineAligned) {
  ProgramBuilder b("align");
  b.AddIntArray("a", 3);  // 12 bytes
  b.AddFpArray("b", 5);
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.Halt();
  const Program p = b.Build();
  EXPECT_EQ(p.arrays[0].base % 64, 0u);
  EXPECT_EQ(p.arrays[1].base % 64, 0u);
  EXPECT_GE(p.arrays[1].base, p.arrays[0].base + 12);
}

TEST(ProgramTest, LinkOffsetShiftsData) {
  const Program p0 = SumProgram(1);
  ProgramBuilder b("shifted");
  b.AddIntArray("x", 4);
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.Halt();
  const Program p1 = b.Build(4096);
  EXPECT_EQ(p1.arrays[0].base % 64, 0u);
  EXPECT_GE(p1.arrays[0].base, 0x40100000ULL + 4096);
  (void)p0;
}

TEST(ProgramDeathTest, MidBlockControlRejected) {
  ProgramBuilder b("bad");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.Halt();
  b.IConst(1, 0);  // instruction after the terminator
  EXPECT_DEATH(b.Build(), "control ops must terminate");
}

TEST(ProgramDeathTest, MissingTerminatorRejected) {
  ProgramBuilder b("bad2");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.IConst(1, 0);
  EXPECT_DEATH(b.Build(), "control ops must terminate");
}

TEST(ProgramDeathTest, BadBranchTargetRejected) {
  ProgramBuilder b("bad3");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.Jump(99);
  EXPECT_DEATH(b.Build(), "out of range");
}

TEST(ProgramDeathTest, TypeMismatchedArrayAccessRejected) {
  ProgramBuilder b("bad4");
  const auto arr = b.AddIntArray("ints", 4);
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.LoadF(1, arr, 2);  // fp load from int array
  b.Halt();
  EXPECT_DEATH(b.Build(), "fp access to int array");
}

TEST(InterpreterTest, SumLoopComputesCorrectly) {
  const Program p = SumProgram(100);
  Interpreter interp(p);
  const Trace t = interp.Run();
  EXPECT_EQ(interp.int_reg(20), 5050);
  EXPECT_GT(t.instruction_count(), 300u);  // ~5 insts x 100 iterations
}

TEST(InterpreterTest, TraceContainsFetchAddressesAndOps) {
  const Program p = SumProgram(3);
  Interpreter interp(p);
  const Trace t = interp.Run();
  // First record: IConst in the entry block.
  EXPECT_EQ(t.records[0].pc, p.blocks[0].code_base);
  EXPECT_EQ(t.records[0].op, OpClass::kIntAlu);
  // Entry terminator is a taken jump.
  EXPECT_EQ(t.records[3].op, OpClass::kBranch);
  EXPECT_TRUE(t.records[3].branch_taken);
}

TEST(InterpreterTest, MemoryOpsCarryEffectiveAddresses) {
  ProgramBuilder b("mem");
  const auto arr = b.AddFpArray("data", 8);
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.IConst(1, 3);
  b.LoadF(2, arr, 1, 2);  // data[5]
  b.StoreF(arr, 1, 2, 4); // data[7] = f2
  b.Halt();
  const Program p = b.Build();
  Interpreter interp(p);
  interp.WriteFp(arr, 5, 2.75);
  const Trace t = interp.Run();
  EXPECT_DOUBLE_EQ(interp.ReadFp(arr, 7), 2.75);
  const Address base = p.arrays[0].base;
  EXPECT_EQ(t.records[1].op, OpClass::kLoad);
  EXPECT_EQ(t.records[1].mem_addr, base + 5 * 8);
  EXPECT_EQ(t.records[2].op, OpClass::kStore);
  EXPECT_EQ(t.records[2].mem_addr, base + 7 * 8);
}

TEST(InterpreterTest, FpArithmeticIsExact) {
  ProgramBuilder b("fp");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.FConst(1, 9.0);
  b.FSqrt(2, 1);
  b.FConst(3, 2.0);
  b.FDiv(4, 2, 3);  // 1.5
  b.FNeg(5, 4);
  b.FAbs(6, 5);
  b.Halt();
  const Program p = b.Build();
  Interpreter interp(p);
  interp.Run();
  EXPECT_DOUBLE_EQ(interp.fp_reg(2), 3.0);
  EXPECT_DOUBLE_EQ(interp.fp_reg(4), 1.5);
  EXPECT_DOUBLE_EQ(interp.fp_reg(5), -1.5);
  EXPECT_DOUBLE_EQ(interp.fp_reg(6), 1.5);
}

TEST(InterpreterTest, FpuOperandClassesRecorded) {
  ProgramBuilder b("fdiv");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.FConst(1, 1.0);
  b.FConst(2, 2.0);   // 1/2 = 0.5: exact power of two -> class 0
  b.FDiv(3, 1, 2);
  b.FConst(4, 3.0);   // 1/3: repeating mantissa -> highest class
  b.FDiv(5, 1, 4);
  b.Halt();
  const Program p = b.Build();
  Interpreter interp(p);
  const Trace t = interp.Run();
  EXPECT_EQ(t.records[2].op, OpClass::kFpDiv);
  EXPECT_EQ(t.records[2].fpu_operand_class, 0);
  EXPECT_EQ(t.records[4].fpu_operand_class, kFpuOperandClasses - 1);
}

TEST(InterpreterTest, PathSignatureDistinguishesBranches) {
  ProgramBuilder b("branchy");
  const BlockId entry = b.NewBlock();
  const BlockId then_blk = b.NewBlock();
  const BlockId else_blk = b.NewBlock();
  const BlockId exit = b.NewBlock();
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.BranchIfZero(1, then_blk, else_blk);  // depends on r1 input
  b.SwitchTo(then_blk);
  b.Jump(exit);
  b.SwitchTo(else_blk);
  b.Jump(exit);
  b.SwitchTo(exit);
  b.Halt();
  const Program p = b.Build();

  Interpreter zero(p);
  zero.SetIntReg(1, 0);
  Interpreter nonzero(p);
  nonzero.SetIntReg(1, 5);
  EXPECT_NE(zero.Run().path_signature, nonzero.Run().path_signature);
}

TEST(InterpreterTest, SamePathSameSignature) {
  const Program p = SumProgram(5);
  Interpreter a(p);
  Interpreter b2(p);
  EXPECT_EQ(a.Run().path_signature, b2.Run().path_signature);
}

TEST(InterpreterDeathTest, RunTwiceRejected) {
  const Program p = SumProgram(2);
  Interpreter interp(p);
  interp.Run();
  EXPECT_DEATH(interp.Run(), "once");
}

TEST(InterpreterDeathTest, OutOfBoundsAccessCaught) {
  ProgramBuilder b("oob");
  const auto arr = b.AddIntArray("small", 2);
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.IConst(1, 10);
  b.LoadI(2, arr, 1);
  b.Halt();
  const Program p = b.Build();
  Interpreter interp(p);
  EXPECT_DEATH(interp.Run(), "out-of-bounds");
}

TEST(InterpreterDeathTest, StepLimitCaught) {
  // Infinite loop must trip the step limit, not hang.
  ProgramBuilder b("infinite");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.Jump(blk);
  const Program p = b.Build();
  Interpreter::Options opts;
  opts.max_steps = 1000;
  Interpreter interp(p, opts);
  EXPECT_DEATH(interp.Run(), "step limit");
}

TEST(InterpreterDeathTest, DivisionByZeroCaught) {
  ProgramBuilder b("div0");
  const BlockId blk = b.NewBlock();
  b.SetEntry(blk);
  b.SwitchTo(blk);
  b.IConst(1, 5);
  b.IConst(2, 0);
  b.IDiv(3, 1, 2);
  b.Halt();
  const Program p = b.Build();
  Interpreter interp(p);
  EXPECT_DEATH(interp.Run(), "division by zero");
}

TEST(FpuOperandClassTest, PowersOfTwoAreEasiest) {
  EXPECT_EQ(FpuDivOperandClass(8.0, 2.0), 0);
  EXPECT_EQ(FpuSqrtOperandClass(4.0), 0);
  EXPECT_EQ(FpuDivOperandClass(1.0, 3.0), kFpuOperandClasses - 1);
}

TEST(SyntheticTest, SequentialTraceAddresses) {
  const Trace t = SequentialTrace(0x1000, 10, 8);
  ASSERT_EQ(t.records.size(), 10u);
  EXPECT_EQ(t.records[0].mem_addr, 0x1000u);
  EXPECT_EQ(t.records[9].mem_addr, 0x1000u + 9 * 8);
  for (const auto& r : t.records) EXPECT_EQ(r.op, OpClass::kLoad);
}

TEST(SyntheticTest, UniformRandomTraceStaysInRegion) {
  const Trace t = UniformRandomTrace(0x2000, 4096, 1000, 7);
  for (const auto& r : t.records) {
    EXPECT_GE(r.mem_addr, 0x2000u);
    EXPECT_LT(r.mem_addr, 0x2000u + 4096);
    EXPECT_EQ(r.mem_addr % 4, 0u);
  }
}

TEST(SyntheticTest, LoopingTraceRepeatsFootprint) {
  const Trace t = LoopingTrace(0x3000, 256, 32, 3);
  EXPECT_EQ(t.records.size(), 3u * (256 / 32));
  EXPECT_EQ(t.records[0].mem_addr, t.records[8].mem_addr);
}

TEST(SyntheticTest, BlendTraceRespectsRates) {
  BlendSpec spec;
  spec.count = 20000;
  const Trace t = BlendTrace(spec, 11);
  std::size_t loads = 0;
  std::size_t stores = 0;
  std::size_t branches = 0;
  for (const auto& r : t.records) {
    loads += r.op == OpClass::kLoad;
    stores += r.op == OpClass::kStore;
    branches += r.op == OpClass::kBranch;
  }
  EXPECT_NEAR(static_cast<double>(loads), 0.25 * spec.count,
              0.03 * spec.count);
  EXPECT_NEAR(static_cast<double>(stores), 0.10 * spec.count,
              0.02 * spec.count);
  EXPECT_NEAR(static_cast<double>(branches), 0.15 * spec.count,
              0.03 * spec.count);
}

TEST(SyntheticTest, BlendTraceDeterministicPerSeed) {
  BlendSpec spec;
  spec.count = 500;
  const Trace a = BlendTrace(spec, 3);
  const Trace b = BlendTrace(spec, 3);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].pc, b.records[i].pc);
    EXPECT_EQ(a.records[i].mem_addr, b.records[i].mem_addr);
  }
}

}  // namespace
}  // namespace spta::trace
