#!/bin/sh
# Fails when generated artifacts are tracked by git: build trees
# (build*/), object files, or the stray examples_output.txt that once
# lived at the repo root. Wired into CTest (label tier1) so a regression
# is caught by the ordinary test run; skips (exit 77) when git or the
# repository is unavailable (e.g. running from an exported tarball).
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if ! command -v git >/dev/null 2>&1; then
  echo "check_no_build_artifacts: git not available, skipping"
  exit 77
fi
if ! git -C "$repo_root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_no_build_artifacts: not a git work tree, skipping"
  exit 77
fi

bad=$(git -C "$repo_root" ls-files |
  grep -E '^build[^/]*/|(^|/)examples_output\.txt$|\.o$|\.a$' || true)

if [ -n "$bad" ]; then
  echo "check_no_build_artifacts: FAIL — generated artifacts are tracked:"
  echo "$bad" | head -20
  count=$(echo "$bad" | wc -l)
  echo "($count files; untrack them with 'git rm -r --cached <path>')"
  exit 1
fi

echo "check_no_build_artifacts: OK"
exit 0
