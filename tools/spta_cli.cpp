// spta_cli — command-line front end to the SpacePTA toolkit.
//
//   spta_cli campaign  --platform rand|det|rand-op --runs N --seed S
//                      [--scenarios K] [--jobs J] [--batch-lanes L]
//                      [--output samples.csv]
//                      [--checkpoint J.ckpt [--resume] [--fsync-interval N]]
//                      [--seu-rate R] [--reseed-dropout P] [--fault-seed S]
//                      [--annotate]
//       Runs a TVCA measurement campaign and writes cycles,path_id CSV.
//       --jobs J fans the runs across J worker threads (default: hardware
//       concurrency); the samples are bit-identical for every J.
//       --batch-lanes L simulates up to L seeds per trace in one lockstep
//       pass of the SIMD batch kernel (docs/BATCHING.md); composes with
//       --jobs and --checkpoint, samples stay bit-identical. Requires
//       --scenarios > 0 to batch (a fresh-input campaign has nothing to
//       batch and falls back to the parallel runner). Incompatible with
//       the fault flags.
//       --checkpoint journals every completed run (append-only, fsync'd);
//       --resume restores the journal and re-executes only the missing
//       runs, bit-identically to an uninterrupted campaign.
//       --seu-rate/--reseed-dropout run the campaign under the
//       deterministic fault plan (docs/FAULTS.md); the CSV is then
//       annotated as tainted and analysis will refuse to fit a pWCET.
//       --trace-out FILE enables the in-process tracer for the campaign
//       and exports a Chrome/Perfetto trace; --counters-out FILE writes
//       the per-run microarchitectural counter CSV plus a
//       FILE.summary.json campaign aggregate (docs/OBSERVABILITY.md).
//       Neither flag perturbs the sample: the exported cycles are
//       bit-identical with and without them.
//
//   spta_cli analyze   [--input samples.csv] [--block-size B] [--lags L]
//                      [--alpha A] [--per-path] [--min-path-samples M]
//       Reads a sample (file or stdin) and runs the guarded MBPTA
//       pipeline: integrity/taint checks, i.i.d. gate, Gumbel fit, GOF
//       diagnostics, pWCET table, path coverage. Exit code 0 iff the
//       analysis is usable; tainted/corrupted samples are rejected with a
//       typed diagnosis (exit 2), never mis-reported.
//
//   spta_cli convergence [--input samples.csv] [--initial N] [--step N]
//                        [--prob P] [--tol T]
//       Applies the MBPTA convergence criterion over sample prefixes.
//
//   spta_cli record    --trace out.trc [--scenario S]
//       Records one TVCA major-frame trace to a binary trace file.
//
//   spta_cli simulate  --trace in.trc --platform rand|det|rand-op
//                      --runs N [--seed S] [--jobs J] [--batch-lanes L]
//                      [--atlas] [--output samples.csv]
//                      [--checkpoint J.ckpt [--resume] [--fsync-interval N]]
//                      [--seu-rate R] [--reseed-dropout P] [--fault-seed S]
//       Replays a recorded trace N times (fresh platform seed per run)
//       and writes the execution times as CSV. --batch-lanes L as above
//       (a fixed trace always batches). The input trace may be in either
//       container format (legacy or spta-atlas, sniffed from the magic).
//
//   spta_cli trace pack <in> <out>      repack into the spta-atlas
//                                       columnar container (docs/TRACES.md)
//   spta_cli trace unpack <in> <out>    repack into the legacy container
//   spta_cli trace info <file>          header, footprint, digests and
//                                       kernel summary (either format)
//   spta_cli trace mine <file>          full mined kernel table
//       All four accept both container formats and verify content digests
//       on every conversion; damaged or alien files are rejected with a
//       diagnostic (exit 2), never a crash.
//
//   spta_cli trace-view [--merge OUT] FILE...
//       Summarizes Chrome trace-event JSON exports (spta_serve
//       --trace-dir, spta_client --trace-out, flight-recorder dumps):
//       event counts and the distributed trace ids each file carries.
//       --merge OUT splices every file's traceEvents into one
//       Perfetto-loadable document — offline stitching of a distributed
//       trace when no spta_fleet supervisor did it (docs/OBSERVABILITY.md).
//
// --atlas (campaign/simulate) replays runs through the kernel-memoized
// path (docs/TRACES.md): repeated kernel iterations whose entry state was
// already timed are fast-forwarded from a per-worker kernel store. The
// samples are bit-identical to the non-memoized runners for any --jobs;
// composes with --checkpoint (same journal format). With --batch-lanes
// the lockstep SIMD kernel already amortizes per-run costs, so batching
// takes precedence and memoization is bypassed.
//
// File outputs are crash-safe: the CSV is staged in a tmp file, fsync'd
// and renamed into place, so a crash mid-export never publishes a
// truncated sample.
//
// The analyze/convergence commands work on measurements from ANY source
// (a real board, another simulator) — the bundled simulator is just one
// producer of the CSV format.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "analysis/atlas_campaign.hpp"
#include "analysis/batch_campaign.hpp"
#include "atlas/format.hpp"
#include "atlas/mine.hpp"
#include "obs/atlas_counters.hpp"
#include "analysis/campaign.hpp"
#include "analysis/checkpoint.hpp"
#include "sim/batch/batch_platform.hpp"
#include "analysis/diagnosis.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "common/atomic_file.hpp"
#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "fault/campaign.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/path_coverage.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(stderr,
               "usage: spta_cli "
               "<campaign|analyze|convergence|record|simulate|trace> [flags]\n"
               "  campaign    --platform rand|det|rand-op --runs N "
               "[--seed S] [--scenarios K] [--jobs J] [--batch-lanes L] "
               "[--atlas] [--output FILE]\n"
               "              [--checkpoint FILE [--resume] "
               "[--fsync-interval N]] [--seu-rate R] [--reseed-dropout P] "
               "[--fault-seed S] [--annotate]\n"
               "              [--trace-out FILE] [--counters-out FILE]\n"
               "  analyze     [--input FILE] [--block-size B] [--lags L] "
               "[--alpha A] [--per-path] [--min-path-samples M] [--histogram]\n"
               "  convergence [--input FILE] [--initial N] [--step N] "
               "[--prob P] [--tol T]\n"
               "  record      --trace FILE [--scenario S]\n"
               "  simulate    --trace FILE --platform rand|det|rand-op "
               "--runs N [--seed S] [--jobs J] [--batch-lanes L] "
               "[--atlas] [--output FILE] "
               "[--checkpoint FILE [--resume]] [--seu-rate R] "
               "[--reseed-dropout P] [--fault-seed S] "
               "[--trace-out FILE] [--counters-out FILE]\n"
               "  trace       pack|unpack <in> <out> | info|mine <file>\n"
               "  trace-view  [--merge OUT] FILE...   (Chrome trace JSON "
               "summary / fleet-wide merge)\n");
  return 2;
}

std::vector<mbpta::PathObservation> LoadSamples(const Flags& flags,
                                                analysis::CsvMeta* meta) {
  const std::string input = flags.GetString("input");
  std::vector<mbpta::PathObservation> obs;
  std::string error;
  bool ok = false;
  if (input.empty() || input == "-") {
    ok = analysis::TryReadSamplesCsvWithMeta(std::cin, &obs, meta, &error);
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "spta_cli: cannot open '%s'\n", input.c_str());
      std::exit(2);
    }
    ok = analysis::TryReadSamplesCsvWithMeta(in, &obs, meta, &error);
  }
  if (!ok) {
    std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
    std::exit(2);
  }
  return obs;
}

/// Parses --jobs: 0 or absent = hardware concurrency; negative is an
/// operator error (exits), not a 2^64-thread request.
std::size_t JobsFlag(const Flags& flags) {
  const std::int64_t jobs = flags.GetInt("jobs", 0);
  if (jobs < 0) {
    std::fprintf(stderr, "spta_cli: --jobs must be >= 0 (got %lld)\n",
                 static_cast<long long>(jobs));
    std::exit(2);
  }
  return jobs == 0 ? analysis::DefaultJobs()
                   : static_cast<std::size_t>(jobs);
}

/// Parses --batch-lanes: 0 or absent = batching disabled (serial per-run
/// kernel); 1..BatchPlatform::kMaxLanes selects the lockstep kernel width.
std::size_t BatchLanesFlag(const Flags& flags) {
  const std::int64_t lanes = flags.GetInt("batch-lanes", 0);
  if (lanes < 0 ||
      lanes > static_cast<std::int64_t>(sim::batch::BatchPlatform::kMaxLanes)) {
    std::fprintf(stderr, "spta_cli: --batch-lanes must be 0..%zu (got %lld)\n",
                 sim::batch::BatchPlatform::kMaxLanes,
                 static_cast<long long>(lanes));
    std::exit(2);
  }
  return static_cast<std::size_t>(lanes);
}

std::vector<double> Times(
    const std::vector<mbpta::PathObservation>& obs) {
  std::vector<double> t;
  t.reserve(obs.size());
  for (const auto& o : obs) t.push_back(o.time);
  return t;
}

sim::PlatformConfig PlatformFromFlags(const Flags& flags, bool* ok) {
  const std::string platform_name = flags.GetString("platform", "rand");
  *ok = true;
  if (platform_name == "rand") return sim::RandLeon3Config();
  if (platform_name == "det") return sim::DetLeon3Config();
  if (platform_name == "rand-op") return sim::RandLeon3OperationConfig();
  std::fprintf(stderr, "spta_cli: unknown platform '%s'\n",
               platform_name.c_str());
  *ok = false;
  return {};
}

/// The fault plan requested on the command line (disabled by default).
fault::FaultCampaignConfig FaultPlanFromFlags(
    const Flags& flags, const analysis::CampaignConfig& base) {
  fault::FaultCampaignConfig fc;
  fc.base = base;
  fc.seu.upsets_per_run = flags.GetDouble("seu-rate", 0.0);
  fc.reseed_dropout = flags.GetDouble("reseed-dropout", 0.0);
  fc.fault_seed = static_cast<Seed>(flags.GetInt("fault-seed", 0));
  if (fc.seu.upsets_per_run < 0.0 || fc.reseed_dropout < 0.0 ||
      fc.reseed_dropout > 1.0) {
    std::fprintf(stderr,
                 "spta_cli: need --seu-rate >= 0 and "
                 "0 <= --reseed-dropout <= 1\n");
    std::exit(2);
  }
  return fc;
}

analysis::CheckpointOptions CheckpointFromFlags(const Flags& flags) {
  analysis::CheckpointOptions copts;
  copts.journal_path = flags.GetString("checkpoint");
  copts.resume = flags.GetBool("resume");
  const std::int64_t interval = flags.GetInt("fsync-interval", 1);
  const std::int64_t abort_after = flags.GetInt("abort-after", 0);
  if (interval < 1 || abort_after < 0) {
    std::fprintf(stderr,
                 "spta_cli: need --fsync-interval >= 1 and "
                 "--abort-after >= 0\n");
    std::exit(2);
  }
  copts.fsync_interval = static_cast<std::size_t>(interval);
  copts.abort_after_appends = static_cast<std::size_t>(abort_after);
  return copts;
}

/// Arms the tracer when the command line asks for a trace export. Must run
/// before the campaign so the spans exist to collect.
void MaybeEnableTracer(const Flags& flags) {
  if (!flags.GetString("trace-out").empty()) {
    obs::Tracer::Instance().Enable();
  }
}

/// Writes the observability side-outputs of a finished campaign:
///   --counters-out FILE  per-run µarch counter CSV + FILE.summary.json
///                        campaign aggregate;
///   --trace-out FILE     Chrome/Perfetto trace of the recorded spans.
/// Both go through the atomic write path. Returns 0, or 2 on I/O failure.
int WriteObsOutputs(const Flags& flags,
                    const std::vector<analysis::RunSample>& samples) {
  const std::string counters_out = flags.GetString("counters-out");
  if (!counters_out.empty()) {
    std::ostringstream csv;
    obs::WriteCountersCsvHeader(csv);
    obs::CounterAggregate aggregate;
    for (std::size_t r = 0; r < samples.size(); ++r) {
      const auto c =
          obs::RunCounters::From(r, samples[r].path_id, samples[r].detail);
      obs::WriteCountersCsvRow(csv, c);
      aggregate.Add(c);
    }
    std::string error;
    if (!AtomicWriteFile(counters_out, csv.str(), &error) ||
        !AtomicWriteFile(counters_out + ".summary.json",
                         obs::RenderAggregateJson(aggregate) + "\n",
                         &error)) {
      std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "spta_cli: wrote %zu counter rows to %s "
                 "(aggregate in %s.summary.json)\n",
                 samples.size(), counters_out.c_str(), counters_out.c_str());
  }
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::Tracer::Instance().WriteChromeTraceFile(trace_out, &error)) {
      std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
      return 2;
    }
    const auto stats = obs::Tracer::Instance().GetStats();
    std::fprintf(stderr,
                 "spta_cli: wrote %llu trace events to %s "
                 "(%llu dropped)\n",
                 static_cast<unsigned long long>(stats.recorded),
                 trace_out.c_str(),
                 static_cast<unsigned long long>(stats.dropped));
  }
  return 0;
}

/// Writes the campaign CSV: annotated (digest + fault count) when
/// requested or tainted, plain otherwise; file outputs always go through
/// the atomic tmp+fsync+rename path.
int WriteCampaignOutput(const Flags& flags,
                        const std::vector<analysis::RunSample>& samples,
                        std::uint64_t faults) {
  if (const int rc = WriteObsOutputs(flags, samples); rc != 0) return rc;
  const std::string output = flags.GetString("output");
  const bool annotate = flags.GetBool("annotate") || faults > 0;
  if (output.empty() || output == "-") {
    if (annotate) {
      analysis::WriteSamplesCsvAnnotated(std::cout, samples, faults);
    } else {
      analysis::WriteSamplesCsv(std::cout, samples);
    }
    return 0;
  }
  std::string error;
  bool ok;
  if (annotate) {
    ok = analysis::WriteSamplesCsvFileAtomic(output, samples, faults, &error);
  } else {
    std::ostringstream text;
    analysis::WriteSamplesCsv(text, samples);
    ok = AtomicWriteFile(output, text.str(), &error);
  }
  if (!ok) {
    std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
    return 2;
  }
  std::fprintf(stderr, "spta_cli: wrote %zu samples to %s%s\n",
               samples.size(), output.c_str(),
               faults > 0 ? " (TAINTED)" : "");
  return 0;
}

/// Reports a checkpointed execution; returns the exit code (0 also for
/// the deliberate --abort-after stop, which leaves the journal behind for
/// a later --resume and writes no CSV).
int FinishCheckpointed(const Flags& flags,
                       const analysis::CheckpointedCampaignResult& result) {
  if (result.resumed_runs > 0 || result.torn_lines > 0) {
    std::fprintf(stderr,
                 "spta_cli: restored %zu runs from journal "
                 "(%zu torn lines dropped)\n",
                 result.resumed_runs, result.torn_lines);
  }
  if (!result.completed) {
    std::fprintf(stderr,
                 "spta_cli: stopped by --abort-after; rerun with "
                 "--checkpoint ... --resume to finish\n");
    return 0;
  }
  return WriteCampaignOutput(flags, result.samples, /*faults=*/0);
}

/// Loads a trace in either container format; exit 2 on any damage.
trace::Trace LoadAnyTraceOrDie(const std::string& path,
                               atlas::TraceFormat* format) {
  trace::Trace t;
  std::string error;
  if (!atlas::TryLoadAnyTraceFile(path, &t, format, &error)) {
    std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
    std::exit(2);
  }
  return t;
}

std::uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// Reports the memoization behavior of a finished --atlas campaign.
void ReportAtlasStats(const analysis::AtlasCampaignStats& stats) {
  std::fprintf(
      stderr,
      "spta_cli: atlas memo: %llu hits, %llu misses, %llu bypasses "
      "(hit rate %.1f%%); %llu records fast-forwarded, "
      "%llu store inserts\n",
      static_cast<unsigned long long>(stats.memo.hits),
      static_cast<unsigned long long>(stats.memo.misses),
      static_cast<unsigned long long>(stats.memo.bypasses),
      stats.memo.HitRate() * 100.0,
      static_cast<unsigned long long>(stats.memo.fast_forwarded_records),
      static_cast<unsigned long long>(stats.store_inserts));
}

int RunTraceInfo(const std::string& path, bool full_table) {
  atlas::TraceFormat format = atlas::TraceFormat::kLegacy;
  const trace::Trace t = LoadAnyTraceOrDie(path, &format);
  const DualHash digest = atlas::TraceContentDigest(t);
  const std::uint64_t on_disk = FileSizeOrZero(path);

  // Footprint in BOTH containers, whichever one the file uses.
  std::ostringstream atlas_bytes;
  atlas::WriteAtlas(atlas_bytes, t);
  std::ostringstream legacy_bytes;
  trace::WriteTrace(legacy_bytes, t);
  const std::uint64_t atlas_size = atlas_bytes.str().size();
  const std::uint64_t legacy_size = legacy_bytes.str().size();

  std::printf("file:            %s\n", path.c_str());
  std::printf("container:       %s (%llu bytes on disk)\n",
              atlas::ToString(format),
              static_cast<unsigned long long>(on_disk));
  std::printf("records:         %zu\n", t.records.size());
  std::printf("path signature:  %llu\n",
              static_cast<unsigned long long>(t.path_signature));
  std::printf("content digest:  %016llx%016llx\n",
              static_cast<unsigned long long>(digest.lo),
              static_cast<unsigned long long>(digest.hi));
  std::printf("legacy size:     %llu bytes (%.2f B/record)\n",
              static_cast<unsigned long long>(legacy_size),
              t.records.empty()
                  ? 0.0
                  : static_cast<double>(legacy_size) /
                        static_cast<double>(t.records.size()));
  std::printf("atlas size:      %llu bytes (%.2f B/record, %.2fx)\n",
              static_cast<unsigned long long>(atlas_size),
              t.records.empty()
                  ? 0.0
                  : static_cast<double>(atlas_size) /
                        static_cast<double>(t.records.size()),
              atlas_size == 0 ? 0.0
                              : static_cast<double>(legacy_size) /
                                    static_cast<double>(atlas_size));

  const atlas::Segmentation seg = atlas::MineKernels(t);
  std::printf("kernels:         %zu (%llu of %llu records in kernels)\n",
              seg.kernels.size(),
              static_cast<unsigned long long>(seg.KernelRecords()),
              static_cast<unsigned long long>(t.records.size()));
  if (full_table) {
    for (const atlas::KernelInfo& k : seg.kernels) {
      std::printf(
          "kernel %016llx%016llx  begin=%llu length=%llu iterations=%llu\n",
          static_cast<unsigned long long>(k.digest.lo),
          static_cast<unsigned long long>(k.digest.hi),
          static_cast<unsigned long long>(k.body_begin),
          static_cast<unsigned long long>(k.length),
          static_cast<unsigned long long>(k.iterations));
    }
    std::printf("segments:\n");
    for (const atlas::Segment& s : seg.segments) {
      if (s.kernel == atlas::kNoKernel) {
        std::printf("  span    begin=%llu records=%llu\n",
                    static_cast<unsigned long long>(s.begin),
                    static_cast<unsigned long long>(s.records_covered()));
      } else {
        std::printf("  kernel#%u begin=%llu length=%llu iterations=%llu\n",
                    s.kernel, static_cast<unsigned long long>(s.begin),
                    static_cast<unsigned long long>(s.length),
                    static_cast<unsigned long long>(s.iterations));
      }
    }
  }
  return 0;
}

int RunTraceConvert(const std::string& in_path, const std::string& out_path,
                    bool to_atlas) {
  atlas::TraceFormat format = atlas::TraceFormat::kLegacy;
  const trace::Trace t = LoadAnyTraceOrDie(in_path, &format);
  const DualHash digest = atlas::TraceContentDigest(t);
  if (to_atlas) {
    atlas::SaveAtlasFile(out_path, t);
    obs::CountAtlasPack();
  } else {
    trace::SaveTraceFile(out_path, t);
    obs::CountAtlasUnpack();
  }
  // Round-trip verification: reload what we just wrote and require the
  // content digest to survive the conversion bit-exactly.
  trace::Trace reloaded;
  atlas::TraceFormat out_format = atlas::TraceFormat::kLegacy;
  std::string error;
  if (!atlas::TryLoadAnyTraceFile(out_path, &reloaded, &out_format, &error)) {
    std::fprintf(stderr, "spta_cli: round-trip reload failed: %s\n",
                 error.c_str());
    return 2;
  }
  if (!(atlas::TraceContentDigest(reloaded) == digest)) {
    std::fprintf(stderr,
                 "spta_cli: round-trip digest mismatch writing %s\n",
                 out_path.c_str());
    return 2;
  }
  const std::uint64_t in_size = FileSizeOrZero(in_path);
  const std::uint64_t out_size = FileSizeOrZero(out_path);
  std::fprintf(stderr,
               "spta_cli: %s %zu records %s -> %s (%llu -> %llu bytes, "
               "%.2fx), digest verified\n",
               to_atlas ? "packed" : "unpacked", t.records.size(),
               in_path.c_str(), out_path.c_str(),
               static_cast<unsigned long long>(in_size),
               static_cast<unsigned long long>(out_size),
               out_size == 0 ? 0.0
                             : static_cast<double>(in_size) /
                                   static_cast<double>(out_size));
  return 0;
}

int RunTrace(const Flags& flags) {
  const auto& pos = flags.positional();
  if (pos.empty()) {
    std::fprintf(stderr,
                 "spta_cli: trace needs a subcommand "
                 "(pack|unpack|info|mine)\n");
    return 2;
  }
  const std::string& sub = pos[0];
  if (sub == "pack" || sub == "unpack") {
    if (pos.size() != 3) {
      std::fprintf(stderr, "spta_cli: trace %s needs <in> <out>\n",
                   sub.c_str());
      return 2;
    }
    return RunTraceConvert(pos[1], pos[2], sub == "pack");
  }
  if (sub == "info" || sub == "mine") {
    if (pos.size() != 2) {
      std::fprintf(stderr, "spta_cli: trace %s needs <file>\n", sub.c_str());
      return 2;
    }
    return RunTraceInfo(pos[1], /*full_table=*/sub == "mine");
  }
  std::fprintf(stderr, "spta_cli: unknown trace subcommand '%s'\n",
               sub.c_str());
  return 2;
}

/// `trace-view [--merge OUT] FILE...`: summarize Chrome trace JSON
/// exports and optionally splice them into one loadable document. Works
/// on anything the repo's exporters produce — live TRACE replies, client
/// --trace-out files, per-process --trace-dir exports, flight-recorder
/// harvest dumps — because they all share the traceEvents schema.
int RunTraceView(const Flags& flags) {
  const auto& files = flags.positional();
  if (files.empty()) {
    std::fprintf(stderr, "spta_cli: trace-view needs FILE...\n");
    return 2;
  }
  bool any_unreadable = false;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spta_cli: cannot open '%s'\n", path.c_str());
      any_unreadable = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string events = obs::ExtractTraceEvents(buffer.str());
    // Every exporter emits exactly one "ph" field per event, so counting
    // the key counts events without a JSON parser.
    std::size_t count = 0;
    for (std::size_t pos = 0;
         (pos = events.find("\"ph\":", pos)) != std::string::npos;
         pos += 5) {
      ++count;
    }
    // Distinct distributed traces: the 16-hex trace_id values the events
    // carry in their args.
    std::set<std::string> trace_ids;
    for (std::size_t pos = 0;
         (pos = events.find("\"trace_id\":\"", pos)) != std::string::npos;) {
      pos += 12;
      if (pos + 16 <= events.size()) trace_ids.insert(events.substr(pos, 16));
    }
    std::printf("%s: %zu events, %zu distributed trace(s)", path.c_str(),
                count, trace_ids.size());
    std::size_t shown = 0;
    for (const std::string& id : trace_ids) {
      std::printf("%s%s", shown == 0 ? " [" : " ", id.c_str());
      if (++shown == 4) break;
    }
    if (shown > 0) {
      std::printf("%s]", trace_ids.size() > shown ? " ..." : "");
    }
    std::printf("\n");
  }
  const std::string merge_out = flags.GetString("merge");
  if (!merge_out.empty()) {
    std::size_t merged = 0;
    std::string error;
    if (!obs::MergeChromeTraceFiles(files, merge_out, &merged, &error)) {
      std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "spta_cli: merged %zu/%zu files into %s\n", merged,
                 files.size(), merge_out.c_str());
  }
  return any_unreadable ? 2 : 0;
}

int RunCampaign(const Flags& flags) {
  bool platform_ok = false;
  const sim::PlatformConfig config = PlatformFromFlags(flags, &platform_ok);
  if (!platform_ok) return 2;
  MaybeEnableTracer(flags);

  analysis::CampaignConfig cc;
  cc.runs = static_cast<std::size_t>(flags.GetInt("runs", 1000));
  cc.master_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 20170327));
  cc.distinct_scenarios =
      static_cast<std::size_t>(flags.GetInt("scenarios", 0));

  const std::size_t jobs = JobsFlag(flags);
  const std::size_t batch_lanes = BatchLanesFlag(flags);
  const bool use_atlas = flags.GetBool("atlas");
  const apps::TvcaApp app;
  const fault::FaultCampaignConfig fc = FaultPlanFromFlags(flags, cc);
  const bool faulty = fc.seu.Enabled() || fc.reseed_dropout > 0.0;
  if (faulty && batch_lanes > 0) {
    std::fprintf(stderr,
                 "spta_cli: --batch-lanes runs clean campaigns only "
                 "(drop the fault flags)\n");
    return 2;
  }
  if (faulty && use_atlas) {
    std::fprintf(stderr,
                 "spta_cli: --atlas runs clean campaigns only "
                 "(drop the fault flags)\n");
    return 2;
  }

  if (flags.Has("checkpoint")) {
    if (faulty) {
      std::fprintf(stderr,
                   "spta_cli: --checkpoint journals clean campaigns only "
                   "(drop the fault flags)\n");
      return 2;
    }
    const analysis::CheckpointOptions copts = CheckpointFromFlags(flags);
    analysis::CheckpointedCampaignResult result;
    std::string error;
    std::fprintf(stderr,
                 "spta_cli: %zu runs on %s (%zu jobs, journal %s)...\n",
                 cc.runs, config.name.c_str(), jobs,
                 copts.journal_path.c_str());
    analysis::AtlasCampaignStats atlas_stats;
    bool ok;
    if (batch_lanes > 0) {
      ok = analysis::RunTvcaCampaignBatchedCheckpointed(
          config, app, cc, batch_lanes, jobs, copts, &result, &error);
    } else if (use_atlas) {
      ok = analysis::RunTvcaCampaignMemoizedCheckpointed(
          config, app, cc, jobs, copts, &result, &error, &atlas_stats);
    } else {
      ok = analysis::RunTvcaCampaignCheckpointed(config, app, cc, jobs,
                                                 copts, &result, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
      return 2;
    }
    if (use_atlas && batch_lanes == 0) ReportAtlasStats(atlas_stats);
    return FinishCheckpointed(flags, result);
  }

  std::fprintf(stderr, "spta_cli: %zu runs on %s (%zu jobs)...\n", cc.runs,
               config.name.c_str(), jobs);
  if (faulty) {
    const auto result = fault::RunTvcaCampaignWithFaults(config, app, fc, jobs);
    std::fprintf(stderr,
                 "spta_cli: fault plan fired: %llu SEU flips, "
                 "%llu reseeds dropped\n",
                 static_cast<unsigned long long>(result.faults_injected),
                 static_cast<unsigned long long>(result.reseeds_dropped));
    return WriteCampaignOutput(
        flags, result.samples,
        result.faults_injected + result.reseeds_dropped);
  }
  std::vector<analysis::RunSample> samples;
  if (batch_lanes > 0) {
    samples =
        analysis::RunTvcaCampaignBatched(config, app, cc, batch_lanes, jobs);
  } else if (use_atlas) {
    analysis::AtlasCampaignStats atlas_stats;
    samples =
        analysis::RunTvcaCampaignMemoized(config, app, cc, jobs, &atlas_stats);
    ReportAtlasStats(atlas_stats);
  } else {
    samples = analysis::RunTvcaCampaignParallel(config, app, cc, jobs);
  }
  return WriteCampaignOutput(flags, samples, /*faults=*/0);
}

int RunAnalyze(const Flags& flags) {
  analysis::CsvMeta meta;
  const auto obs = LoadSamples(flags, &meta);
  mbpta::MbptaOptions opts;
  opts.block_size =
      static_cast<std::size_t>(flags.GetInt("block-size", 0));
  opts.iid.alpha = flags.GetDouble("alpha", 0.05);
  opts.iid.ljung_box_lags =
      static_cast<std::size_t>(flags.GetInt("lags", 20));
  opts.min_blocks = static_cast<std::size_t>(flags.GetInt("min-blocks", 30));

  const auto guarded = analysis::AnalyzeObservationsGuarded(
      obs, opts, analysis::ProvenanceFromMeta(meta));
  if (!guarded.result.has_value()) {
    // Unfit before any statistics ran: tainted, digest mismatch, too few
    // samples. Reject with the typed diagnosis — never fit anyway.
    std::fprintf(stderr, "spta_cli: analysis rejected (%s): %s\n",
                 analysis::DiagnosisCodeName(guarded.diagnosis.code),
                 guarded.diagnosis.message.c_str());
    return 2;
  }
  if (meta.digest.has_value()) {
    std::printf("sample integrity: digest verified over %zu rows\n",
                obs.size());
  }
  const auto& result = *guarded.result;
  std::cout << mbpta::RenderReport(result, "spta_cli analysis");

  const auto times = Times(obs);
  if (flags.GetBool("histogram")) {
    const Histogram h = Histogram::FromSample(times, 20);
    std::printf("execution-time histogram:\n%s", h.Ascii(48).c_str());
  }

  const auto coverage = mbpta::EstimatePathCoverage(obs);
  std::printf(
      "path coverage: %zu paths in %zu runs; Good-Turing unseen-path "
      "probability %.2e\n",
      coverage.observed_paths, coverage.runs, coverage.missing_mass);

  if (flags.GetBool("per-path")) {
    mbpta::PerPathOptions ppo;
    ppo.mbpta = opts;
    ppo.min_samples_per_path = static_cast<std::size_t>(
        flags.GetInt("min-path-samples", 100));
    const auto per_path = mbpta::AnalyzePerPath(obs, ppo);
    std::cout << mbpta::RenderReport(per_path);
  }
  return result.usable ? 0 : 1;
}

int RunConvergence(const Flags& flags) {
  analysis::CsvMeta meta;
  const auto obs = LoadSamples(flags, &meta);
  if (meta.Tainted()) {
    std::fprintf(stderr,
                 "spta_cli: sample is tainted (%llu faults injected); "
                 "refusing convergence analysis\n",
                 static_cast<unsigned long long>(meta.faults));
    return 2;
  }
  mbpta::ConvergenceOptions opts;
  opts.initial_runs =
      static_cast<std::size_t>(flags.GetInt("initial", 250));
  opts.step_runs = static_cast<std::size_t>(flags.GetInt("step", 250));
  opts.reference_prob = flags.GetDouble("prob", 1e-12);
  opts.rel_tolerance = flags.GetDouble("tol", 0.02);
  const auto times = Times(obs);
  if (times.size() < opts.initial_runs) {
    std::fprintf(stderr,
                 "spta_cli: sample of %zu smaller than --initial %zu\n",
                 times.size(), opts.initial_runs);
    return 2;
  }
  const auto conv = mbpta::CheckConvergence(times, opts);
  for (const auto& pt : conv.points) {
    std::printf("n=%6zu  pWCET=%.0f  delta=%.4f\n", pt.runs, pt.pwcet,
                pt.rel_delta);
  }
  std::printf("converged: %s (at %zu runs)\n",
              conv.converged ? "yes" : "no", conv.runs_required);
  return conv.converged ? 0 : 1;
}

int RunRecord(const Flags& flags) {
  const std::string path = flags.GetString("trace");
  if (path.empty()) {
    std::fprintf(stderr, "spta_cli: record needs --trace FILE\n");
    return 2;
  }
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(
      static_cast<std::uint64_t>(flags.GetInt("scenario", 1)));
  trace::SaveTraceFile(path, frame.trace);
  std::fprintf(stderr, "spta_cli: wrote %zu records (path %u) to %s\n",
               frame.trace.records.size(), frame.path_id, path.c_str());
  return 0;
}

int RunSimulate(const Flags& flags) {
  const std::string path = flags.GetString("trace");
  if (path.empty()) {
    std::fprintf(stderr, "spta_cli: simulate needs --trace FILE\n");
    return 2;
  }
  bool platform_ok = false;
  const sim::PlatformConfig config = PlatformFromFlags(flags, &platform_ok);
  if (!platform_ok) return 2;
  MaybeEnableTracer(flags);
  atlas::TraceFormat trace_format = atlas::TraceFormat::kLegacy;
  const trace::Trace t = LoadAnyTraceOrDie(path, &trace_format);
  const auto runs = static_cast<std::size_t>(flags.GetInt("runs", 1000));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 20170327));
  const std::size_t jobs = JobsFlag(flags);

  analysis::CampaignConfig cc;
  cc.runs = runs;
  cc.master_seed = seed;
  const std::size_t batch_lanes = BatchLanesFlag(flags);
  const bool use_atlas = flags.GetBool("atlas");
  const fault::FaultCampaignConfig fc = FaultPlanFromFlags(flags, cc);
  const bool faulty = fc.seu.Enabled() || fc.reseed_dropout > 0.0;
  if (faulty && batch_lanes > 0) {
    std::fprintf(stderr,
                 "spta_cli: --batch-lanes runs clean campaigns only "
                 "(drop the fault flags)\n");
    return 2;
  }
  if (faulty && use_atlas) {
    std::fprintf(stderr,
                 "spta_cli: --atlas runs clean campaigns only "
                 "(drop the fault flags)\n");
    return 2;
  }

  if (flags.Has("checkpoint")) {
    if (faulty) {
      std::fprintf(stderr,
                   "spta_cli: --checkpoint journals clean campaigns only "
                   "(drop the fault flags)\n");
      return 2;
    }
    const analysis::CheckpointOptions copts = CheckpointFromFlags(flags);
    analysis::CheckpointedCampaignResult result;
    std::string error;
    analysis::AtlasCampaignStats atlas_stats;
    bool ok;
    if (batch_lanes > 0) {
      ok = analysis::RunFixedTraceCampaignBatchedCheckpointed(
          config, t, runs, seed, batch_lanes, jobs, copts, &result, &error);
    } else if (use_atlas) {
      ok = analysis::RunFixedTraceCampaignMemoizedCheckpointed(
          config, t, runs, seed, jobs, copts, &result, &error, &atlas_stats);
    } else {
      ok = analysis::RunFixedTraceCampaignCheckpointed(
          config, t, runs, seed, jobs, copts, &result, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "spta_cli: %s\n", error.c_str());
      return 2;
    }
    if (use_atlas && batch_lanes == 0) ReportAtlasStats(atlas_stats);
    return FinishCheckpointed(flags, result);
  }

  if (faulty) {
    const auto result =
        fault::RunFixedTraceCampaignWithFaults(config, t, fc, jobs);
    std::fprintf(stderr,
                 "spta_cli: fault plan fired: %llu SEU flips, "
                 "%llu reseeds dropped\n",
                 static_cast<unsigned long long>(result.faults_injected),
                 static_cast<unsigned long long>(result.reseeds_dropped));
    return WriteCampaignOutput(
        flags, result.samples,
        result.faults_injected + result.reseeds_dropped);
  }
  std::vector<analysis::RunSample> samples;
  if (batch_lanes > 0) {
    samples = analysis::RunFixedTraceCampaignBatched(config, t, runs, seed,
                                                     batch_lanes, jobs);
  } else if (use_atlas) {
    analysis::AtlasCampaignStats atlas_stats;
    samples = analysis::RunFixedTraceCampaignMemoized(config, t, runs, seed,
                                                      jobs, &atlas_stats);
    ReportAtlasStats(atlas_stats);
  } else {
    samples = analysis::RunFixedTraceCampaignParallel(config, t, runs, seed,
                                                      jobs);
  }
  return WriteCampaignOutput(flags, samples, /*faults=*/0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);

  if (command == "campaign") return RunCampaign(flags);
  if (command == "analyze") return RunAnalyze(flags);
  if (command == "convergence") return RunConvergence(flags);
  if (command == "record") return RunRecord(flags);
  if (command == "simulate") return RunSimulate(flags);
  if (command == "trace") return RunTrace(flags);
  if (command == "trace-view") return RunTraceView(flags);
  std::fprintf(stderr, "spta_cli: unknown command '%s'\n", command.c_str());
  return Usage();
}
