// spta_cli — command-line front end to the SpacePTA toolkit.
//
//   spta_cli campaign  --platform rand|det|rand-op --runs N --seed S
//                      [--scenarios K] [--jobs J] [--output samples.csv]
//       Runs a TVCA measurement campaign and writes cycles,path_id CSV.
//       --jobs J fans the runs across J worker threads (default: hardware
//       concurrency); the samples are bit-identical for every J.
//
//   spta_cli analyze   [--input samples.csv] [--block-size B] [--lags L]
//                      [--alpha A] [--per-path] [--min-path-samples M]
//       Reads a sample (file or stdin) and runs the MBPTA pipeline:
//       i.i.d. gate, Gumbel fit, GOF diagnostics, pWCET table, path
//       coverage. Exit code 0 iff the analysis is usable.
//
//   spta_cli convergence [--input samples.csv] [--initial N] [--step N]
//                        [--prob P] [--tol T]
//       Applies the MBPTA convergence criterion over sample prefixes.
//
//   spta_cli record    --trace out.trc [--scenario S]
//       Records one TVCA major-frame trace to a binary trace file.
//
//   spta_cli simulate  --trace in.trc --platform rand|det|rand-op
//                      --runs N [--seed S] [--jobs J] [--output samples.csv]
//       Replays a recorded trace N times (fresh platform seed per run)
//       and writes the execution times as CSV.
//
// The analyze/convergence commands work on measurements from ANY source
// (a real board, another simulator) — the bundled simulator is just one
// producer of the CSV format.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/path_coverage.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(stderr,
               "usage: spta_cli <campaign|analyze|convergence|record|simulate> [flags]\n"
               "  campaign    --platform rand|det|rand-op --runs N "
               "[--seed S] [--scenarios K] [--jobs J] [--output FILE]\n"
               "  analyze     [--input FILE] [--block-size B] [--lags L] "
               "[--alpha A] [--per-path] [--min-path-samples M] [--histogram]\n"
               "  convergence [--input FILE] [--initial N] [--step N] "
               "[--prob P] [--tol T]\n"
               "  record      --trace FILE [--scenario S]\n"
               "  simulate    --trace FILE --platform rand|det|rand-op "
               "--runs N [--seed S] [--jobs J] [--output FILE]\n");
  return 2;
}

std::vector<mbpta::PathObservation> LoadSamples(const Flags& flags) {
  const std::string input = flags.GetString("input");
  if (input.empty() || input == "-") {
    return analysis::ReadSamplesCsv(std::cin);
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "spta_cli: cannot open '%s'\n", input.c_str());
    std::exit(2);
  }
  return analysis::ReadSamplesCsv(in);
}

/// Parses --jobs: 0 or absent = hardware concurrency; negative is an
/// operator error (exits), not a 2^64-thread request.
std::size_t JobsFlag(const Flags& flags) {
  const std::int64_t jobs = flags.GetInt("jobs", 0);
  if (jobs < 0) {
    std::fprintf(stderr, "spta_cli: --jobs must be >= 0 (got %lld)\n",
                 static_cast<long long>(jobs));
    std::exit(2);
  }
  return jobs == 0 ? analysis::DefaultJobs()
                   : static_cast<std::size_t>(jobs);
}

std::vector<double> Times(
    const std::vector<mbpta::PathObservation>& obs) {
  std::vector<double> t;
  t.reserve(obs.size());
  for (const auto& o : obs) t.push_back(o.time);
  return t;
}

int RunCampaign(const Flags& flags) {
  const std::string platform_name = flags.GetString("platform", "rand");
  sim::PlatformConfig config;
  if (platform_name == "rand") {
    config = sim::RandLeon3Config();
  } else if (platform_name == "det") {
    config = sim::DetLeon3Config();
  } else if (platform_name == "rand-op") {
    config = sim::RandLeon3OperationConfig();
  } else {
    std::fprintf(stderr, "spta_cli: unknown platform '%s'\n",
                 platform_name.c_str());
    return 2;
  }

  analysis::CampaignConfig cc;
  cc.runs = static_cast<std::size_t>(flags.GetInt("runs", 1000));
  cc.master_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 20170327));
  cc.distinct_scenarios =
      static_cast<std::size_t>(flags.GetInt("scenarios", 0));

  const std::size_t jobs = JobsFlag(flags);
  const apps::TvcaApp app;
  std::fprintf(stderr, "spta_cli: %zu runs on %s (%zu jobs)...\n", cc.runs,
               config.name.c_str(), jobs);
  const auto samples = analysis::RunTvcaCampaignParallel(config, app, cc, jobs);

  const std::string output = flags.GetString("output");
  if (output.empty() || output == "-") {
    analysis::WriteSamplesCsv(std::cout, samples);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "spta_cli: cannot write '%s'\n", output.c_str());
      return 2;
    }
    analysis::WriteSamplesCsv(out, samples);
    std::fprintf(stderr, "spta_cli: wrote %zu samples to %s\n",
                 samples.size(), output.c_str());
  }
  return 0;
}

int RunAnalyze(const Flags& flags) {
  const auto obs = LoadSamples(flags);
  if (obs.size() < 50) {
    std::fprintf(stderr, "spta_cli: need at least 50 samples, got %zu\n",
                 obs.size());
    return 2;
  }
  mbpta::MbptaOptions opts;
  opts.block_size =
      static_cast<std::size_t>(flags.GetInt("block-size", 0));
  opts.iid.alpha = flags.GetDouble("alpha", 0.05);
  opts.iid.ljung_box_lags =
      static_cast<std::size_t>(flags.GetInt("lags", 20));
  opts.min_blocks = static_cast<std::size_t>(flags.GetInt("min-blocks", 30));

  const auto times = Times(obs);
  const auto result = mbpta::AnalyzeSample(times, opts);
  std::cout << mbpta::RenderReport(result, "spta_cli analysis");

  if (flags.GetBool("histogram")) {
    const Histogram h = Histogram::FromSample(times, 20);
    std::printf("execution-time histogram:\n%s", h.Ascii(48).c_str());
  }

  const auto coverage = mbpta::EstimatePathCoverage(obs);
  std::printf(
      "path coverage: %zu paths in %zu runs; Good-Turing unseen-path "
      "probability %.2e\n",
      coverage.observed_paths, coverage.runs, coverage.missing_mass);

  if (flags.GetBool("per-path")) {
    mbpta::PerPathOptions ppo;
    ppo.mbpta = opts;
    ppo.min_samples_per_path = static_cast<std::size_t>(
        flags.GetInt("min-path-samples", 100));
    const auto per_path = mbpta::AnalyzePerPath(obs, ppo);
    std::cout << mbpta::RenderReport(per_path);
  }
  return result.usable ? 0 : 1;
}

int RunConvergence(const Flags& flags) {
  const auto obs = LoadSamples(flags);
  mbpta::ConvergenceOptions opts;
  opts.initial_runs =
      static_cast<std::size_t>(flags.GetInt("initial", 250));
  opts.step_runs = static_cast<std::size_t>(flags.GetInt("step", 250));
  opts.reference_prob = flags.GetDouble("prob", 1e-12);
  opts.rel_tolerance = flags.GetDouble("tol", 0.02);
  const auto times = Times(obs);
  if (times.size() < opts.initial_runs) {
    std::fprintf(stderr,
                 "spta_cli: sample of %zu smaller than --initial %zu\n",
                 times.size(), opts.initial_runs);
    return 2;
  }
  const auto conv = mbpta::CheckConvergence(times, opts);
  for (const auto& pt : conv.points) {
    std::printf("n=%6zu  pWCET=%.0f  delta=%.4f\n", pt.runs, pt.pwcet,
                pt.rel_delta);
  }
  std::printf("converged: %s (at %zu runs)\n",
              conv.converged ? "yes" : "no", conv.runs_required);
  return conv.converged ? 0 : 1;
}

int RunRecord(const Flags& flags) {
  const std::string path = flags.GetString("trace");
  if (path.empty()) {
    std::fprintf(stderr, "spta_cli: record needs --trace FILE\n");
    return 2;
  }
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(
      static_cast<std::uint64_t>(flags.GetInt("scenario", 1)));
  trace::SaveTraceFile(path, frame.trace);
  std::fprintf(stderr, "spta_cli: wrote %zu records (path %u) to %s\n",
               frame.trace.records.size(), frame.path_id, path.c_str());
  return 0;
}

int RunSimulate(const Flags& flags) {
  const std::string path = flags.GetString("trace");
  if (path.empty()) {
    std::fprintf(stderr, "spta_cli: simulate needs --trace FILE\n");
    return 2;
  }
  const std::string platform_name = flags.GetString("platform", "rand");
  sim::PlatformConfig config;
  if (platform_name == "rand") {
    config = sim::RandLeon3Config();
  } else if (platform_name == "det") {
    config = sim::DetLeon3Config();
  } else if (platform_name == "rand-op") {
    config = sim::RandLeon3OperationConfig();
  } else {
    std::fprintf(stderr, "spta_cli: unknown platform '%s'\n",
                 platform_name.c_str());
    return 2;
  }
  const trace::Trace t = trace::LoadTraceFile(path);
  const auto runs = static_cast<std::size_t>(flags.GetInt("runs", 1000));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 20170327));
  const std::size_t jobs = JobsFlag(flags);
  const auto samples =
      analysis::RunFixedTraceCampaignParallel(config, t, runs, seed, jobs);
  const std::string output = flags.GetString("output");
  if (output.empty() || output == "-") {
    analysis::WriteSamplesCsv(std::cout, samples);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "spta_cli: cannot write '%s'\n", output.c_str());
      return 2;
    }
    analysis::WriteSamplesCsv(out, samples);
    std::fprintf(stderr, "spta_cli: wrote %zu samples to %s\n",
                 samples.size(), output.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);

  if (command == "campaign") return RunCampaign(flags);
  if (command == "analyze") return RunAnalyze(flags);
  if (command == "convergence") return RunConvergence(flags);
  if (command == "record") return RunRecord(flags);
  if (command == "simulate") return RunSimulate(flags);
  std::fprintf(stderr, "spta_cli: unknown command '%s'\n", command.c_str());
  return Usage();
}
