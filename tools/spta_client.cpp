// spta_client — command-line client for a running spta_serve daemon.
//
//   spta_client ping     --socket PATH
//   spta_client analyze  --socket PATH --input samples.csv
//                        [--prob P] [--per-path] [--block-size B]
//                        [--deadline-ms D]
//       One-shot analysis of a CSV sample (inline submission; identical
//       resubmissions hit the server's result cache).
//
//   spta_client session  --socket PATH --input samples.csv [--name NAME]
//                        [--chunk N] [--prob P] [--per-path]
//       Streaming ingestion: opens a session, appends the sample in
//       chunks (default 250), reporting the convergence status after each
//       chunk, then requests the analysis and closes the session.
//
//   spta_client metrics  --socket PATH
//   spta_client shutdown --socket PATH
//       Graceful drain: the daemon answers every accepted request, then
//       exits.
//
// Exit code: 0 on OK (for analyze: also requires usable=1), 1 on an
// unusable analysis, 2 on transport/usage errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/sample_io.hpp"
#include "common/flags.hpp"
#include "service/client.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(
      stderr,
      "usage: spta_client <ping|analyze|session|metrics|shutdown> "
      "--socket PATH [flags]\n"
      "  analyze  --input FILE [--prob P] [--per-path] [--block-size B] "
      "[--deadline-ms D]\n"
      "  session  --input FILE [--name NAME] [--chunk N] [--prob P] "
      "[--per-path]\n");
  return 2;
}

std::vector<mbpta::PathObservation> LoadSamples(const Flags& flags) {
  const std::string input = flags.GetString("input");
  std::vector<mbpta::PathObservation> observations;
  std::string error;
  bool ok = false;
  if (input.empty() || input == "-") {
    ok = analysis::TryReadSamplesCsv(std::cin, &observations, &error);
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "spta_client: cannot open '%s'\n", input.c_str());
      std::exit(2);
    }
    ok = analysis::TryReadSamplesCsv(in, &observations, &error);
  }
  if (!ok) {
    std::fprintf(stderr, "spta_client: %s\n", error.c_str());
    std::exit(2);
  }
  return observations;
}

service::Args AnalysisOptions(const Flags& flags) {
  service::Args options;
  if (flags.Has("prob")) options.SetDouble("prob", flags.GetDouble("prob", 1e-12));
  if (flags.Has("block-size")) {
    options.SetUint("block_size",
                    static_cast<std::uint64_t>(flags.GetInt("block-size", 0)));
  }
  if (flags.GetBool("per-path")) options.Set("per_path", "1");
  if (flags.Has("deadline-ms")) {
    options.SetDouble("deadline_ms", flags.GetDouble("deadline-ms", 0.0));
  }
  return options;
}

/// Prints a response's args and payload; returns the command exit code.
int Report(const service::Response& response) {
  if (!response.ok) {
    std::fprintf(stderr, "spta_client: ERR %s: %s\n",
                 response.args.GetString("code", "?").c_str(),
                 response.payload.c_str());
    return 2;
  }
  const std::string args = response.args.Encode();
  if (!args.empty()) std::printf("%s\n", args.c_str());
  if (!response.payload.empty()) std::fputs(response.payload.c_str(), stdout);
  return response.args.Has("usable") &&
                 response.args.GetUint("usable", 0) == 0
             ? 1
             : 0;
}

int RunSession(service::Client& client, const Flags& flags) {
  const auto observations = LoadSamples(flags);
  const std::string name = flags.GetString("name", "cli");
  const std::size_t chunk =
      static_cast<std::size_t>(flags.GetInt("chunk", 250));
  if (chunk == 0) {
    std::fprintf(stderr, "spta_client: --chunk must be >= 1\n");
    return 2;
  }
  auto response = client.Open(name);
  if (!response.ok) return Report(response);
  for (std::size_t offset = 0; offset < observations.size();
       offset += chunk) {
    const std::size_t n = std::min(chunk, observations.size() - offset);
    response = client.Append(
        name, std::span(observations).subspan(offset, n));
    if (!response.ok) return Report(response);
    std::fprintf(stderr,
                 "spta_client: appended %zu/%zu samples, converged=%s\n",
                 offset + n, observations.size(),
                 response.args.GetString("converged", "0").c_str());
    if (response.args.GetUint("converged", 0) == 1) {
      std::fprintf(stderr,
                   "spta_client: convergence criterion met at %s runs\n",
                   response.args.GetString("runs_required", "?").c_str());
    }
  }
  response = client.AnalyzeSession(name, AnalysisOptions(flags));
  const int code = Report(response);
  client.Close(name);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  const std::string socket_path = flags.GetString("socket");
  if (socket_path.empty()) return Usage();

  std::string error;
  const auto connection =
      service::UnixSocketConnection::Connect(socket_path, &error);
  if (!connection) {
    std::fprintf(stderr, "spta_client: %s\n", error.c_str());
    return 2;
  }
  service::Client client(connection->in(), connection->out());

  if (command == "ping") return Report(client.Ping());
  if (command == "analyze") {
    return Report(client.AnalyzeInline(LoadSamples(flags),
                                       AnalysisOptions(flags)));
  }
  if (command == "session") return RunSession(client, flags);
  if (command == "metrics") return Report(client.Metrics());
  if (command == "shutdown") return Report(client.Shutdown());
  std::fprintf(stderr, "spta_client: unknown command '%s'\n",
               command.c_str());
  return Usage();
}
