// spta_client — command-line client for a running spta_serve daemon.
//
// Every command targets the daemon with exactly one of:
//   --socket PATH       AF_UNIX socket of a classic daemon
//   --tcp HOST:PORT     TCP listener of a sharded fleet (spta_serve --tcp)
//
//   spta_client ping     --socket PATH
//   spta_client analyze  --socket PATH --input samples.csv
//                        [--prob P] [--per-path] [--block-size B]
//                        [--deadline-ms D]
//       One-shot analysis of a CSV sample (inline submission; identical
//       resubmissions hit the server's result cache).
//
//   spta_client session  --socket PATH --input samples.csv [--name NAME]
//                        [--chunk N] [--prob P] [--per-path]
//       Streaming ingestion: opens a session, appends the sample in
//       chunks (default 250), reporting the convergence status after each
//       chunk, then requests the analysis and closes the session.
//
//   spta_client metrics  --socket PATH [--metrics-prom]
//       Dumps the daemon's metrics surface; --metrics-prom asks for the
//       Prometheus text exposition instead (METRICS_PROM verb) and prints
//       the raw scrape body, so a cron job piping to a textfile collector
//       needs no custom speaker of the spta1 protocol.
//   spta_client health   --socket PATH
//       Readiness probe (HEALTH verb): status=ok|degraded plus fleet
//       args and per-shard readiness lines — answered off the event
//       loop, so it stays honest while the worker pool is saturated.
//   spta_client trace    --socket PATH
//       Prints the daemon's live Chrome trace JSON export (TRACE verb)
//       on stdout — load it in chrome://tracing or Perfetto, or merge
//       with other exports via spta_cli trace-view --merge.
//   spta_client shutdown --socket PATH
//       Graceful drain: the daemon answers every accepted request, then
//       exits.
//
// Distributed tracing (docs/OBSERVABILITY.md): --trace-out FILE mints a
// root trace context for the invocation, stamps it on every request
// frame (the server's spans link under it), records the client's own
// spans — connect, per-attempt round trips, backoff waits — and exports
// them as Chrome trace JSON to FILE at exit.
//
// Resilience flags (all commands):
//   --retries N        total attempts incl. the first (default 4; 1 = off)
//   --retry-base-ms B  decorrelated-jitter base delay   (default 25)
//   --retry-cap-ms C   decorrelated-jitter delay cap    (default 2000)
//   --retry-seed S     jitter stream seed — replayable  (default 1)
//   --timeout-ms T     per-attempt I/O deadline (SO_RCVTIMEO/SO_SNDTIMEO);
//                      0 = wait forever (default)
// Retryable failures — connect errors, ERR transport (stream died
// mid-exchange), ERR deadline, and ERR busy (bounded-queue backpressure)
// — are reattempted on a fresh connection after a decorrelated-jitter
// sleep (docs/FAULTS.md). Everything else fails immediately.
//
// When an ERR busy carries a retry_after_ms hint (admission-control shed
// or queue-full backpressure from a sharded fleet), the sleep is
// max(hint, jitter) clamped to --retry-cap-ms: the server's estimate can
// only lengthen the wait, the seeded jitter stream still advances
// identically (replayability), and the cap keeps a confused server from
// parking the client. Hinted and blind waits are counted separately and
// summarized on stderr at exit.
//
// Exit code: 0 on OK (for analyze: also requires usable=1), 1 on an
// unusable analysis, 2 on transport/usage/permanent errors, 3 when the
// daemon was still ERR-busy after all retries (back off and rerun later —
// the request itself is fine).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/sample_io.hpp"
#include "common/flags.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "service/client.hpp"
#include "service/retry.hpp"

namespace {

using namespace spta;

constexpr int kExitBusy = 3;

/// --trace-out: client-side distributed tracing for one invocation.
/// Enables the tracer, mints the root trace context (every frame the
/// Client sends carries it, so server spans link under this client), and
/// exports the client's own spans — connect, per-attempt round trips,
/// backoff waits — as Chrome trace JSON at exit. Inert when `path` is
/// empty: spans compile to enabled-flag checks that stay false.
class ClientTraceSession {
 public:
  ClientTraceSession(std::string path, const std::string& command)
      : path_(std::move(path)) {
    if (path_.empty()) return;
    obs::Tracer::Instance().Enable();
    scope_.emplace(obs::MintTraceContext());
    root_.emplace("client", command == "analyze"  ? "analyze"
                            : command == "session" ? "session"
                                                   : "request");
  }

  ~ClientTraceSession() {
    root_.reset();  // Close the root span before exporting.
    if (path_.empty()) return;
    std::string error;
    if (!obs::Tracer::Instance().WriteChromeTraceFile(path_, &error)) {
      std::fprintf(stderr, "spta_client: trace export failed: %s\n",
                   error.c_str());
    }
  }

  ClientTraceSession(const ClientTraceSession&) = delete;
  ClientTraceSession& operator=(const ClientTraceSession&) = delete;

 private:
  std::string path_;
  std::optional<obs::ScopedTraceContext> scope_;
  std::optional<obs::ScopedSpan> root_;
};

/// Backoff bookkeeping: how many sleeps were sized by a server
/// retry_after_ms hint versus blind jitter. Summarized at exit.
std::uint64_t g_hint_waits = 0;
std::uint64_t g_blind_waits = 0;

/// The sleep before the next attempt. The jitter schedule ALWAYS advances
/// (same seed → same schedule, hints present or not); a server hint can
/// only lengthen the result, and the policy cap bounds both.
std::chrono::milliseconds NextBackoff(const service::Response& response,
                                      service::RetrySchedule* schedule,
                                      const service::RetryPolicy& policy) {
  const std::chrono::milliseconds blind = schedule->NextDelay();
  const std::uint64_t hint = response.args.GetUint("retry_after_ms", 0);
  if (hint == 0) {
    ++g_blind_waits;
    return blind;
  }
  ++g_hint_waits;
  const auto hinted = std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(hint));
  return std::min(policy.cap, std::max(hinted, blind));
}

void PrintBackoffSummary() {
  if (g_hint_waits + g_blind_waits == 0) return;
  std::fprintf(stderr,
               "spta_client: backoff waits: %llu hinted (retry_after_ms), "
               "%llu blind\n",
               static_cast<unsigned long long>(g_hint_waits),
               static_cast<unsigned long long>(g_blind_waits));
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: spta_client "
      "<ping|analyze|session|metrics|health|trace|shutdown> "
      "(--socket PATH | --tcp HOST:PORT) [flags]\n"
      "  analyze  --input FILE [--prob P] [--per-path] [--block-size B] "
      "[--deadline-ms D]\n"
      "  session  --input FILE [--name NAME] [--chunk N] [--prob P] "
      "[--per-path]\n"
      "  metrics  [--metrics-prom]  (Prometheus text format)\n"
      "  health   (readiness: status=ok|degraded + per-shard lines)\n"
      "  trace    (server's Chrome trace JSON export on stdout)\n"
      "  common   [--retries N] [--retry-base-ms B] [--retry-cap-ms C] "
      "[--retry-seed S] [--timeout-ms T] [--trace-out FILE]\n");
  return 2;
}

std::vector<mbpta::PathObservation> LoadSamples(const Flags& flags) {
  const std::string input = flags.GetString("input");
  std::vector<mbpta::PathObservation> observations;
  std::string error;
  bool ok = false;
  if (input.empty() || input == "-") {
    ok = analysis::TryReadSamplesCsv(std::cin, &observations, &error);
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "spta_client: cannot open '%s'\n", input.c_str());
      std::exit(2);
    }
    ok = analysis::TryReadSamplesCsv(in, &observations, &error);
  }
  if (!ok) {
    std::fprintf(stderr, "spta_client: %s\n", error.c_str());
    std::exit(2);
  }
  return observations;
}

service::Args AnalysisOptions(const Flags& flags) {
  service::Args options;
  if (flags.Has("prob")) options.SetDouble("prob", flags.GetDouble("prob", 1e-12));
  if (flags.Has("block-size")) {
    options.SetUint("block_size",
                    static_cast<std::uint64_t>(flags.GetInt("block-size", 0)));
  }
  if (flags.GetBool("per-path")) options.Set("per_path", "1");
  if (flags.Has("deadline-ms")) {
    options.SetDouble("deadline_ms", flags.GetDouble("deadline-ms", 0.0));
  }
  return options;
}

service::RetryPolicy PolicyFromFlags(const Flags& flags) {
  service::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(flags.GetInt("retries", 4));
  policy.base = std::chrono::milliseconds(flags.GetInt("retry-base-ms", 25));
  policy.cap = std::chrono::milliseconds(flags.GetInt("retry-cap-ms", 2000));
  policy.seed = static_cast<std::uint64_t>(flags.GetInt("retry-seed", 1));
  if (policy.max_attempts < 1 || policy.base.count() < 0 ||
      policy.cap.count() < policy.base.count()) {
    std::fprintf(stderr,
                 "spta_client: need --retries >= 1 and "
                 "0 <= --retry-base-ms <= --retry-cap-ms\n");
    std::exit(2);
  }
  return policy;
}

/// Prints a response's args and payload; returns the command exit code.
/// ERR busy gets its own code so callers/scripts can distinguish "the
/// daemon is saturated, resubmit later" from permanent failures.
int Report(const service::Response& response) {
  if (!response.ok) {
    const std::string code = response.args.GetString("code", "?");
    std::fprintf(stderr, "spta_client: ERR %s: %s\n", code.c_str(),
                 response.payload.c_str());
    return code == "busy" ? kExitBusy : 2;
  }
  const std::string args = response.args.Encode();
  if (!args.empty()) std::printf("%s\n", args.c_str());
  if (!response.payload.empty()) std::fputs(response.payload.c_str(), stdout);
  return response.args.Has("usable") &&
                 response.args.GetUint("usable", 0) == 0
             ? 1
             : 0;
}

int RunSession(service::Client& client, const Flags& flags,
               const std::vector<mbpta::PathObservation>& observations,
               service::RetrySchedule* schedule,
               const service::RetryPolicy& policy) {
  const int max_attempts = policy.max_attempts;
  const std::string name = flags.GetString("name", "cli");
  const std::size_t chunk =
      static_cast<std::size_t>(flags.GetInt("chunk", 250));
  if (chunk == 0) {
    std::fprintf(stderr, "spta_client: --chunk must be >= 1\n");
    return 2;
  }
  auto response = client.Open(name);
  if (!response.ok) return Report(response);
  for (std::size_t offset = 0; offset < observations.size();
       offset += chunk) {
    const std::size_t n = std::min(chunk, observations.size() - offset);
    response = client.Append(
        name, std::span(observations).subspan(offset, n));
    if (!response.ok) return Report(response);
    std::fprintf(stderr,
                 "spta_client: appended %zu/%zu samples, converged=%s\n",
                 offset + n, observations.size(),
                 response.args.GetString("converged", "0").c_str());
    if (response.args.GetUint("converged", 0) == 1) {
      std::fprintf(stderr,
                   "spta_client: convergence criterion met at %s runs\n",
                   response.args.GetString("runs_required", "?").c_str());
    }
  }
  // The session holds the ingested sample server-side, so an ERR busy on
  // the final ANALYZE is retried in place — no re-ingestion needed.
  for (int attempt = 1;; ++attempt) {
    response = client.AnalyzeSession(name, AnalysisOptions(flags));
    if (response.ok ||
        response.args.GetString("code", "") != "busy" ||
        attempt >= max_attempts) {
      break;
    }
    const auto delay = NextBackoff(response, schedule, policy);
    std::fprintf(stderr,
                 "spta_client: daemon busy, retrying analyze in %lld ms "
                 "(attempt %d/%d)\n",
                 static_cast<long long>(delay.count()), attempt,
                 max_attempts);
    {
      obs::ScopedSpan backoff_span(
          "client", "backoff", "delay_ms",
          static_cast<std::uint64_t>(delay.count()));
      std::this_thread::sleep_for(delay);
    }
  }
  const int code = Report(response);
  client.Close(name);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  const std::string socket_path = flags.GetString("socket");
  const std::string tcp_target = flags.GetString("tcp");
  if (socket_path.empty() == tcp_target.empty()) return Usage();
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  if (!tcp_target.empty()) {
    const std::size_t colon = tcp_target.rfind(':');
    long long port = -1;
    if (colon != std::string::npos) {
      char* end = nullptr;
      port = std::strtoll(tcp_target.c_str() + colon + 1, &end, 10);
      if (end == tcp_target.c_str() + colon + 1 || *end != '\0') port = -1;
    }
    if (colon == std::string::npos || colon == 0 || port < 1 ||
        port > 65535) {
      std::fprintf(stderr, "spta_client: --tcp expects HOST:PORT, got '%s'\n",
                   tcp_target.c_str());
      return 2;
    }
    tcp_host = tcp_target.substr(0, colon);
    tcp_port = static_cast<std::uint16_t>(port);
  }
  if (command != "ping" && command != "analyze" && command != "session" &&
      command != "metrics" && command != "health" && command != "trace" &&
      command != "shutdown") {
    std::fprintf(stderr, "spta_client: unknown command '%s'\n",
                 command.c_str());
    return Usage();
  }

  // Load the sample before the first connect so a bad --input fails fast
  // and every retry attempt resends identical bytes.
  std::vector<mbpta::PathObservation> observations;
  if (command == "analyze" || command == "session") {
    observations = LoadSamples(flags);
  }

  const service::RetryPolicy policy = PolicyFromFlags(flags);
  service::RetrySchedule schedule(policy);
  const double timeout_ms = flags.GetDouble("timeout-ms", 0.0);

  // --trace-out roots the distributed trace here: every request frame
  // below carries the minted trace id, and the client's own spans land in
  // the export for spta_cli trace-view --merge to stitch with the
  // server side.
  ClientTraceSession trace_session(flags.GetString("trace-out"), command);

  int exit_code = 2;
  for (int attempt = 1;; ++attempt) {
    obs::ScopedSpan attempt_span("client", "attempt", "attempt",
                                 static_cast<std::uint64_t>(attempt));
    // Fresh connection per attempt: after a transport fault (short write,
    // mid-frame disconnect, injected or real) the old stream's framing
    // state is unusable.
    std::string error;
    service::Response response;
    std::unique_ptr<service::UnixSocketConnection> unix_connection;
    std::unique_ptr<service::TcpConnection> tcp_connection;
    std::istream* in = nullptr;
    std::ostream* out = nullptr;
    {
      obs::ScopedSpan connect_span("client", "connect");
      if (!tcp_target.empty()) {
        tcp_connection = service::TcpConnection::Connect(tcp_host, tcp_port,
                                                         &error, timeout_ms);
        if (tcp_connection) {
          in = &tcp_connection->in();
          out = &tcp_connection->out();
        }
      } else {
        unix_connection = service::UnixSocketConnection::Connect(
            socket_path, &error, timeout_ms);
        if (unix_connection) {
          in = &unix_connection->in();
          out = &unix_connection->out();
        }
      }
    }
    if (in == nullptr) {
      response = service::ErrResponse("transport", error);
    } else {
      service::Client client(*in, *out);
      if (command == "ping") {
        response = client.Ping();
      } else if (command == "analyze") {
        response = client.AnalyzeInline(observations, AnalysisOptions(flags));
      } else if (command == "session") {
        // Session mode handles its own busy-retry (the ingested sample
        // lives server-side); only connect/transport failures reach the
        // outer loop via the returned code.
        exit_code = RunSession(client, flags, observations, &schedule,
                               policy);
        PrintBackoffSummary();
        return exit_code;
      } else if (command == "metrics") {
        if (flags.GetBool("metrics-prom")) {
          response = client.MetricsProm();
          if (response.ok) {
            // Raw scrape body only: args (format=...) would corrupt the
            // Prometheus text format for a piping consumer.
            std::fputs(response.payload.c_str(), stdout);
            return 0;
          }
        } else {
          response = client.Metrics();
        }
      } else if (command == "health") {
        response = client.Health();
      } else if (command == "trace") {
        response = client.Trace();
        if (response.ok) {
          // Raw JSON body only (like --metrics-prom): args would corrupt
          // the document for a piping consumer.
          std::fputs(response.payload.c_str(), stdout);
          return 0;
        }
      } else {  // shutdown
        response = client.Shutdown();
      }
    }

    const std::string code =
        response.ok ? "" : response.args.GetString("code", "");
    if (response.ok || !service::RetryableErrCode(code) ||
        attempt >= policy.max_attempts) {
      exit_code = Report(response);
      break;
    }
    const auto delay = NextBackoff(response, &schedule, policy);
    std::fprintf(stderr,
                 "spta_client: attempt %d/%d failed (ERR %s), retrying in "
                 "%lld ms\n",
                 attempt, policy.max_attempts, code.c_str(),
                 static_cast<long long>(delay.count()));
    {
      obs::ScopedSpan backoff_span(
          "client", "backoff", "delay_ms",
          static_cast<std::uint64_t>(delay.count()));
      std::this_thread::sleep_for(delay);
    }
  }
  PrintBackoffSummary();
  return exit_code;
}
