// spta_fleet — self-healing process supervisor for a spta_serve fleet.
//
//   spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] [--shards M]
//              [--cache-dir DIR] [--cache-max-bytes N]
//              [--cache-quota-bytes N] [--serve-bin PATH] [--backlog N]
//              [--respawn-limit K] [--min-uptime-ms N]
//              [--respawn-base-ms N] [--respawn-cap-ms N] [--backoff-seed S]
//              [--watchdog-interval-ms N] [--watchdog-timeout-ms N]
//              [--watchdog-seed S]
//
// Spawns N `spta_serve --tcp PORT --reuseport` children sharing one TCP
// port via SO_REUSEPORT (the kernel load-balances connections across the
// listeners), each child running M internal shards — the fleet's total
// parallelism is N*M shard threads. The supervisor then babysits:
//
//   * a child that dies (crash, OOM kill) is respawned, up to
//     --respawn-limit times per child (default 5). A child that dies
//     within --min-uptime-ms of its spawn is crash-looping: its respawn
//     is delayed by a seeded decorrelated-jitter backoff
//     (--respawn-base-ms growing toward --respawn-cap-ms), so a broken
//     binary burns wall-clock, not fork() and its respawn budget. A
//     child that survived past --min-uptime-ms respawns immediately and
//     resets its backoff schedule;
//   * a WATCHDOG probes each child over a private socketpair (the child
//     serves it via `spta_serve --health-fd`): every
//     --watchdog-interval-ms (seeded jitter spreads the probes) the
//     supervisor writes a HEALTH frame; a child that produces no reply
//     bytes within --watchdog-timeout-ms is alive-but-unresponsive
//     (wedged) and is SIGKILLed, which routes it through the normal
//     respawn path. --watchdog-interval-ms 0 disables probing;
//   * SIGTERM/SIGINT are forwarded to every child (plus SIGCONT, so a
//     stopped child can still drain) and the supervisor waits for their
//     graceful drains — in-flight requests still get their responses
//     (zero-loss drain, per child);
//   * a child that exits cleanly (in-band SHUTDOWN) is NOT respawned;
//     when the last child is gone the supervisor exits.
//
// NOTE on --cache-dir: children of one fleet may share a cache directory —
// entry writes are atomic (tmp+rename with pid-qualified tmp names), and
// every child warm-starts from the shared pool at spawn.
//
// Exit code: 0 when the fleet wound down in control — every child either
// drained cleanly or was respawned within budget (a chaos-killed child
// that came back does NOT poison the exit code). 1 when a child hit its
// respawn limit (fleet degraded) or died dirty AFTER the drain was
// requested.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/hash.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(
      stderr,
      "usage: spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] "
      "[--shards M] [--cache-dir DIR] [--cache-max-bytes N] "
      "[--cache-quota-bytes N] [--serve-bin PATH] [--backlog N] "
      "[--respawn-limit K] [--min-uptime-ms N] [--respawn-base-ms N] "
      "[--respawn-cap-ms N] [--backoff-seed S] [--watchdog-interval-ms N] "
      "[--watchdog-timeout-ms N] [--watchdog-seed S]\n");
  return 2;
}

/// The supervisor's wake-up set. SIGTERM/SIGINT/SIGCHLD stay *blocked* for
/// the supervisor's lifetime and are consumed synchronously with
/// sigtimedwait(2) in the main loop. A handler + blocking waitpid() does
/// not work here: glibc's signal() installs SA_RESTART, so waitpid()
/// resumes after the handler instead of failing EINTR and a SIGTERM would
/// not be forwarded until some child happened to die on its own. Blocking
/// the signals makes delivery a queue the loop drains — nothing can be
/// lost between "check the flag" and "block in wait"; the timeout is what
/// drives the watchdog and backoff clocks.
sigset_t SupervisorSigset() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGCHLD);
  return mask;
}

/// Resolves the spta_serve binary next to this executable (the build tree
/// and install layouts both put them side by side).
std::string DefaultServeBin() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "spta_serve";
  buffer[n] = '\0';
  std::string path(buffer);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "spta_serve";
  return path.substr(0, slash + 1) + "spta_serve";
}

/// CLOCK_MONOTONIC in ms — the supervisor's only clock (wall time jumps
/// must not fire the watchdog or stretch a backoff).
std::int64_t NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         ts.tv_nsec / 1000000;
}

/// Seeded-jitter probe spacing in [interval/2, interval]: deterministic
/// per (seed, counter), but de-phased across children so N probes do not
/// land on the same tick.
std::int64_t ProbeDelayMs(std::uint64_t seed, std::uint64_t counter,
                          std::int64_t interval_ms) {
  const std::int64_t half = interval_ms / 2;
  const std::uint64_t span =
      static_cast<std::uint64_t>(interval_ms - half) + 1;
  return half + static_cast<std::int64_t>(Mix64(HashCombine(seed, counter)) %
                                          span);
}

/// The wire bytes of one HEALTH probe (constant — build once).
std::string HealthFrame() {
  service::Request request;
  request.kind = service::RequestKind::kHealth;
  std::string out;
  service::AppendRequestFrame(request, &out);
  return out;
}

struct Child {
  pid_t pid = -1;
  int respawns = 0;
  bool clean_exit = false;  ///< Exited 0 — drained, do not respawn.
  bool gave_up = false;     ///< Respawn limit hit (fleet degraded).
  /// Parent end of the health socketpair; -1 when the child is down or
  /// the pair could not be made (the child then just goes unprobed).
  int health_fd = -1;
  std::int64_t spawned_ms = 0;
  /// When a pending (backed-off) respawn is due; 0 = none pending.
  std::int64_t respawn_due_ms = 0;
  /// Watchdog: when to send the next probe / when the in-flight probe
  /// times out (0 = no probe in flight).
  std::int64_t next_probe_ms = 0;
  std::int64_t probe_deadline_ms = 0;
  std::uint64_t probe_counter = 0;
  /// Decorrelated-jitter respawn schedule; allocated on the first
  /// crash-loop death, reset by a run that survived past min-uptime.
  std::unique_ptr<service::RetrySchedule> backoff;
};

struct SpawnResult {
  pid_t pid = -1;
  int health_fd = -1;
};

SpawnResult SpawnChild(const std::string& serve_bin,
                       const std::vector<std::string>& base_args) {
  int sv[2] = {-1, -1};
  const bool have_pair = ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0;
  if (have_pair) {
    // Parent end must not leak into this (or any later) child; the child
    // end rides through execv as `--health-fd N`.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    const int fl = ::fcntl(sv[0], F_GETFL, 0);
    if (fl >= 0) ::fcntl(sv[0], F_SETFL, fl | O_NONBLOCK);
  }
  std::vector<std::string> args = base_args;
  if (have_pair) {
    args.push_back("--health-fd");
    args.push_back(std::to_string(sv[1]));
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: the supervisor runs with SIGTERM/SIGINT/SIGCHLD blocked and
    // the mask survives execv — unblock everything or the spta_serve
    // child would never see the forwarded SIGTERM it drains on.
    sigset_t empty;
    sigemptyset(&empty);
    ::sigprocmask(SIG_SETMASK, &empty, nullptr);
    // Build argv and exec. On failure exit 127 so the supervisor counts
    // it as a dirty exit rather than silently running supervisor code
    // twice.
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(serve_bin.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    std::fprintf(stderr, "spta_fleet: execv('%s') failed: %s\n",
                 serve_bin.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  if (have_pair) ::close(sv[1]);
  if (pid < 0) {
    if (have_pair) ::close(sv[0]);
    std::fprintf(stderr, "spta_fleet: fork failed: %s\n",
                 std::strerror(errno));
    return {};
  }
  // Parseable by tests (and by an operator grepping for churn).
  std::fprintf(stderr, "spta_fleet: spawned pid %d\n",
               static_cast<int>(pid));
  return {pid, have_pair ? sv[0] : -1};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("tcp")) return Usage();
  const int port = static_cast<int>(flags.GetInt("tcp", 0));
  if (port < 1 || port > 65535) {
    // The fleet cannot use an ephemeral port: every child must bind the
    // SAME port for SO_REUSEPORT balancing.
    std::fprintf(stderr, "spta_fleet: --tcp needs an explicit port >= 1\n");
    return 2;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int procs = static_cast<int>(flags.GetInt("procs", 2));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const int respawn_limit =
      static_cast<int>(flags.GetInt("respawn-limit", 5));
  if (procs < 1 || shards < 1 || respawn_limit < 0) return Usage();
  const std::string serve_bin =
      flags.GetString("serve-bin", DefaultServeBin());
  const std::string cache_dir = flags.GetString("cache-dir");
  const int backlog = static_cast<int>(flags.GetInt("backlog", 128));
  // Crash-loop detection + backoff knobs.
  const std::int64_t min_uptime_ms = flags.GetInt("min-uptime-ms", 1000);
  const std::int64_t respawn_base_ms =
      std::max<std::int64_t>(1, flags.GetInt("respawn-base-ms", 100));
  const std::int64_t respawn_cap_ms = std::max(
      respawn_base_ms, flags.GetInt("respawn-cap-ms", 5000));
  const std::uint64_t backoff_seed =
      static_cast<std::uint64_t>(flags.GetInt("backoff-seed", 1));
  // Watchdog knobs; interval 0 disables probing entirely.
  const std::int64_t watchdog_interval_ms =
      std::max<std::int64_t>(0, flags.GetInt("watchdog-interval-ms", 500));
  const std::int64_t watchdog_timeout_ms =
      std::max<std::int64_t>(1, flags.GetInt("watchdog-timeout-ms", 2000));
  const std::uint64_t watchdog_seed =
      static_cast<std::uint64_t>(flags.GetInt("watchdog-seed", 1));

  std::vector<std::string> child_args = {
      "--tcp",     std::to_string(port),
      "--host",    host,
      "--shards",  std::to_string(shards),
      "--backlog", std::to_string(backlog),
      "--reuseport"};
  if (!cache_dir.empty()) {
    child_args.push_back("--cache-dir");
    child_args.push_back(cache_dir);
  }
  // Cache bounds ride along to every child: the LRU byte budget and the
  // ENOSPC simulation quota are fleet-wide policy, not per-process tuning.
  for (const char* bound : {"cache-max-bytes", "cache-quota-bytes"}) {
    if (flags.Has(bound)) {
      child_args.push_back(std::string("--") + bound);
      child_args.push_back(std::to_string(flags.GetInt(bound, 0)));
    }
  }
  for (const std::string& extra : flags.positional()) {
    child_args.push_back(extra);
  }

  sigset_t mask = SupervisorSigset();
  ::sigprocmask(SIG_BLOCK, &mask, nullptr);

  const std::string health_frame = HealthFrame();
  const std::int64_t start_ms = NowMs();

  std::vector<Child> children(static_cast<std::size_t>(procs));
  for (std::size_t i = 0; i < children.size(); ++i) {
    Child& child = children[i];
    const SpawnResult spawned = SpawnChild(serve_bin, child_args);
    child.pid = spawned.pid;
    child.health_fd = spawned.health_fd;
    child.spawned_ms = NowMs();
    if (child.pid < 0) {
      child.gave_up = true;
      continue;
    }
    if (watchdog_interval_ms > 0) {
      child.next_probe_ms =
          child.spawned_ms +
          ProbeDelayMs(HashCombine(watchdog_seed, i), ++child.probe_counter,
                       watchdog_interval_ms);
    }
  }
  std::fprintf(stderr, "spta_fleet: %d procs x %d shards on %s:%d\n", procs,
               shards, host.c_str(), port);

  bool terminate = false;
  bool forwarded = false;
  bool dirty_after_drain = false;
  for (;;) {
    const std::int64_t now = NowMs();

    // Reap everything that has exited. SIGCHLD coalesces, so one wake-up
    // may cover several deaths — drain with WNOHANG until empty.
    for (;;) {
      int status = 0;
      const pid_t done = ::waitpid(-1, &status, WNOHANG);
      if (done <= 0) break;
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.pid != done) continue;
        if (child.health_fd >= 0) {
          ::close(child.health_fd);
          child.health_fd = -1;
        }
        child.probe_deadline_ms = 0;
        child.pid = -1;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (clean || forwarded) {
          child.clean_exit = true;
          if (!clean) dirty_after_drain = true;
          std::fprintf(stderr, "spta_fleet: pid %d exited (%s)\n",
                       static_cast<int>(done), clean ? "clean" : "dirty");
          break;
        }
        if (child.respawns >= respawn_limit) {
          child.gave_up = true;
          std::fprintf(stderr,
                       "spta_fleet: pid %d died, respawn limit (%d) hit — "
                       "fleet degraded\n",
                       static_cast<int>(done), respawn_limit);
          break;
        }
        ++child.respawns;
        const std::int64_t uptime = now - child.spawned_ms;
        if (uptime < min_uptime_ms) {
          // Crash loop: delay the respawn so a broken child burns
          // wall-clock, not its whole budget. The schedule is per-child,
          // seeded, and survives across its deaths.
          if (!child.backoff) {
            service::RetryPolicy policy;
            policy.base = std::chrono::milliseconds(respawn_base_ms);
            policy.cap = std::chrono::milliseconds(respawn_cap_ms);
            policy.seed = HashCombine(backoff_seed, i);
            child.backoff =
                std::make_unique<service::RetrySchedule>(policy);
          }
          const std::int64_t delay = child.backoff->NextDelay().count();
          child.respawn_due_ms = now + delay;
          std::fprintf(stderr,
                       "spta_fleet: pid %d died after %lld ms (crash "
                       "loop), respawn %d/%d in %lld ms\n",
                       static_cast<int>(done),
                       static_cast<long long>(uptime), child.respawns,
                       respawn_limit, static_cast<long long>(delay));
        } else {
          // A run that held steady earns an immediate respawn and a
          // fresh backoff schedule.
          child.backoff.reset();
          child.respawn_due_ms = now;
          std::fprintf(stderr,
                       "spta_fleet: pid %d died, respawning (%d/%d)\n",
                       static_cast<int>(done), child.respawns,
                       respawn_limit);
        }
        break;
      }
    }

    if (terminate && !forwarded) {
      forwarded = true;
      std::fprintf(stderr, "spta_fleet: forwarding SIGTERM; draining...\n");
      for (Child& child : children) {
        child.respawn_due_ms = 0;  // Draining: no more respawns.
        if (child.pid > 0 && !child.clean_exit && !child.gave_up) {
          ::kill(child.pid, SIGTERM);
          // A SIGSTOPped (chaos-wedged) child cannot process SIGTERM;
          // SIGCONT lets the drain reach it.
          ::kill(child.pid, SIGCONT);
        }
      }
    }

    // Fire respawns whose backoff has elapsed.
    if (!forwarded) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.respawn_due_ms == 0 || now < child.respawn_due_ms) {
          continue;
        }
        child.respawn_due_ms = 0;
        const SpawnResult spawned = SpawnChild(serve_bin, child_args);
        child.pid = spawned.pid;
        child.health_fd = spawned.health_fd;
        child.spawned_ms = now;
        child.probe_deadline_ms = 0;
        if (child.pid < 0) {
          child.gave_up = true;
          continue;
        }
        if (watchdog_interval_ms > 0) {
          child.next_probe_ms =
              now + ProbeDelayMs(HashCombine(watchdog_seed, i),
                                 ++child.probe_counter,
                                 watchdog_interval_ms);
        }
      }
    }

    // Watchdog pass: drain replies, kill the wedged, launch due probes.
    // Idle during drain — a child busy finishing its backlog is not
    // wedged, and SIGKILL would turn a clean drain dirty.
    if (watchdog_interval_ms > 0 && !forwarded) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.pid <= 0 || child.health_fd < 0 || child.clean_exit ||
            child.gave_up) {
          continue;
        }
        char buffer[512];
        ssize_t n = 0;
        bool got_reply = false;
        while ((n = ::read(child.health_fd, buffer, sizeof(buffer))) > 0) {
          got_reply = true;  // Any reply bytes prove the loop is alive.
        }
        if (n == 0) {
          // EOF: the child closed its end (it is exiting); the reaper
          // owns what happens next.
          ::close(child.health_fd);
          child.health_fd = -1;
          continue;
        }
        if (got_reply && child.probe_deadline_ms > 0) {
          child.probe_deadline_ms = 0;
          child.next_probe_ms =
              now + ProbeDelayMs(HashCombine(watchdog_seed, i),
                                 ++child.probe_counter,
                                 watchdog_interval_ms);
        }
        if (child.probe_deadline_ms > 0 &&
            now >= child.probe_deadline_ms) {
          // Alive but unresponsive (wedged): SIGKILL works even on a
          // stopped process; the reaper routes it through respawn.
          std::fprintf(stderr,
                       "spta_fleet: pid %d unresponsive for %lld ms — "
                       "killing\n",
                       static_cast<int>(child.pid),
                       static_cast<long long>(watchdog_timeout_ms));
          ::kill(child.pid, SIGKILL);
          child.probe_deadline_ms = 0;
          child.next_probe_ms = now + watchdog_timeout_ms;
        } else if (child.probe_deadline_ms == 0 &&
                   now >= child.next_probe_ms) {
          // Fire one probe. A short/failed write is itself a wedge
          // symptom (the socketpair buffer only fills when the child
          // stops reading) — the probe simply times out.
          [[maybe_unused]] const ssize_t written = ::write(
              child.health_fd, health_frame.data(), health_frame.size());
          child.probe_deadline_ms = now + watchdog_timeout_ms;
        }
      }
    }

    bool anyone_pending = false;
    for (const Child& child : children) {
      if (child.clean_exit || child.gave_up) continue;
      if (child.pid > 0 || child.respawn_due_ms > 0) anyone_pending = true;
    }
    if (!anyone_pending) break;

    // Sleep until the next timed event (probe, probe deadline, respawn)
    // or a blocked signal. A child that exited before this point left
    // SIGCHLD pending (the set stays blocked), so the wait returns
    // immediately — no lost-wakeup window exists.
    std::int64_t wake = now + 1000;
    for (const Child& child : children) {
      if (child.clean_exit || child.gave_up) continue;
      if (child.respawn_due_ms > 0) {
        wake = std::min(wake, child.respawn_due_ms);
      }
      if (watchdog_interval_ms > 0 && !forwarded && child.pid > 0 &&
          child.health_fd >= 0) {
        wake = std::min(wake, child.probe_deadline_ms > 0
                                  ? child.probe_deadline_ms
                                  : child.next_probe_ms);
      }
    }
    const std::int64_t sleep_ms = std::max<std::int64_t>(
        0, std::min<std::int64_t>(wake - now, 1000));
    timespec timeout{};
    timeout.tv_sec = sleep_ms / 1000;
    timeout.tv_nsec = (sleep_ms % 1000) * 1000000;
    const int sig = ::sigtimedwait(&mask, nullptr, &timeout);
    if (sig == SIGTERM || sig == SIGINT) terminate = true;
  }

  bool any_gave_up = false;
  for (const Child& child : children) {
    if (child.gave_up) any_gave_up = true;
  }
  std::fprintf(stderr, "spta_fleet: done after %lld ms (%s)\n",
               static_cast<long long>(NowMs() - start_ms),
               (any_gave_up || dirty_after_drain) ? "degraded" : "ok");
  return (any_gave_up || dirty_after_drain) ? 1 : 0;
}
