// spta_fleet — process supervisor for a multi-process spta_serve fleet.
//
//   spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] [--shards M]
//              [--cache-dir DIR] [--serve-bin PATH] [--backlog N]
//              [--respawn-limit K] [-- extra spta_serve flags...]
//
// Spawns N `spta_serve --tcp PORT --reuseport` children sharing one TCP
// port via SO_REUSEPORT (the kernel load-balances connections across the
// listeners), each child running M internal shards — the fleet's total
// parallelism is N*M shard threads. The supervisor then babysits:
//
//   * a child that dies (crash, OOM kill) is respawned, up to
//     --respawn-limit times per child (default 5) — a child that keeps
//     dying marks the fleet degraded but never busy-loops fork();
//   * SIGTERM/SIGINT are forwarded to every child and the supervisor
//     waits for their graceful drains — in-flight requests still get
//     their responses (zero-loss drain, per child);
//   * a child that exits cleanly (in-band SHUTDOWN) is NOT respawned;
//     when the last child is gone the supervisor exits.
//
// NOTE on --cache-dir: children of one fleet may share a cache directory —
// entry writes are atomic (tmp+rename with pid-qualified tmp names), and
// every child warm-starts from the shared pool at spawn.
//
// Exit code: 0 when every child exited cleanly, 1 otherwise.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(stderr,
               "usage: spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] "
               "[--shards M] [--cache-dir DIR] [--serve-bin PATH] "
               "[--backlog N] [--respawn-limit K]\n");
  return 2;
}

/// The supervisor's wake-up set. SIGTERM/SIGINT/SIGCHLD stay *blocked* for
/// the supervisor's lifetime and are consumed synchronously with
/// sigwaitinfo(2) in the main loop. A handler + blocking waitpid() does not
/// work here: glibc's signal() installs SA_RESTART, so waitpid() resumes
/// after the handler instead of failing EINTR and a SIGTERM would not be
/// forwarded until some child happened to die on its own. Blocking the
/// signals makes delivery a queue the loop drains — nothing can be lost
/// between "check the flag" and "block in wait".
sigset_t SupervisorSigset() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGCHLD);
  return mask;
}

/// Resolves the spta_serve binary next to this executable (the build tree
/// and install layouts both put them side by side).
std::string DefaultServeBin() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "spta_serve";
  buffer[n] = '\0';
  std::string path(buffer);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "spta_serve";
  return path.substr(0, slash + 1) + "spta_serve";
}

struct Child {
  pid_t pid = -1;
  int respawns = 0;
  bool clean_exit = false;  ///< Exited 0 — drained, do not respawn.
  bool gave_up = false;     ///< Respawn limit hit.
};

pid_t SpawnChild(const std::string& serve_bin,
                 const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: the supervisor runs with SIGTERM/SIGINT/SIGCHLD blocked and the
  // mask survives execv — unblock everything or the spta_serve child would
  // never see the forwarded SIGTERM it is supposed to drain on.
  sigset_t empty;
  sigemptyset(&empty);
  ::sigprocmask(SIG_SETMASK, &empty, nullptr);
  // Build argv and exec. On failure exit 127 so the supervisor counts it
  // as a dirty exit rather than silently running supervisor code twice.
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(serve_bin.c_str()));
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(serve_bin.c_str(), argv.data());
  std::fprintf(stderr, "spta_fleet: execv('%s') failed: %s\n",
               serve_bin.c_str(), std::strerror(errno));
  ::_exit(127);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("tcp")) return Usage();
  const int port = static_cast<int>(flags.GetInt("tcp", 0));
  if (port < 1 || port > 65535) {
    // The fleet cannot use an ephemeral port: every child must bind the
    // SAME port for SO_REUSEPORT balancing.
    std::fprintf(stderr, "spta_fleet: --tcp needs an explicit port >= 1\n");
    return 2;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int procs = static_cast<int>(flags.GetInt("procs", 2));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const int respawn_limit =
      static_cast<int>(flags.GetInt("respawn-limit", 5));
  if (procs < 1 || shards < 1 || respawn_limit < 0) return Usage();
  const std::string serve_bin =
      flags.GetString("serve-bin", DefaultServeBin());
  const std::string cache_dir = flags.GetString("cache-dir");
  const int backlog = static_cast<int>(flags.GetInt("backlog", 128));

  std::vector<std::string> child_args = {
      "--tcp",     std::to_string(port),
      "--host",    host,
      "--shards",  std::to_string(shards),
      "--backlog", std::to_string(backlog),
      "--reuseport"};
  if (!cache_dir.empty()) {
    child_args.push_back("--cache-dir");
    child_args.push_back(cache_dir);
  }

  sigset_t mask = SupervisorSigset();
  ::sigprocmask(SIG_BLOCK, &mask, nullptr);

  std::vector<Child> children(static_cast<std::size_t>(procs));
  for (Child& child : children) {
    child.pid = SpawnChild(serve_bin, child_args);
    if (child.pid < 0) {
      std::fprintf(stderr, "spta_fleet: fork failed: %s\n",
                   std::strerror(errno));
      child.gave_up = true;
    }
  }
  std::fprintf(stderr, "spta_fleet: %d procs x %d shards on %s:%d\n", procs,
               shards, host.c_str(), port);

  bool terminate = false;
  bool forwarded = false;
  bool any_dirty = false;
  for (;;) {
    // Reap everything that has exited. SIGCHLD coalesces, so one wake-up
    // may cover several deaths — drain with WNOHANG until empty.
    for (;;) {
      int status = 0;
      const pid_t done = ::waitpid(-1, &status, WNOHANG);
      if (done <= 0) break;
      for (Child& child : children) {
        if (child.pid != done) continue;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (clean || forwarded) {
          child.clean_exit = true;
          if (!clean) any_dirty = true;
          std::fprintf(stderr, "spta_fleet: pid %d exited (%s)\n",
                       static_cast<int>(done), clean ? "clean" : "dirty");
          break;
        }
        any_dirty = true;
        if (child.respawns >= respawn_limit) {
          child.gave_up = true;
          std::fprintf(stderr,
                       "spta_fleet: pid %d died, respawn limit (%d) hit — "
                       "fleet degraded\n",
                       static_cast<int>(done), respawn_limit);
          break;
        }
        ++child.respawns;
        child.pid = SpawnChild(serve_bin, child_args);
        std::fprintf(stderr, "spta_fleet: pid %d died, respawned as %d "
                             "(%d/%d)\n",
                     static_cast<int>(done), static_cast<int>(child.pid),
                     child.respawns, respawn_limit);
        break;
      }
    }

    if (terminate && !forwarded) {
      forwarded = true;
      std::fprintf(stderr, "spta_fleet: forwarding SIGTERM; draining...\n");
      for (const Child& child : children) {
        if (child.pid > 0 && !child.clean_exit && !child.gave_up) {
          ::kill(child.pid, SIGTERM);
        }
      }
    }

    bool anyone_running = false;
    for (const Child& child : children) {
      if (child.pid > 0 && !child.clean_exit && !child.gave_up) {
        anyone_running = true;
      }
    }
    if (!anyone_running) break;

    // Blocks until a blocked signal is pending. A child that exited before
    // this point left SIGCHLD pending (the set stays blocked), so the wait
    // returns immediately — no lost-wakeup window exists.
    int sig = 0;
    do {
      sig = ::sigwaitinfo(&mask, nullptr);
    } while (sig < 0 && errno == EINTR);
    if (sig == SIGTERM || sig == SIGINT) terminate = true;
  }
  return any_dirty ? 1 : 0;
}
