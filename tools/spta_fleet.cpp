// spta_fleet — self-healing process supervisor for a spta_serve fleet.
//
//   spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] [--shards M]
//              [--cache-dir DIR] [--cache-max-bytes N]
//              [--cache-quota-bytes N] [--serve-bin PATH] [--backlog N]
//              [--respawn-limit K] [--min-uptime-ms N]
//              [--respawn-base-ms N] [--respawn-cap-ms N] [--backoff-seed S]
//              [--watchdog-interval-ms N] [--watchdog-timeout-ms N]
//              [--watchdog-seed S] [--flight-dir DIR] [--flight-slots N]
//              [--trace-dir DIR]
//
// Spawns N `spta_serve --tcp PORT --reuseport` children sharing one TCP
// port via SO_REUSEPORT (the kernel load-balances connections across the
// listeners), each child running M internal shards — the fleet's total
// parallelism is N*M shard threads. The supervisor then babysits:
//
//   * a child that dies (crash, OOM kill) is respawned, up to
//     --respawn-limit times per child (default 5). A child that dies
//     within --min-uptime-ms of its spawn is crash-looping: its respawn
//     is delayed by a seeded decorrelated-jitter backoff
//     (--respawn-base-ms growing toward --respawn-cap-ms), so a broken
//     binary burns wall-clock, not fork() and its respawn budget. A
//     child that survived past --min-uptime-ms respawns immediately and
//     resets its backoff schedule;
//   * a WATCHDOG probes each child over a private socketpair (the child
//     serves it via `spta_serve --health-fd`): every
//     --watchdog-interval-ms (seeded jitter spreads the probes) the
//     supervisor writes a HEALTH frame; a child that produces no reply
//     bytes within --watchdog-timeout-ms is alive-but-unresponsive
//     (wedged) and is SIGKILLed, which routes it through the normal
//     respawn path. --watchdog-interval-ms 0 disables probing;
//   * SIGTERM/SIGINT are forwarded to every child (plus SIGCONT, so a
//     stopped child can still drain) and the supervisor waits for their
//     graceful drains — in-flight requests still get their responses
//     (zero-loss drain, per child);
//   * a child that exits cleanly (in-band SHUTDOWN) is NOT respawned;
//     when the last child is gone the supervisor exits.
//
// NOTE on --cache-dir: children of one fleet may share a cache directory —
// entry writes are atomic (tmp+rename with pid-qualified tmp names), and
// every child warm-starts from the shared pool at spawn.
//
// Observability (docs/OBSERVABILITY.md):
//   * stderr is structured: one JSON object per line (common/jsonlog),
//     e.g. {"ts_ms":...,"pid":...,"component":"spta_fleet",
//     "event":"spawned","child_pid":...,"slot":...}. The chaos test and
//     operator tooling parse these lines; the event vocabulary is the
//     stable contract, the prose is gone.
//   * --flight-dir DIR arms the crash-surviving flight recorder: every
//     child gets a fresh shared-memory ring (memfd, --flight-slots
//     records) passed as `--flight-fd N`; when the child dies — clean
//     exit, crash, or watchdog SIGKILL — the supervisor harvests the
//     ring post-mortem and dumps it as DIR/flight-<pid>.json (Chrome
//     trace JSON). Torn records from a mid-write death are skipped and
//     counted, never fatal.
//   * --trace-dir DIR rides along to every child (spta_serve --trace-dir
//     exports trace-<pid>.json at exit); at supervisor exit all exports
//     in DIR are merged into DIR/trace-merged.json — one Perfetto-
//     loadable trace for the whole fleet run.
//
// Exit code: 0 when the fleet wound down in control — every child either
// drained cleanly or was respawned within budget (a chaos-killed child
// that came back does NOT poison the exit code). 1 when a child hit its
// respawn limit (fleet degraded) or died dirty AFTER the drain was
// requested.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/flags.hpp"
#include "common/hash.hpp"
#include "common/jsonlog.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_merge.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(
      stderr,
      "usage: spta_fleet --tcp PORT [--host A.B.C.D] [--procs N] "
      "[--shards M] [--cache-dir DIR] [--cache-max-bytes N] "
      "[--cache-quota-bytes N] [--serve-bin PATH] [--backlog N] "
      "[--respawn-limit K] [--min-uptime-ms N] [--respawn-base-ms N] "
      "[--respawn-cap-ms N] [--backoff-seed S] [--watchdog-interval-ms N] "
      "[--watchdog-timeout-ms N] [--watchdog-seed S] [--flight-dir DIR] "
      "[--flight-slots N] [--trace-dir DIR]\n");
  return 2;
}

/// The supervisor's wake-up set. SIGTERM/SIGINT/SIGCHLD stay *blocked* for
/// the supervisor's lifetime and are consumed synchronously with
/// sigtimedwait(2) in the main loop. A handler + blocking waitpid() does
/// not work here: glibc's signal() installs SA_RESTART, so waitpid()
/// resumes after the handler instead of failing EINTR and a SIGTERM would
/// not be forwarded until some child happened to die on its own. Blocking
/// the signals makes delivery a queue the loop drains — nothing can be
/// lost between "check the flag" and "block in wait"; the timeout is what
/// drives the watchdog and backoff clocks.
sigset_t SupervisorSigset() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGCHLD);
  return mask;
}

/// Resolves the spta_serve binary next to this executable (the build tree
/// and install layouts both put them side by side).
std::string DefaultServeBin() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "spta_serve";
  buffer[n] = '\0';
  std::string path(buffer);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "spta_serve";
  return path.substr(0, slash + 1) + "spta_serve";
}

/// CLOCK_MONOTONIC in ms — the supervisor's only clock (wall time jumps
/// must not fire the watchdog or stretch a backoff).
std::int64_t NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         ts.tv_nsec / 1000000;
}

/// Seeded-jitter probe spacing in [interval/2, interval]: deterministic
/// per (seed, counter), but de-phased across children so N probes do not
/// land on the same tick.
std::int64_t ProbeDelayMs(std::uint64_t seed, std::uint64_t counter,
                          std::int64_t interval_ms) {
  const std::int64_t half = interval_ms / 2;
  const std::uint64_t span =
      static_cast<std::uint64_t>(interval_ms - half) + 1;
  return half + static_cast<std::int64_t>(Mix64(HashCombine(seed, counter)) %
                                          span);
}

/// The wire bytes of one HEALTH probe (constant — build once).
std::string HealthFrame() {
  service::Request request;
  request.kind = service::RequestKind::kHealth;
  std::string out;
  service::AppendRequestFrame(request, &out);
  return out;
}

struct Child {
  pid_t pid = -1;
  int respawns = 0;
  bool clean_exit = false;  ///< Exited 0 — drained, do not respawn.
  bool gave_up = false;     ///< Respawn limit hit (fleet degraded).
  /// Parent end of the health socketpair; -1 when the child is down or
  /// the pair could not be made (the child then just goes unprobed).
  int health_fd = -1;
  /// This incarnation's flight-recorder ring (-1 = flight recording off
  /// or the ring could not be made). Harvested post-mortem at reap time.
  int flight_fd = -1;
  std::int64_t spawned_ms = 0;
  /// When a pending (backed-off) respawn is due; 0 = none pending.
  std::int64_t respawn_due_ms = 0;
  /// Watchdog: when to send the next probe / when the in-flight probe
  /// times out (0 = no probe in flight).
  std::int64_t next_probe_ms = 0;
  std::int64_t probe_deadline_ms = 0;
  std::uint64_t probe_counter = 0;
  /// Decorrelated-jitter respawn schedule; allocated on the first
  /// crash-loop death, reset by a run that survived past min-uptime.
  std::unique_ptr<service::RetrySchedule> backoff;
};

struct SpawnResult {
  pid_t pid = -1;
  int health_fd = -1;
  int flight_fd = -1;
};

SpawnResult SpawnChild(const std::string& serve_bin,
                       const std::vector<std::string>& base_args,
                       std::size_t slot, std::size_t flight_slots) {
  int sv[2] = {-1, -1};
  const bool have_pair = ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0;
  if (have_pair) {
    // Parent end must not leak into this (or any later) child; the child
    // end rides through execv as `--health-fd N`.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    const int fl = ::fcntl(sv[0], F_GETFL, 0);
    if (fl >= 0) ::fcntl(sv[0], F_SETFL, fl | O_NONBLOCK);
  }
  // Fresh ring per incarnation: the old incarnation's telemetry lives in
  // its own memfd until harvested, the new child starts clean. The fd is
  // created without CLOEXEC (it must ride through execv); the parent's
  // copy gets CLOEXEC after the fork so later siblings do not inherit it.
  int flight_fd = -1;
  if (flight_slots > 0) {
    std::string flight_error;
    flight_fd = obs::FlightRecorder::CreateRingFd(flight_slots,
                                                  &flight_error);
    if (flight_fd < 0) {
      JsonLogLine("spta_fleet", "flight_ring_failed")
          .Int("slot", static_cast<std::int64_t>(slot))
          .Str("error", flight_error)
          .Emit();
    }
  }
  std::vector<std::string> args = base_args;
  if (have_pair) {
    args.push_back("--health-fd");
    args.push_back(std::to_string(sv[1]));
  }
  if (flight_fd >= 0) {
    args.push_back("--flight-fd");
    args.push_back(std::to_string(flight_fd));
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: the supervisor runs with SIGTERM/SIGINT/SIGCHLD blocked and
    // the mask survives execv — unblock everything or the spta_serve
    // child would never see the forwarded SIGTERM it drains on.
    sigset_t empty;
    sigemptyset(&empty);
    ::sigprocmask(SIG_SETMASK, &empty, nullptr);
    // Build argv and exec. On failure exit 127 so the supervisor counts
    // it as a dirty exit rather than silently running supervisor code
    // twice.
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(serve_bin.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    JsonLogLine("spta_fleet", "exec_failed")
        .Str("bin", serve_bin)
        .Str("error", std::strerror(errno))
        .Emit();
    ::_exit(127);
  }
  if (have_pair) ::close(sv[1]);
  if (pid < 0) {
    if (have_pair) ::close(sv[0]);
    if (flight_fd >= 0) ::close(flight_fd);
    JsonLogLine("spta_fleet", "fork_failed")
        .Int("slot", static_cast<std::int64_t>(slot))
        .Str("error", std::strerror(errno))
        .Emit();
    return {};
  }
  // The child inherited the ring fd at fork; keep the parent's copy for
  // the post-mortem harvest but stop later children from inheriting it.
  if (flight_fd >= 0) ::fcntl(flight_fd, F_SETFD, FD_CLOEXEC);
  // Parseable by the chaos test (and by an operator watching for churn).
  JsonLogLine("spta_fleet", "spawned")
      .Int("child_pid", pid)
      .Int("slot", static_cast<std::int64_t>(slot))
      .Emit();
  return {pid, have_pair ? sv[0] : -1, flight_fd};
}

/// Post-mortem flight harvest: reads the dead incarnation's ring, dumps
/// it as Chrome JSON (flight-<pid>.json), logs the recovery counts, and
/// closes the fd. Tolerates everything a crash can leave behind — an
/// invalid ring still dumps (valid=0), torn records are skipped and
/// counted — because losing the supervisor to a dead child's garbage
/// would defeat the whole flight-recorder design.
void HarvestFlight(Child* child, pid_t pid, const std::string& flight_dir) {
  if (child->flight_fd < 0) return;
  const int fd = child->flight_fd;
  child->flight_fd = -1;
  if (!flight_dir.empty()) {
    const obs::FlightRecorder::Harvest harvest =
        obs::FlightRecorder::HarvestFd(fd);
    const std::string path =
        flight_dir + "/flight-" + std::to_string(pid) + ".json";
    std::string error;
    const bool wrote = AtomicWriteFile(
        path, obs::FlightRecorder::HarvestToChromeJson(harvest), &error);
    JsonLogLine log("spta_fleet", "flight_harvest");
    log.Int("child_pid", pid)
        .Str("path", path)
        .Int("valid", harvest.valid ? 1 : 0)
        .Int("records", static_cast<std::int64_t>(harvest.records.size()))
        .Int("torn", static_cast<std::int64_t>(harvest.torn));
    if (!wrote) log.Str("write_error", error);
    log.Emit();
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("tcp")) return Usage();
  const int port = static_cast<int>(flags.GetInt("tcp", 0));
  if (port < 1 || port > 65535) {
    // The fleet cannot use an ephemeral port: every child must bind the
    // SAME port for SO_REUSEPORT balancing.
    std::fprintf(stderr, "spta_fleet: --tcp needs an explicit port >= 1\n");
    return 2;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int procs = static_cast<int>(flags.GetInt("procs", 2));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const int respawn_limit =
      static_cast<int>(flags.GetInt("respawn-limit", 5));
  if (procs < 1 || shards < 1 || respawn_limit < 0) return Usage();
  const std::string serve_bin =
      flags.GetString("serve-bin", DefaultServeBin());
  const std::string cache_dir = flags.GetString("cache-dir");
  const int backlog = static_cast<int>(flags.GetInt("backlog", 128));
  // Crash-loop detection + backoff knobs.
  const std::int64_t min_uptime_ms = flags.GetInt("min-uptime-ms", 1000);
  const std::int64_t respawn_base_ms =
      std::max<std::int64_t>(1, flags.GetInt("respawn-base-ms", 100));
  const std::int64_t respawn_cap_ms = std::max(
      respawn_base_ms, flags.GetInt("respawn-cap-ms", 5000));
  const std::uint64_t backoff_seed =
      static_cast<std::uint64_t>(flags.GetInt("backoff-seed", 1));
  // Watchdog knobs; interval 0 disables probing entirely.
  const std::int64_t watchdog_interval_ms =
      std::max<std::int64_t>(0, flags.GetInt("watchdog-interval-ms", 500));
  const std::int64_t watchdog_timeout_ms =
      std::max<std::int64_t>(1, flags.GetInt("watchdog-timeout-ms", 2000));
  const std::uint64_t watchdog_seed =
      static_cast<std::uint64_t>(flags.GetInt("watchdog-seed", 1));
  // Flight recorder: --flight-dir arms it (one ring per child
  // incarnation, harvested post-mortem); --flight-slots sizes the ring.
  const std::string flight_dir = flags.GetString("flight-dir");
  const std::size_t flight_slots =
      flight_dir.empty()
          ? 0
          : static_cast<std::size_t>(std::max<std::int64_t>(
                1, flags.GetInt("flight-slots",
                                obs::FlightRecorder::kDefaultSlots)));
  const std::string trace_dir = flags.GetString("trace-dir");

  std::vector<std::string> child_args = {
      "--tcp",     std::to_string(port),
      "--host",    host,
      "--shards",  std::to_string(shards),
      "--backlog", std::to_string(backlog),
      "--reuseport"};
  if (!cache_dir.empty()) {
    child_args.push_back("--cache-dir");
    child_args.push_back(cache_dir);
  }
  if (!trace_dir.empty()) {
    // Each child exports trace-<pid>.json there at exit; the supervisor
    // merges the directory into trace-merged.json when the fleet is done.
    child_args.push_back("--trace-dir");
    child_args.push_back(trace_dir);
  }
  // Cache bounds ride along to every child: the LRU byte budget and the
  // ENOSPC simulation quota are fleet-wide policy, not per-process tuning.
  for (const char* bound : {"cache-max-bytes", "cache-quota-bytes"}) {
    if (flags.Has(bound)) {
      child_args.push_back(std::string("--") + bound);
      child_args.push_back(std::to_string(flags.GetInt(bound, 0)));
    }
  }
  for (const std::string& extra : flags.positional()) {
    child_args.push_back(extra);
  }

  sigset_t mask = SupervisorSigset();
  ::sigprocmask(SIG_BLOCK, &mask, nullptr);

  const std::string health_frame = HealthFrame();
  const std::int64_t start_ms = NowMs();

  std::vector<Child> children(static_cast<std::size_t>(procs));
  for (std::size_t i = 0; i < children.size(); ++i) {
    Child& child = children[i];
    const SpawnResult spawned =
        SpawnChild(serve_bin, child_args, i, flight_slots);
    child.pid = spawned.pid;
    child.health_fd = spawned.health_fd;
    child.flight_fd = spawned.flight_fd;
    child.spawned_ms = NowMs();
    if (child.pid < 0) {
      child.gave_up = true;
      continue;
    }
    if (watchdog_interval_ms > 0) {
      child.next_probe_ms =
          child.spawned_ms +
          ProbeDelayMs(HashCombine(watchdog_seed, i), ++child.probe_counter,
                       watchdog_interval_ms);
    }
  }
  JsonLogLine("spta_fleet", "start")
      .Int("procs", procs)
      .Int("shards", shards)
      .Str("host", host)
      .Int("port", port)
      .Emit();

  bool terminate = false;
  bool forwarded = false;
  bool dirty_after_drain = false;
  for (;;) {
    const std::int64_t now = NowMs();

    // Reap everything that has exited. SIGCHLD coalesces, so one wake-up
    // may cover several deaths — drain with WNOHANG until empty.
    for (;;) {
      int status = 0;
      const pid_t done = ::waitpid(-1, &status, WNOHANG);
      if (done <= 0) break;
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.pid != done) continue;
        if (child.health_fd >= 0) {
          ::close(child.health_fd);
          child.health_fd = -1;
        }
        // The incarnation is fully dead (waitpid returned it), so its
        // ring holds the final bytes it ever wrote — harvest now, before
        // a respawn replaces the fd with a fresh ring.
        HarvestFlight(&child, done, flight_dir);
        child.probe_deadline_ms = 0;
        child.pid = -1;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (clean || forwarded) {
          child.clean_exit = true;
          if (!clean) dirty_after_drain = true;
          JsonLogLine("spta_fleet", "exited")
              .Int("child_pid", done)
              .Str("outcome", clean ? "clean" : "dirty")
              .Emit();
          break;
        }
        if (child.respawns >= respawn_limit) {
          child.gave_up = true;
          JsonLogLine("spta_fleet", "respawn_limit")
              .Int("child_pid", done)
              .Int("limit", respawn_limit)
              .Emit();
          break;
        }
        ++child.respawns;
        const std::int64_t uptime = now - child.spawned_ms;
        if (uptime < min_uptime_ms) {
          // Crash loop: delay the respawn so a broken child burns
          // wall-clock, not its whole budget. The schedule is per-child,
          // seeded, and survives across its deaths.
          if (!child.backoff) {
            service::RetryPolicy policy;
            policy.base = std::chrono::milliseconds(respawn_base_ms);
            policy.cap = std::chrono::milliseconds(respawn_cap_ms);
            policy.seed = HashCombine(backoff_seed, i);
            child.backoff =
                std::make_unique<service::RetrySchedule>(policy);
          }
          const std::int64_t delay = child.backoff->NextDelay().count();
          child.respawn_due_ms = now + delay;
          JsonLogLine("spta_fleet", "crash_loop_respawn")
              .Int("child_pid", done)
              .Int("uptime_ms", uptime)
              .Int("respawn", child.respawns)
              .Int("limit", respawn_limit)
              .Int("delay_ms", delay)
              .Emit();
        } else {
          // A run that held steady earns an immediate respawn and a
          // fresh backoff schedule.
          child.backoff.reset();
          child.respawn_due_ms = now;
          JsonLogLine("spta_fleet", "respawn")
              .Int("child_pid", done)
              .Int("respawn", child.respawns)
              .Int("limit", respawn_limit)
              .Emit();
        }
        break;
      }
    }

    if (terminate && !forwarded) {
      forwarded = true;
      JsonLogLine("spta_fleet", "forwarding_sigterm").Emit();
      for (Child& child : children) {
        child.respawn_due_ms = 0;  // Draining: no more respawns.
        if (child.pid > 0 && !child.clean_exit && !child.gave_up) {
          ::kill(child.pid, SIGTERM);
          // A SIGSTOPped (chaos-wedged) child cannot process SIGTERM;
          // SIGCONT lets the drain reach it.
          ::kill(child.pid, SIGCONT);
        }
      }
    }

    // Fire respawns whose backoff has elapsed.
    if (!forwarded) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.respawn_due_ms == 0 || now < child.respawn_due_ms) {
          continue;
        }
        child.respawn_due_ms = 0;
        const SpawnResult spawned =
            SpawnChild(serve_bin, child_args, i, flight_slots);
        child.pid = spawned.pid;
        child.health_fd = spawned.health_fd;
        child.flight_fd = spawned.flight_fd;
        child.spawned_ms = now;
        child.probe_deadline_ms = 0;
        if (child.pid < 0) {
          child.gave_up = true;
          continue;
        }
        if (watchdog_interval_ms > 0) {
          child.next_probe_ms =
              now + ProbeDelayMs(HashCombine(watchdog_seed, i),
                                 ++child.probe_counter,
                                 watchdog_interval_ms);
        }
      }
    }

    // Watchdog pass: drain replies, kill the wedged, launch due probes.
    // Idle during drain — a child busy finishing its backlog is not
    // wedged, and SIGKILL would turn a clean drain dirty.
    if (watchdog_interval_ms > 0 && !forwarded) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.pid <= 0 || child.health_fd < 0 || child.clean_exit ||
            child.gave_up) {
          continue;
        }
        char buffer[512];
        ssize_t n = 0;
        bool got_reply = false;
        while ((n = ::read(child.health_fd, buffer, sizeof(buffer))) > 0) {
          got_reply = true;  // Any reply bytes prove the loop is alive.
        }
        if (n == 0) {
          // EOF: the child closed its end (it is exiting); the reaper
          // owns what happens next.
          ::close(child.health_fd);
          child.health_fd = -1;
          continue;
        }
        if (got_reply && child.probe_deadline_ms > 0) {
          child.probe_deadline_ms = 0;
          child.next_probe_ms =
              now + ProbeDelayMs(HashCombine(watchdog_seed, i),
                                 ++child.probe_counter,
                                 watchdog_interval_ms);
        }
        if (child.probe_deadline_ms > 0 &&
            now >= child.probe_deadline_ms) {
          // Alive but unresponsive (wedged): SIGKILL works even on a
          // stopped process; the reaper routes it through respawn — and
          // harvests the flight ring, so the spans leading up to the
          // wedge survive the kill.
          JsonLogLine("spta_fleet", "unresponsive")
              .Int("child_pid", child.pid)
              .Int("timeout_ms", watchdog_timeout_ms)
              .Emit();
          ::kill(child.pid, SIGKILL);
          child.probe_deadline_ms = 0;
          child.next_probe_ms = now + watchdog_timeout_ms;
        } else if (child.probe_deadline_ms == 0 &&
                   now >= child.next_probe_ms) {
          // Fire one probe. A short/failed write is itself a wedge
          // symptom (the socketpair buffer only fills when the child
          // stops reading) — the probe simply times out.
          [[maybe_unused]] const ssize_t written = ::write(
              child.health_fd, health_frame.data(), health_frame.size());
          child.probe_deadline_ms = now + watchdog_timeout_ms;
        }
      }
    }

    bool anyone_pending = false;
    for (const Child& child : children) {
      if (child.clean_exit || child.gave_up) continue;
      if (child.pid > 0 || child.respawn_due_ms > 0) anyone_pending = true;
    }
    if (!anyone_pending) break;

    // Sleep until the next timed event (probe, probe deadline, respawn)
    // or a blocked signal. A child that exited before this point left
    // SIGCHLD pending (the set stays blocked), so the wait returns
    // immediately — no lost-wakeup window exists.
    std::int64_t wake = now + 1000;
    for (const Child& child : children) {
      if (child.clean_exit || child.gave_up) continue;
      if (child.respawn_due_ms > 0) {
        wake = std::min(wake, child.respawn_due_ms);
      }
      if (watchdog_interval_ms > 0 && !forwarded && child.pid > 0 &&
          child.health_fd >= 0) {
        wake = std::min(wake, child.probe_deadline_ms > 0
                                  ? child.probe_deadline_ms
                                  : child.next_probe_ms);
      }
    }
    const std::int64_t sleep_ms = std::max<std::int64_t>(
        0, std::min<std::int64_t>(wake - now, 1000));
    timespec timeout{};
    timeout.tv_sec = sleep_ms / 1000;
    timeout.tv_nsec = (sleep_ms % 1000) * 1000000;
    const int sig = ::sigtimedwait(&mask, nullptr, &timeout);
    if (sig == SIGTERM || sig == SIGINT) terminate = true;
  }

  // Rings whose child never got reaped (fork failed after creation, or a
  // give-up path) still need closing; nothing to harvest from a child
  // that never ran.
  for (Child& child : children) {
    if (child.flight_fd >= 0) {
      ::close(child.flight_fd);
      child.flight_fd = -1;
    }
  }

  // One Perfetto-loadable trace for the whole run: splice every child's
  // trace-<pid>.json (they all exported on their way out) into
  // trace-merged.json. Exports land via atomic rename, so a file that
  // exists is complete.
  if (!trace_dir.empty()) {
    std::vector<std::string> exports;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(trace_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("trace-", 0) == 0 && name != "trace-merged.json" &&
          name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
        exports.push_back(entry.path().string());
      }
    }
    std::sort(exports.begin(), exports.end());
    const std::string merged_path = trace_dir + "/trace-merged.json";
    std::size_t merged = 0;
    std::string error;
    JsonLogLine log("spta_fleet", "trace_merged");
    if (obs::MergeChromeTraceFiles(exports, merged_path, &merged, &error)) {
      log.Str("path", merged_path)
          .Int("inputs", static_cast<std::int64_t>(exports.size()))
          .Int("merged", static_cast<std::int64_t>(merged));
    } else {
      log.Str("path", merged_path).Str("write_error", error);
    }
    log.Emit();
  }

  bool any_gave_up = false;
  for (const Child& child : children) {
    if (child.gave_up) any_gave_up = true;
  }
  JsonLogLine("spta_fleet", "done")
      .Int("elapsed_ms", NowMs() - start_ms)
      .Str("outcome",
           (any_gave_up || dirty_after_drain) ? "degraded" : "ok")
      .Emit();
  return (any_gave_up || dirty_after_drain) ? 1 : 0;
}
