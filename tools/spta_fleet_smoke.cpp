// spta_fleet_smoke — self-contained fleet smoke check (no spta_cli, no
// external daemon): boots a 2-shard ShardedServer on an ephemeral TCP
// port, drives 100 mixed requests (PING / OPEN / APPEND / STATUS /
// session ANALYZE / inline ANALYZE / METRICS / CLOSE) through a real
// client connection, verifies every response, then performs the graceful
// SHUTDOWN drain and checks the fleet acked it. Exit 0 = pass, 1 = fail.
//
// When given the path to the spta_fleet binary as argv[1] it also runs a
// supervisor leg: spawn a real 2-process fleet, confirm it serves, send
// SIGTERM, and require the whole tree to drain to exit 0 within a
// deadline. This pins the signal path specifically — the supervisor once
// sat in a SA_RESTARTed waitpid() and never forwarded the signal, a hang
// the in-process leg cannot see.
//
// Wired as a ctest (label: service) so a plain `ctest -L service` proves
// the epoll loop + shard routing + drain path end to end on every run.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "mbpta/per_path.hpp"
#include "service/client.hpp"
#include "service/sharded_server.hpp"

namespace {

using namespace spta;

/// Uniform-ish jitter in [10000, 10500): same shape the service tests
/// feed the EVT pipeline — passes the IID gate, fits cleanly.
std::vector<mbpta::PathObservation> MakeSample(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<mbpta::PathObservation> sample(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    sample[i].time =
        10000.0 + 500.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53);
    sample[i].path_id = 0;
  }
  return sample;
}

#define SMOKE_CHECK(cond, what)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "spta_fleet_smoke: FAIL: %s\n", (what));  \
      return 1;                                                      \
    }                                                                \
  } while (0)

/// Grabs a free TCP port from the kernel and releases it. The handoff to
/// the fleet races other port consumers in principle; SO_REUSEPORT and the
/// immediate rebind make it reliable on a test host.
int FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  int port = -1;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

/// Spawns `spta_fleet --tcp PORT --procs 2 --shards 1`, waits for it to
/// answer a PING, SIGTERMs it, and requires exit 0 within ~10 s. Returns
/// 0 on pass. A supervisor that never forwards the signal fails the
/// deadline here instead of hanging ctest.
int SupervisorSigtermLeg(const char* fleet_bin) {
  const int port = FreePort();
  SMOKE_CHECK(port > 0, "supervisor: free port");
  const std::string port_str = std::to_string(port);

  const pid_t pid = ::fork();
  SMOKE_CHECK(pid >= 0, "supervisor: fork");
  if (pid == 0) {
    ::execl(fleet_bin, fleet_bin, "--tcp", port_str.c_str(), "--procs", "2",
            "--shards", "1", static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Serve check: children need a moment to bind; retry the connect.
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    std::string error;
    const auto connection = service::TcpConnection::Connect(
        "127.0.0.1", static_cast<std::uint16_t>(port), &error, 2000.0);
    if (!connection) {
      ::usleep(50 * 1000);
      continue;
    }
    service::Client client(connection->in(), connection->out());
    served = client.Ping().ok;
  }
  if (!served) ::kill(pid, SIGKILL);
  SMOKE_CHECK(served, "supervisor: fleet serves PING");

  SMOKE_CHECK(::kill(pid, SIGTERM) == 0, "supervisor: SIGTERM");
  int status = 0;
  pid_t done = 0;
  for (int waited_ms = 0; waited_ms < 10 * 1000; waited_ms += 50) {
    done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    ::usleep(50 * 1000);
  }
  if (done != pid) ::kill(pid, SIGKILL);
  SMOKE_CHECK(done == pid, "supervisor: drain finished within deadline");
  SMOKE_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
              "supervisor: clean exit after SIGTERM");
  std::fprintf(stderr, "spta_fleet_smoke: supervisor SIGTERM drain ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const int supervisor_result = SupervisorSigtermLeg(argv[1]);
    if (supervisor_result != 0) return supervisor_result;
  }
  service::ShardedServerOptions options;
  options.shards = 2;
  service::ShardedServer fleet(options);
  SMOKE_CHECK(fleet.ListenTcp("127.0.0.1", 0) == 0, "ListenTcp");
  SMOKE_CHECK(fleet.Start() == 0, "Start");
  SMOKE_CHECK(fleet.bound_port() != 0, "ephemeral port");

  std::string error;
  const auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 10000.0);
  if (!connection) {
    std::fprintf(stderr, "spta_fleet_smoke: connect failed: %s\n",
                 error.c_str());
    return 1;
  }
  service::Client client(connection->in(), connection->out());

  const auto sample = MakeSample(400, 7);
  int issued = 0;
  for (int round = 0; round < 11; ++round) {
    const std::string session = "smoke-" + std::to_string(round);
    SMOKE_CHECK(client.Ping().ok, "PING");
    ++issued;
    SMOKE_CHECK(client.Open(session).ok, "OPEN");
    ++issued;
    SMOKE_CHECK(client.Append(session, sample).ok, "APPEND");
    ++issued;
    SMOKE_CHECK(client.Status(session).ok, "STATUS");
    ++issued;
    auto analyzed = client.AnalyzeSession(session);
    SMOKE_CHECK(analyzed.ok, "session ANALYZE");
    SMOKE_CHECK(analyzed.args.Has("pwcet"), "session ANALYZE pwcet");
    ++issued;
    // Repeat: second time around this is a warm (memo or cache) hit and
    // must carry the same pwcet.
    auto repeat = client.AnalyzeSession(session);
    SMOKE_CHECK(repeat.ok, "repeat ANALYZE");
    SMOKE_CHECK(repeat.args.GetString("pwcet") ==
                    analyzed.args.GetString("pwcet"),
                "repeat ANALYZE pwcet identical");
    ++issued;
    auto inline_analyzed = client.AnalyzeInline(sample);
    SMOKE_CHECK(inline_analyzed.ok, "inline ANALYZE");
    ++issued;
    auto metrics = client.Metrics();
    SMOKE_CHECK(metrics.ok, "METRICS");
    SMOKE_CHECK(metrics.args.GetUint("fleet_shards", 0) == 2,
                "METRICS fleet_shards");
    ++issued;
    SMOKE_CHECK(client.Close(session).ok, "CLOSE");
    ++issued;
  }
  SMOKE_CHECK(issued >= 99, "request volume");
  auto prom = client.MetricsProm();
  SMOKE_CHECK(prom.ok, "METRICS_PROM");
  SMOKE_CHECK(prom.payload.find("spta_fleet_shards 2") != std::string::npos,
              "prom exposition");
  ++issued;

  auto shutdown = client.Shutdown();
  SMOKE_CHECK(shutdown.ok, "SHUTDOWN ack");
  SMOKE_CHECK(shutdown.args.GetUint("drained", 0) == 1, "drained flag");
  SMOKE_CHECK(fleet.Wait() == 0, "Wait");
  std::fprintf(stderr, "spta_fleet_smoke: PASS (%d requests, 2 shards)\n",
               issued + 1);
  return 0;
}
