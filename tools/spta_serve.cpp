// spta_serve — resident pWCET analysis daemon.
//
//   spta_serve --socket /tmp/spta.sock [--workers N] [--queue N]
//              [--cache N] [--deadline-ms D] [--cache-dir DIR]
//              [--backlog N] [--prom-out FILE [--prom-interval-ms N]]
//       Listens on an AF_UNIX stream socket; serves concurrent clients
//       until one sends SHUTDOWN. Dumps the metrics surface to stderr on
//       exit.
//
//   spta_serve --pipe [same tuning flags]
//       Serves a single framed request stream on stdin/stdout (inetd
//       style; also what the tests and scripted clients use).
//
//   spta_serve --tcp PORT [--host A.B.C.D] [--shards N] [--reuseport]
//              [same tuning flags]
//       Sharded fleet mode: an epoll event loop accepts TCP connections
//       and routes frames to N shared-nothing worker shards by content
//       digest (service/sharded_server.hpp). --cache-dir enables the
//       disk-backed warm-start cache; --reuseport lets several fleet
//       processes (the spta_fleet supervisor's children) share the port.
//       PORT 0 picks an ephemeral port, printed on stderr as
//       "listening on HOST:PORT". --health-fd adopts an inherited fd
//       (the spta_fleet watchdog's socketpair end) as one more served
//       connection, so the supervisor can HEALTH-probe this specific
//       child. --cache-max-bytes bounds the persistent cache (LRU
//       eviction); --cache-quota-bytes simulates a full device (chaos).
//
// Observability (docs/OBSERVABILITY.md):
//   --trace-dir DIR enables the in-process tracer and exports its Chrome
//   trace JSON as DIR/trace-<pid>.json at exit (merged fleet-wide by
//   spta_fleet --trace-dir or spta_cli trace-view --merge).
//   --flight-fd N adopts an inherited shared-memory flight-recorder ring
//   (created by spta_fleet --flight-dir) and mirrors every trace event
//   into it, so the supervisor can harvest the last spans post-mortem —
//   even after SIGKILL. The TRACE verb serves the live export in-band.
//
// --prom-out periodically exports the same Prometheus text body that the
// METRICS_PROM verb serves (atomic tmp+rename, so a scraper using the
// node-exporter textfile pattern never reads a torn file), every
// --prom-interval-ms ms (default 1000; 0 = only the final export at
// shutdown). The final state is always written on exit.
//
// Robustness contract:
//   * SIGPIPE is ignored — a client that disconnects mid-response must
//     surface as a write error on that connection, never kill the daemon.
//   * SIGTERM/SIGINT trigger the same drain-on-shutdown path as an in-band
//     SHUTDOWN request: the handler writes one byte to a self-pipe
//     (async-signal-safe) and a watcher thread calls
//     Server::TriggerShutdown(), so in-flight analyses still get their
//     responses before exit.
//
// Protocol, session model and cache semantics: docs/SERVICE.md.
// Fault-injection and degradation model: docs/FAULTS.md.

#include <csignal>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/flags.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "service/sharded_server.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(stderr,
               "usage: spta_serve (--socket PATH | --pipe | --tcp PORT) "
               "[--host A.B.C.D] [--shards N] [--reuseport] [--workers N] "
               "[--queue N] [--cache N] [--deadline-ms D] [--cache-dir DIR] "
               "[--cache-max-bytes N] [--cache-quota-bytes N] "
               "[--backlog N] [--health-fd FD] "
               "[--flight-fd FD] [--trace-dir DIR] "
               "[--prom-out FILE [--prom-interval-ms N]]\n");
  return 2;
}

/// Observability session for --flight-fd / --trace-dir: enables the
/// process tracer, attaches the inherited flight-recorder ring (so the
/// supervisor can harvest the last spans even after SIGKILL), and on
/// destruction exports the Chrome trace JSON as DIR/trace-<pid>.json for
/// the supervisor (or spta_cli trace-view --merge) to stitch.
class ObsSession {
 public:
  ObsSession(int flight_fd, std::string trace_dir)
      : trace_dir_(std::move(trace_dir)) {
    if (flight_fd < 0 && trace_dir_.empty()) return;
    obs::Tracer::Instance().Enable();
    if (flight_fd >= 0) {
      std::string error;
      if (recorder_.AttachWriter(flight_fd, &error)) {
        obs::SetGlobalFlightRecorder(&recorder_);
      } else {
        std::fprintf(stderr, "spta_serve: flight ring attach failed: %s\n",
                     error.c_str());
      }
    }
  }

  ~ObsSession() {
    if (recorder_.attached()) obs::SetGlobalFlightRecorder(nullptr);
    if (trace_dir_.empty()) return;
    const std::string path =
        trace_dir_ + "/trace-" + std::to_string(::getpid()) + ".json";
    std::string error;
    if (!obs::Tracer::Instance().WriteChromeTraceFile(path, &error)) {
      std::fprintf(stderr, "spta_serve: trace export failed: %s\n",
                   error.c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  obs::FlightRecorder recorder_;
  std::string trace_dir_;
};

/// Periodic Prometheus textfile exporter (--prom-out). Writes the same
/// body METRICS_PROM serves (classic mode) or the fleet exposition (TCP
/// mode); the destructor stops the ticker and writes one final export so
/// the shutdown-state counters always land on disk.
class PromExporter {
 public:
  PromExporter(std::function<std::string()> render, std::string path,
               double interval_ms)
      : render_(std::move(render)), path_(std::move(path)) {
    if (interval_ms > 0.0) {
      interval_ = std::chrono::duration<double, std::milli>(interval_ms);
      thread_ = std::thread([this] { Loop(); });
    }
  }

  ~PromExporter() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    WriteOnce();
  }

  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      WriteOnce();
      lock.lock();
    }
  }

  void WriteOnce() {
    std::string error;
    if (!AtomicWriteFile(path_, render_(), &error)) {
      std::fprintf(stderr, "spta_serve: prom export failed: %s\n",
                   error.c_str());
    }
  }

  std::function<std::string()> render_;
  std::string path_;
  std::chrono::duration<double, std::milli> interval_{0};
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Self-pipe written by the signal handler, drained by the watcher thread.
/// File-scope because signal handlers cannot capture state.
int g_signal_pipe[2] = {-1, -1};

extern "C" void OnTerminationSignal(int) {
  // write() is async-signal-safe; TriggerShutdown (locks) is not, so the
  // heavy lifting is deferred to the watcher thread on the read end.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Blocks until the handler pings the self-pipe (or it closes), then runs
/// the graceful shutdown (`trigger` is Server::TriggerShutdown or the
/// fleet's). In pipe mode there is no listener to unblock, so stdin is
/// closed as well — the stream reader sees EOF and winds down.
void WatchSignals(std::function<void()> trigger, bool pipe_mode) {
  ssize_t n;
  char byte;
  while ((n = ::read(g_signal_pipe[0], &byte, 1)) < 0 && errno == EINTR) {
  }
  if (n <= 0) return;  // write end closed: normal exit, nothing to do
  std::fprintf(stderr, "spta_serve: termination signal; draining...\n");
  trigger();
  if (pipe_mode) ::close(STDIN_FILENO);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string socket_path = flags.GetString("socket");
  const bool pipe_mode = flags.GetBool("pipe");
  const bool tcp_mode = flags.Has("tcp");
  const int mode_count = static_cast<int>(!socket_path.empty()) +
                         static_cast<int>(pipe_mode) +
                         static_cast<int>(tcp_mode);
  if (mode_count != 1) return Usage();  // exactly one mode

  service::ServerOptions options;
  options.workers = static_cast<std::size_t>(flags.GetInt("workers", 0));
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.cache_capacity =
      static_cast<std::size_t>(flags.GetInt("cache", 128));
  options.default_deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  options.listen_backlog = static_cast<int>(flags.GetInt("backlog", 128));
  options.cache_dir = flags.GetString("cache-dir");
  // On-disk budget / simulated-capacity for the persistent cache
  // (docs/SERVICE.md "Failure modes"): eviction keeps the footprint under
  // --cache-max-bytes; --cache-quota-bytes makes Puts past it behave like
  // ENOSPC (the chaos harness's disk-full lever).
  options.cache_max_bytes =
      static_cast<std::uint64_t>(flags.GetInt("cache-max-bytes", 0));
  options.cache_quota_bytes =
      static_cast<std::uint64_t>(flags.GetInt("cache-quota-bytes", 0));
  if (options.queue_capacity == 0 || options.cache_capacity == 0) {
    std::fprintf(stderr, "spta_serve: --queue and --cache must be >= 1\n");
    return 2;
  }
  if (options.listen_backlog < 1) {
    std::fprintf(stderr, "spta_serve: --backlog must be >= 1\n");
    return 2;
  }

  const std::string prom_out = flags.GetString("prom-out");
  const double prom_interval_ms =
      flags.GetDouble("prom-interval-ms", 1000.0);
  if (prom_interval_ms < 0.0) {
    std::fprintf(stderr, "spta_serve: --prom-interval-ms must be >= 0\n");
    return 2;
  }

  // --flight-fd / --trace-dir turn on tracing for the process lifetime.
  // Declared before the server objects so the ring and the trace export
  // outlive every thread that records into them.
  ObsSession obs_session(static_cast<int>(flags.GetInt("flight-fd", -1)),
                         flags.GetString("trace-dir"));

  // A dead peer is an ERR on its own connection, never a daemon death.
  std::signal(SIGPIPE, SIG_IGN);

  if (tcp_mode) {
    service::ShardedServerOptions fleet_options;
    fleet_options.server = options;
    fleet_options.shards =
        static_cast<std::size_t>(flags.GetInt("shards", 1));
    fleet_options.listen_backlog = options.listen_backlog;
    fleet_options.reuseport = flags.GetBool("reuseport");
    // --health-fd: an inherited fd (the spta_fleet watchdog's socketpair
    // end) served exactly like an accepted connection, so supervisor
    // HEALTH probes reach this child directly — SO_REUSEPORT gives the
    // supervisor no way to address a specific child through the port.
    fleet_options.adopt_fd =
        static_cast<int>(flags.GetInt("health-fd", -1));
    if (fleet_options.shards == 0) {
      std::fprintf(stderr, "spta_serve: --shards must be >= 1\n");
      return 2;
    }
    service::ShardedServer fleet(fleet_options);
    const std::string host = flags.GetString("host", "127.0.0.1");
    const int port = static_cast<int>(flags.GetInt("tcp", 0));
    if (port < 0 || port > 65535) return Usage();
    int err = fleet.ListenTcp(host, static_cast<std::uint16_t>(port));
    if (err != 0) {
      std::fprintf(stderr, "spta_serve: tcp bind failed (errno %d)\n", err);
      return 1;
    }
    std::unique_ptr<PromExporter> prom_exporter;
    if (!prom_out.empty()) {
      prom_exporter = std::make_unique<PromExporter>(
          [&fleet] { return fleet.RenderFleetProm(); }, prom_out,
          prom_interval_ms);
    }
    std::thread watcher;
    if (::pipe(g_signal_pipe) == 0) {
      watcher = std::thread(
          WatchSignals, [&fleet] { fleet.TriggerShutdown(); }, false);
      std::signal(SIGTERM, OnTerminationSignal);
      std::signal(SIGINT, OnTerminationSignal);
    }
    std::fprintf(stderr, "spta_serve: listening on %s:%u (%zu shards)\n",
                 host.c_str(), fleet.bound_port(), fleet.shard_count());
    err = fleet.Start();
    int exit_code = 0;
    if (err != 0) {
      std::fprintf(stderr, "spta_serve: fleet start failed (errno %d)\n",
                   err);
      exit_code = 1;
    } else {
      fleet.Wait();
    }
    if (watcher.joinable()) {
      // SIG_IGN, not SIG_DFL: the drain is already done, and a second
      // SIGTERM racing this exit path must not turn a clean drain into a
      // killed-by-signal exit (the fleet supervisor counts those as dirty).
      std::signal(SIGTERM, SIG_IGN);
      std::signal(SIGINT, SIG_IGN);
      ::close(g_signal_pipe[1]);
      watcher.join();
      ::close(g_signal_pipe[0]);
    }
    prom_exporter.reset();
    std::fprintf(stderr, "spta_serve: exiting; fleet exposition:\n%s",
                 fleet.RenderFleetProm().c_str());
    return exit_code;
  }

  service::Server server(options);

  std::unique_ptr<PromExporter> prom_exporter;
  if (!prom_out.empty()) {
    prom_exporter = std::make_unique<PromExporter>(
        [&server] { return server.RenderPromText(); }, prom_out,
        prom_interval_ms);
  }

  std::thread watcher;
  if (::pipe(g_signal_pipe) == 0) {
    watcher = std::thread(
        WatchSignals, [&server] { server.TriggerShutdown(); }, pipe_mode);
    std::signal(SIGTERM, OnTerminationSignal);
    std::signal(SIGINT, OnTerminationSignal);
  } else {
    std::fprintf(stderr,
                 "spta_serve: self-pipe failed; signals exit ungracefully\n");
  }

  int exit_code = 0;
  if (pipe_mode) {
    server.ServeStream(std::cin, std::cout);
  } else {
    std::fprintf(stderr, "spta_serve: listening on %s\n",
                 socket_path.c_str());
    const int err = server.ServeUnixSocket(socket_path);
    if (err != 0) {
      std::fprintf(stderr, "spta_serve: socket setup failed (errno %d)\n",
                   err);
      exit_code = 1;
    }
  }

  if (watcher.joinable()) {
    // Serving is over (in-band SHUTDOWN or signal). Unblock the watcher by
    // closing the write end, then reap it. SIG_IGN so a second signal
    // racing the exit path cannot turn the finished drain into a
    // killed-by-signal exit.
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGINT, SIG_IGN);
    ::close(g_signal_pipe[1]);
    watcher.join();
    ::close(g_signal_pipe[0]);
  }

  // Stops the ticker and writes the final Prometheus export before the
  // metrics render below, so file and stderr agree on the exit state.
  prom_exporter.reset();

  std::fprintf(stderr, "spta_serve: exiting; final metrics:\n%s",
               server.metrics().Render(server.engine().cache().stats()).c_str());
  return exit_code;
}
