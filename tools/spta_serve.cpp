// spta_serve — resident pWCET analysis daemon.
//
//   spta_serve --socket /tmp/spta.sock [--workers N] [--queue N]
//              [--cache N] [--deadline-ms D]
//       Listens on an AF_UNIX stream socket; serves concurrent clients
//       until one sends SHUTDOWN. Dumps the metrics surface to stderr on
//       exit.
//
//   spta_serve --pipe [same tuning flags]
//       Serves a single framed request stream on stdin/stdout (inetd
//       style; also what the tests and scripted clients use).
//
// Protocol, session model and cache semantics: docs/SERVICE.md.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "service/server.hpp"

namespace {

using namespace spta;

int Usage() {
  std::fprintf(stderr,
               "usage: spta_serve (--socket PATH | --pipe) [--workers N] "
               "[--queue N] [--cache N] [--deadline-ms D]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string socket_path = flags.GetString("socket");
  const bool pipe_mode = flags.GetBool("pipe");
  if (socket_path.empty() == !pipe_mode) return Usage();  // exactly one mode

  service::ServerOptions options;
  options.workers = static_cast<std::size_t>(flags.GetInt("workers", 0));
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.cache_capacity =
      static_cast<std::size_t>(flags.GetInt("cache", 128));
  options.default_deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (options.queue_capacity == 0 || options.cache_capacity == 0) {
    std::fprintf(stderr, "spta_serve: --queue and --cache must be >= 1\n");
    return 2;
  }

  service::Server server(options);
  int exit_code = 0;
  if (pipe_mode) {
    server.ServeStream(std::cin, std::cout);
  } else {
    std::fprintf(stderr, "spta_serve: listening on %s\n",
                 socket_path.c_str());
    const int err = server.ServeUnixSocket(socket_path);
    if (err != 0) {
      std::fprintf(stderr, "spta_serve: socket setup failed (errno %d)\n",
                   err);
      exit_code = 1;
    }
  }

  std::fprintf(stderr, "spta_serve: exiting; final metrics:\n%s",
               server.metrics().Render(server.engine().cache().stats()).c_str());
  return exit_code;
}
